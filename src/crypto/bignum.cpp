#include "crypto/bignum.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "util/hex.h"

namespace lateral::crypto {

void Bignum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_limbs(std::vector<std::uint32_t> limbs) {
  Bignum n;
  n.limbs_ = std::move(limbs);
  n.trim();
  return n;
}

Bignum::Bignum(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

Bignum Bignum::from_bytes(BytesView big_endian) {
  Bignum n;
  n.limbs_.assign((big_endian.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < big_endian.size(); ++i) {
    const std::size_t byte_from_lsb = big_endian.size() - 1 - i;
    n.limbs_[byte_from_lsb / 4] |=
        std::uint32_t(big_endian[i]) << (8 * (byte_from_lsb % 4));
  }
  n.trim();
  return n;
}

Result<Bignum> Bignum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  auto bytes = util::from_hex(padded);
  if (!bytes) return bytes.error();
  return from_bytes(*bytes);
}

Bytes Bignum::to_bytes() const {
  if (is_zero()) return {};
  Bytes out;
  out.reserve(limbs_.size() * 4);
  // Emit big-endian, skipping leading zeros of the top limb.
  bool started = false;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      const auto b = static_cast<std::uint8_t>(limbs_[i] >> shift);
      if (!started && b == 0) continue;
      started = true;
      out.push_back(b);
    }
  }
  return out;
}

Result<Bytes> Bignum::to_bytes_padded(std::size_t width) const {
  Bytes raw = to_bytes();
  if (raw.size() > width) return Errc::invalid_argument;
  Bytes out(width - raw.size(), 0);
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::to_hex(to_bytes());
  // Strip a single leading zero nibble for canonical form.
  if (s.size() > 1 && s[0] == '0') s.erase(s.begin());
  return s;
}

std::size_t Bignum::bit_length() const {
  if (is_zero()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool Bignum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::strong_ordering Bignum::operator<=>(const Bignum& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() <=> other.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

Bignum Bignum::operator+(const Bignum& rhs) const {
  std::vector<std::uint32_t> out(std::max(limbs_.size(), rhs.limbs_.size()) + 1,
                                 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    out[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  return from_limbs(std::move(out));
}

Bignum Bignum::operator-(const Bignum& rhs) const {
  if (*this < rhs) throw Error("Bignum subtraction underflow");
  std::vector<std::uint32_t> out(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = std::int64_t(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) diff -= rhs.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t(1) << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<std::uint32_t>(diff);
  }
  return from_limbs(std::move(out));
}

Bignum Bignum::operator*(const Bignum& rhs) const {
  if (is_zero() || rhs.is_zero()) return Bignum();
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur = std::uint64_t(out[i + j]) + a * rhs.limbs_[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + rhs.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  return from_limbs(std::move(out));
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (is_zero()) return Bignum();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  std::vector<std::uint32_t> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift)
      out[i + limb_shift + 1] |=
          static_cast<std::uint32_t>(std::uint64_t(limbs_[i]) >> (32 - bit_shift));
  }
  return from_limbs(std::move(out));
}

Bignum Bignum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return Bignum();
  const std::size_t bit_shift = bits % 32;
  std::vector<std::uint32_t> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out[i] |= static_cast<std::uint32_t>(std::uint64_t(limbs_[i + limb_shift + 1])
                                           << (32 - bit_shift));
  }
  return from_limbs(std::move(out));
}

Bignum::DivMod Bignum::divmod(const Bignum& divisor) const {
  if (divisor.is_zero()) throw Error("Bignum division by zero");
  if (*this < divisor) return {Bignum(), *this};
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = divisor.limbs_[0];
    std::vector<std::uint32_t> q(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(q)), Bignum(rem)};
  }

  // Knuth Algorithm D. Normalize so the top limb of v has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while (!(top & 0x80000000u)) {
      top <<= 1;
      ++shift;
    }
  }
  const Bignum u_norm = *this << shift;
  const Bignum v_norm = divisor << shift;
  const std::size_t n = v_norm.limbs_.size();
  const std::size_t m = u_norm.limbs_.size() - n;

  std::vector<std::uint32_t> u(u_norm.limbs_);
  u.push_back(0);  // u has m+n+1 limbs
  const std::vector<std::uint32_t>& v = v_norm.limbs_;
  std::vector<std::uint32_t> q(m + 1, 0);

  const std::uint64_t base = std::uint64_t(1) << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*b + u[j+n-1]) / v[n-1].
    const std::uint64_t numerator = (std::uint64_t(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v[n - 1];
    std::uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= base ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= base) break;
    }

    // Multiply-subtract: u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      const std::int64_t diff =
          std::int64_t(u[i + j]) - std::int64_t(product & 0xFFFFFFFFu) - borrow;
      u[i + j] = static_cast<std::uint32_t>(diff);
      borrow = (diff < 0) ? 1 : 0;
    }
    const std::int64_t diff = std::int64_t(u[j + n]) - std::int64_t(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(diff);

    if (diff < 0) {
      // q_hat was one too large: add back.
      --q_hat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = std::uint64_t(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + carry2);
    }
    q[j] = static_cast<std::uint32_t>(q_hat);
  }

  u.resize(n);
  Bignum remainder = from_limbs(std::move(u)) >> shift;
  return {from_limbs(std::move(q)), std::move(remainder)};
}

Bignum Bignum::mulmod(const Bignum& rhs, const Bignum& m) const {
  return ((*this) * rhs) % m;
}

Bignum Bignum::powmod(const Bignum& exponent, const Bignum& m) const {
  if (m.is_zero()) throw Error("Bignum powmod with zero modulus");
  if (m == Bignum(1)) return Bignum();
  Bignum result(1);
  Bignum base = *this % m;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = result.mulmod(base, m);
    base = base.mulmod(base, m);
  }
  return result;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  while (!b.is_zero()) {
    Bignum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Result<Bignum> Bignum::invmod(const Bignum& m) const {
  // Extended Euclid on (a, m) tracking coefficients as (sign, magnitude)
  // pairs, since Bignum is unsigned.
  if (m.is_zero()) return Errc::crypto_failure;
  Bignum r0 = m, r1 = *this % m;
  // x-coefficients of `a` in the identity r = a*x + m*y (y not tracked).
  Bignum x0, x1(1);
  bool x0_neg = false, x1_neg = false;

  while (!r1.is_zero()) {
    const auto [q, r2] = r0.divmod(r1);
    // x2 = x0 - q * x1, with sign tracking.
    const Bignum qx1 = q * x1;
    Bignum x2;
    bool x2_neg;
    if (x0_neg == x1_neg) {
      // Same sign: result sign depends on magnitudes.
      if (x0 >= qx1) {
        x2 = x0 - qx1;
        x2_neg = x0_neg;
      } else {
        x2 = qx1 - x0;
        x2_neg = !x0_neg;
      }
    } else {
      x2 = x0 + qx1;
      x2_neg = x0_neg;
    }
    r0 = std::move(r1);
    r1 = r2;
    x0 = std::move(x1);
    x0_neg = x1_neg;
    x1 = std::move(x2);
    x1_neg = x2_neg;
  }
  if (r0 != Bignum(1)) return Errc::crypto_failure;  // not coprime
  Bignum inv = x0 % m;
  if (x0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

Bignum Bignum::random_bits(HmacDrbg& drbg, std::size_t bits) {
  if (bits == 0) return Bignum();
  const std::size_t bytes = (bits + 7) / 8;
  Bytes raw = drbg.generate(bytes);
  // Clear excess top bits, then force the top bit so the width is exact.
  const std::size_t excess = bytes * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xFF >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes(raw);
}

Bignum Bignum::random_below(HmacDrbg& drbg, const Bignum& bound) {
  if (bound.is_zero()) throw Error("random_below: zero bound");
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  for (;;) {
    Bignum candidate = from_bytes(drbg.generate(bytes));
    if (candidate < bound) return candidate;
  }
}

bool Bignum::is_probable_prime(HmacDrbg& drbg, int rounds) const {
  static const std::uint32_t kSmallPrimes[] = {
      2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
      53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113};
  if (*this < Bignum(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (*this == Bignum(p)) return true;
    if ((*this % Bignum(p)).is_zero()) return false;
  }

  // Write n-1 = d * 2^s.
  const Bignum n_minus_1 = *this - Bignum(1);
  Bignum d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  auto witness = [&](const Bignum& a) {
    Bignum x = a.powmod(d, *this);
    if (x == Bignum(1) || x == n_minus_1) return false;  // not a witness
    for (std::size_t i = 1; i < s; ++i) {
      x = x.mulmod(x, *this);
      if (x == n_minus_1) return false;
    }
    return true;  // composite witnessed
  };

  if (witness(Bignum(2))) return false;
  for (int round = 0; round < rounds; ++round) {
    const Bignum a =
        random_below(drbg, *this - Bignum(3)) + Bignum(2);  // [2, n-2]
    if (witness(a)) return false;
  }
  return true;
}

Bignum Bignum::generate_prime(HmacDrbg& drbg, std::size_t bits) {
  if (bits < 8) throw Error("generate_prime: need at least 8 bits");
  for (;;) {
    Bignum candidate = random_bits(drbg, bits);
    if (!candidate.is_odd()) candidate = candidate + Bignum(1);
    if (candidate.is_probable_prime(drbg, 16)) return candidate;
  }
}

}  // namespace lateral::crypto
