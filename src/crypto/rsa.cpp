#include "crypto/rsa.h"

#include "crypto/hmac.h"

namespace lateral::crypto {
namespace {

constexpr std::uint64_t kPublicExponent = 65537;

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

Result<std::uint32_t> read_u32(BytesView wire, std::size_t& offset) {
  if (offset + 4 > wire.size()) return Errc::invalid_argument;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | wire[offset++];
  return v;
}

/// EMSA-PKCS1-v1_5-style encoding: 0x00 0x01 FF..FF 0x00 || DER-ish prefix ||
/// SHA-256(m). We use a fixed ASCII marker instead of the ASN.1 DigestInfo —
/// the structure (fixed padding, full-width message representative) is what
/// the security argument needs.
Result<Bignum> encode_message(BytesView message, std::size_t em_len) {
  static const char kMarker[] = "sha256:";
  const Digest digest = Sha256::hash(message);
  const std::size_t t_len = sizeof(kMarker) - 1 + digest.size();
  if (em_len < t_len + 11) return Errc::crypto_failure;  // key too small
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xFF);
  em.push_back(0x00);
  em.insert(em.end(), kMarker, kMarker + sizeof(kMarker) - 1);
  em.insert(em.end(), digest.begin(), digest.end());
  return Bignum::from_bytes(em);
}

}  // namespace

Digest RsaPublicKey::fingerprint() const { return Sha256::hash(serialize()); }

Bytes RsaPublicKey::serialize() const {
  Bytes out;
  const Bytes n_bytes = n.to_bytes();
  const Bytes e_bytes = e.to_bytes();
  append_u32(out, static_cast<std::uint32_t>(n_bytes.size()));
  out.insert(out.end(), n_bytes.begin(), n_bytes.end());
  append_u32(out, static_cast<std::uint32_t>(e_bytes.size()));
  out.insert(out.end(), e_bytes.begin(), e_bytes.end());
  return out;
}

Result<RsaPublicKey> RsaPublicKey::deserialize(BytesView wire) {
  std::size_t offset = 0;
  auto n_len = read_u32(wire, offset);
  if (!n_len) return n_len.error();
  if (offset + *n_len > wire.size()) return Errc::invalid_argument;
  const Bignum n = Bignum::from_bytes(wire.subspan(offset, *n_len));
  offset += *n_len;
  auto e_len = read_u32(wire, offset);
  if (!e_len) return e_len.error();
  if (offset + *e_len > wire.size()) return Errc::invalid_argument;
  const Bignum e = Bignum::from_bytes(wire.subspan(offset, *e_len));
  offset += *e_len;
  if (offset != wire.size()) return Errc::invalid_argument;
  if (n.is_zero() || e.is_zero()) return Errc::invalid_argument;
  return RsaPublicKey{n, e};
}

RsaKeyPair RsaKeyPair::generate(HmacDrbg& drbg, std::size_t modulus_bits) {
  if (modulus_bits < 384)
    throw Error("RsaKeyPair: modulus must be at least 384 bits");
  const Bignum e(kPublicExponent);
  for (;;) {
    const Bignum p = Bignum::generate_prime(drbg, modulus_bits / 2);
    const Bignum q = Bignum::generate_prime(drbg, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    const Bignum n = p * q;
    const Bignum phi = (p - Bignum(1)) * (q - Bignum(1));
    if (Bignum::gcd(e, phi) != Bignum(1)) continue;
    auto d = e.invmod(phi);
    if (!d) continue;
    return RsaKeyPair{RsaPublicKey{n, e}, std::move(*d)};
  }
}

Bytes rsa_sign(const RsaKeyPair& key, BytesView message) {
  const std::size_t em_len = (key.pub.n.bit_length() + 7) / 8;
  auto em = encode_message(message, em_len);
  if (!em) throw Error("rsa_sign: modulus too small for encoding");
  const Bignum sig = em->powmod(key.d, key.pub.n);
  auto padded = sig.to_bytes_padded(em_len);
  if (!padded) throw Error("rsa_sign: signature width error");
  return *padded;
}

Status rsa_verify(const RsaPublicKey& key, BytesView message,
                  BytesView signature) {
  const std::size_t em_len = (key.n.bit_length() + 7) / 8;
  if (signature.size() != em_len) return Errc::verification_failed;
  const Bignum sig = Bignum::from_bytes(signature);
  if (sig >= key.n) return Errc::verification_failed;
  const Bignum recovered = sig.powmod(key.e, key.n);
  auto expected = encode_message(message, em_len);
  if (!expected) return Errc::crypto_failure;
  if (recovered != *expected) return Errc::verification_failed;
  return Status::success();
}

}  // namespace lateral::crypto
