// Binary Merkle hash tree with incremental leaf updates and inclusion proofs.
//
// vpfs authenticates every file block against a tree whose root is sealed by
// the isolation substrate; the TPM backend uses trees for its boot log and
// the attestation protocol for multi-measurement quotes.
#pragma once

#include <vector>

#include "crypto/sha256.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::crypto {

class MerkleTree {
 public:
  /// An empty tree over `leaf_count` zero-initialized leaves.
  /// Leaf hashes are H(0x00 || data); interior nodes H(0x01 || left || right)
  /// (domain separation prevents leaf/node confusion attacks).
  explicit MerkleTree(std::size_t leaf_count);

  std::size_t leaf_count() const { return leaf_count_; }

  /// Replace leaf `index` with the hash of `data` and update the O(log n)
  /// path to the root. Errc::invalid_argument when out of range.
  Status update_leaf(std::size_t index, BytesView data);

  /// Current root hash.
  Digest root() const;

  /// Inclusion proof for leaf `index`: sibling hashes bottom-up.
  struct Proof {
    std::size_t index = 0;
    std::vector<Digest> siblings;
  };
  Result<Proof> prove(std::size_t index) const;

  /// Verify that `data` is the leaf at `proof.index` of the tree with the
  /// given root.
  static Status verify(const Digest& root, BytesView data, const Proof& proof);

  /// Hash for an individual leaf (exposed for external verification code).
  static Digest leaf_hash(BytesView data);
  static Digest node_hash(const Digest& left, const Digest& right);

 private:
  std::size_t leaf_count_;
  std::size_t padded_;           // leaves padded to a power of two
  std::vector<Digest> nodes_;    // 1-indexed heap layout; nodes_[1] is root
};

}  // namespace lateral::crypto
