#include "crypto/merkle.h"

namespace lateral::crypto {
namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Digest MerkleTree::leaf_hash(BytesView data) {
  const std::uint8_t tag = 0x00;
  Sha256 ctx;
  ctx.update(BytesView(&tag, 1));
  ctx.update(data);
  return ctx.finish();
}

Digest MerkleTree::node_hash(const Digest& left, const Digest& right) {
  const std::uint8_t tag = 0x01;
  Sha256 ctx;
  ctx.update(BytesView(&tag, 1));
  ctx.update(digest_view(left));
  ctx.update(digest_view(right));
  return ctx.finish();
}

MerkleTree::MerkleTree(std::size_t leaf_count)
    : leaf_count_(leaf_count), padded_(next_pow2(std::max<std::size_t>(leaf_count, 1))) {
  nodes_.resize(2 * padded_);
  const Digest empty_leaf = leaf_hash({});
  for (std::size_t i = 0; i < padded_; ++i) nodes_[padded_ + i] = empty_leaf;
  for (std::size_t i = padded_ - 1; i >= 1; --i)
    nodes_[i] = node_hash(nodes_[2 * i], nodes_[2 * i + 1]);
}

Status MerkleTree::update_leaf(std::size_t index, BytesView data) {
  if (index >= leaf_count_) return Errc::invalid_argument;
  std::size_t node = padded_ + index;
  nodes_[node] = leaf_hash(data);
  node /= 2;
  while (node >= 1) {
    nodes_[node] = node_hash(nodes_[2 * node], nodes_[2 * node + 1]);
    node /= 2;
  }
  return Status::success();
}

Digest MerkleTree::root() const { return nodes_[1]; }

Result<MerkleTree::Proof> MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) return Errc::invalid_argument;
  Proof proof;
  proof.index = index;
  std::size_t node = padded_ + index;
  while (node > 1) {
    proof.siblings.push_back(nodes_[node ^ 1]);
    node /= 2;
  }
  return proof;
}

Status MerkleTree::verify(const Digest& root, BytesView data,
                          const Proof& proof) {
  Digest current = leaf_hash(data);
  std::size_t index = proof.index;
  for (const Digest& sibling : proof.siblings) {
    current = (index & 1) ? node_hash(sibling, current)
                          : node_hash(current, sibling);
    index >>= 1;
  }
  if (!ct_equal(digest_view(current), digest_view(root)))
    return Errc::verification_failed;
  return Status::success();
}

}  // namespace lateral::crypto
