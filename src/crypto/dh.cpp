#include "crypto/dh.h"

#include "crypto/hmac.h"
#include "util/result.h"

namespace lateral::crypto {

const DhGroup& DhGroup::oakley1() {
  static const DhGroup group = [] {
    // RFC 2409, Section 6.1: 768-bit MODP group.
    auto p = Bignum::from_hex(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF");
    if (!p) throw Error("DhGroup::oakley1: bad prime constant");
    return DhGroup{std::move(*p), Bignum(2)};
  }();
  return group;
}

DhKeyPair DhKeyPair::generate(const DhGroup& group, HmacDrbg& drbg) {
  // Private exponent in [2, p-2]; 256 bits of entropy is ample for the
  // simulation-scale group.
  Bignum x = Bignum::random_bits(drbg, 256);
  const Bignum p_minus_2 = group.p - Bignum(2);
  if (x >= p_minus_2) x = x % p_minus_2;
  if (x < Bignum(2)) x = x + Bignum(2);
  Bignum gx = group.g.powmod(x, group.p);
  return DhKeyPair{std::move(x), std::move(gx)};
}

Result<Bytes> dh_shared_secret(const DhGroup& group, const Bignum& private_key,
                               const Bignum& peer_public) {
  // Reject degenerate public values that force a trivial shared secret.
  if (peer_public < Bignum(2)) return Errc::crypto_failure;
  if (peer_public >= group.p - Bignum(1)) return Errc::crypto_failure;
  const Bignum secret = peer_public.powmod(private_key, group.p);
  auto padded = secret.to_bytes_padded((group.p.bit_length() + 7) / 8);
  if (!padded) return Errc::crypto_failure;
  return *padded;
}

}  // namespace lateral::crypto
