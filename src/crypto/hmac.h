// HMAC-SHA256 (RFC 2104), HKDF (RFC 5869) and HMAC-DRBG (SP 800-90A).
//
// HMAC authenticates channel records and VPFS blocks; HKDF derives session
// and sealing keys; HMAC-DRBG is the deterministic cryptographic randomness
// source used inside protocols (seedable, so tests are reproducible).
#pragma once

#include "crypto/sha256.h"
#include "util/types.h"

namespace lateral::crypto {

/// One-shot HMAC-SHA256.
Digest hmac_sha256(BytesView key, BytesView message);

/// Incremental HMAC context.
class Hmac {
 public:
  explicit Hmac(BytesView key);
  void update(BytesView data);
  Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_key_;
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derive `length` bytes from a PRK and context info.
Bytes hkdf_expand(const Digest& prk, BytesView info, std::size_t length);

/// Convenience: extract-then-expand.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

/// Deterministic random bit generator per SP 800-90A (HMAC_DRBG, SHA-256).
class HmacDrbg {
 public:
  explicit HmacDrbg(BytesView seed);

  /// Generate n pseudo-random bytes.
  Bytes generate(std::size_t n);

  /// Mix additional entropy into the state.
  void reseed(BytesView entropy);

 private:
  void update_state(BytesView provided);

  Bytes key_;  // K
  Bytes v_;    // V
};

}  // namespace lateral::crypto
