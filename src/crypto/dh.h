// Finite-field Diffie-Hellman key agreement (classic MODP group).
//
// net::SecureChannel derives its session keys from a DH exchange whose
// public values are bound to attestation quotes, so a man-in-the-middle
// cannot splice itself between a verified component and its peer.
#pragma once

#include "crypto/bignum.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::crypto {

class HmacDrbg;

/// A DH group (prime modulus p, generator g).
struct DhGroup {
  Bignum p;
  Bignum g;

  /// RFC 2409 Oakley Group 1 (768-bit MODP). Simulation-scale default.
  static const DhGroup& oakley1();
};

struct DhKeyPair {
  Bignum private_key;  // x
  Bignum public_key;   // g^x mod p

  static DhKeyPair generate(const DhGroup& group, HmacDrbg& drbg);
};

/// Compute the shared secret g^(xy) mod p from our private key and the
/// peer's public value. Errc::crypto_failure on degenerate peer values
/// (0, 1, p-1) which would collapse the key space.
Result<Bytes> dh_shared_secret(const DhGroup& group, const Bignum& private_key,
                               const Bignum& peer_public);

}  // namespace lateral::crypto
