// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used throughout lateral for measurements (MRENCLAVE-style code hashes),
// TPM PCR extension, Merkle trees, HMAC and signature padding.
#pragma once

#include <array>
#include <cstdint>

#include "util/types.h"

namespace lateral::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input. May be called any number of times.
  void update(BytesView data);

  /// Finalize and return the digest. The context must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(BytesView data);

  /// Hash the concatenation of two buffers (common for `H(a || b)` patterns).
  static Digest hash2(BytesView a, BytesView b);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

/// Digest as an owning byte vector (wire-format friendly).
Bytes digest_bytes(const Digest& d);

/// View over a digest.
inline BytesView digest_view(const Digest& d) { return BytesView(d.data(), d.size()); }

}  // namespace lateral::crypto
