// Arbitrary-precision unsigned integer arithmetic, from scratch.
//
// Backs the RSA signatures used for attestation quotes and vendor
// certificate chains, and the finite-field Diffie-Hellman key exchange of
// net::SecureChannel. Little-endian 32-bit limbs, 64-bit intermediates;
// division is Knuth Algorithm D.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace lateral::crypto {

class HmacDrbg;

class Bignum {
 public:
  /// Zero.
  Bignum() = default;

  /// From a machine word.
  explicit Bignum(std::uint64_t value);

  /// From big-endian bytes (network/key format).
  static Bignum from_bytes(BytesView big_endian);

  /// From a hex string (no 0x prefix). Errc::invalid_argument on bad chars.
  static Result<Bignum> from_hex(std::string_view hex);

  /// Big-endian byte representation, no leading zero bytes (empty for 0).
  Bytes to_bytes() const;

  /// Big-endian bytes left-padded with zeros to exactly `width` bytes.
  /// Errc::invalid_argument if the value does not fit.
  Result<Bytes> to_bytes_padded(std::size_t width) const;

  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;

  /// Value of bit i (0 = least significant).
  bool bit(std::size_t i) const;

  std::strong_ordering operator<=>(const Bignum& other) const;
  bool operator==(const Bignum& other) const = default;

  Bignum operator+(const Bignum& rhs) const;
  /// Subtraction requires *this >= rhs (unsigned); throws Error otherwise.
  Bignum operator-(const Bignum& rhs) const;
  Bignum operator*(const Bignum& rhs) const;
  Bignum operator<<(std::size_t bits) const;
  Bignum operator>>(std::size_t bits) const;

  struct DivMod;
  /// Throws Error on division by zero.
  DivMod divmod(const Bignum& divisor) const;
  Bignum operator/(const Bignum& rhs) const;
  Bignum operator%(const Bignum& rhs) const;

  /// (this * rhs) mod m.
  Bignum mulmod(const Bignum& rhs, const Bignum& m) const;

  /// this^exponent mod m (square-and-multiply). m must be nonzero.
  Bignum powmod(const Bignum& exponent, const Bignum& m) const;

  /// Greatest common divisor.
  static Bignum gcd(Bignum a, Bignum b);

  /// Modular inverse; Errc::crypto_failure when gcd(this, m) != 1.
  Result<Bignum> invmod(const Bignum& m) const;

  /// Miller-Rabin probabilistic primality test with `rounds` random bases
  /// drawn from `drbg` (plus a deterministic base-2 round).
  bool is_probable_prime(HmacDrbg& drbg, int rounds = 32) const;

  /// Uniform random value in [0, bound) using rejection sampling.
  static Bignum random_below(HmacDrbg& drbg, const Bignum& bound);

  /// Random value with exactly `bits` bits (top bit set).
  static Bignum random_bits(HmacDrbg& drbg, std::size_t bits);

  /// Generate a random probable prime with exactly `bits` bits.
  static Bignum generate_prime(HmacDrbg& drbg, std::size_t bits);

 private:
  void trim();
  static Bignum from_limbs(std::vector<std::uint32_t> limbs);

  // Little-endian limbs; no trailing zero limbs (canonical form).
  std::vector<std::uint32_t> limbs_;
};

struct Bignum::DivMod {
  Bignum quotient;
  Bignum remainder;
};

inline Bignum Bignum::operator/(const Bignum& rhs) const {
  return divmod(rhs).quotient;
}
inline Bignum Bignum::operator%(const Bignum& rhs) const {
  return divmod(rhs).remainder;
}

}  // namespace lateral::crypto
