// Microkernel isolation substrate (seL4/L4Re class; paper §II-B
// "Operating-System-Based Separation").
//
// Spatial isolation by MMU-backed address spaces over DRAM frames; temporal
// isolation by a budgeted scheduler (optionally strictly partitioned);
// capability IPC with kernel-minted badges; IOMMU-filtered device DMA; and
// paravirtualized hosting of entire legacy OSes (DomainKind::legacy, the
// L4Android pattern).
//
// Defends remote and local-software attackers. Does NOT defend physical bus
// probing: domain memory lives in off-chip DRAM as plaintext — exactly the
// limitation §II-D attributes to plain MMU isolation.
#pragma once

#include <map>
#include <vector>

#include "hw/iommu.h"
#include "microkernel/scheduler.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::microkernel {

class Microkernel final : public substrate::IsolationSubstrate {
 public:
  Microkernel(hw::Machine& machine, substrate::SubstrateConfig config,
              SchedulingPolicy policy = SchedulingPolicy::work_conserving);

  const substrate::SubstrateInfo& info() const override;

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  /// Physical frames backing a domain (tests use this to demonstrate what a
  /// physical attacker can read from DRAM).
  Result<std::vector<hw::PhysAddr>> domain_frames(
      substrate::DomainId domain) const;

  Scheduler& scheduler() { return scheduler_; }
  hw::Iommu& iommu() { return iommu_; }

  /// Create a DMA-capable device on this machine's bus.
  hw::Device make_device(const std::string& name);

  /// Grant a driver domain the right to DMA into its *own* frames only:
  /// the kernel programs the IOMMU with the domain's frame list.
  Status grant_dma(substrate::DomainId driver, const hw::Device& device,
                   bool writable);

  // --- Memory grants (L4-style map/grant of pages between tasks) ----------
  /// Map `pages` pages of `owner`'s address space starting at page index
  /// `first_page` into `grantee`'s rights (read, optionally write). The
  /// grantee then accesses them via read_granted/write_granted. Explicit,
  /// inspectable, revocable — capability semantics, not ambient sharing.
  Status grant_memory(substrate::DomainId owner, substrate::DomainId grantee,
                      std::size_t first_page, std::size_t pages,
                      bool writable);
  /// Revoke every grant from `owner` to `grantee`.
  Status revoke_memory(substrate::DomainId owner,
                       substrate::DomainId grantee);
  /// Granted access paths; access_denied without a covering grant.
  Result<Bytes> read_granted(substrate::DomainId grantee,
                             substrate::DomainId owner, std::uint64_t offset,
                             std::size_t len);
  Status write_granted(substrate::DomainId grantee,
                       substrate::DomainId owner, std::uint64_t offset,
                       BytesView data);

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// Grant regions are L4 map items: one syscall establishes the mapping,
  /// then both tasks address the same frames directly.
  Cycles region_map_cost(std::size_t pages) const override;

 private:
  struct AddressSpace {
    std::vector<hw::PhysAddr> frames;  // virtual page i -> frames[i]
  };

  /// Translate (domain, offset, len) to a frame-local access plan; denies
  /// out-of-range accesses (page-fault analogue).
  Result<AddressSpace*> space_of(substrate::DomainId id);

  struct MemoryGrant {
    std::size_t first_page = 0;
    std::size_t pages = 0;
    bool writable = false;
  };

  /// Covering grant lookup; nullptr when the range is not fully granted.
  const MemoryGrant* find_grant(substrate::DomainId grantee,
                                substrate::DomainId owner,
                                std::uint64_t offset, std::size_t len,
                                bool write) const;

  substrate::SubstrateInfo info_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, AddressSpace> spaces_;
  /// (owner, grantee) -> grants.
  std::map<std::pair<substrate::DomainId, substrate::DomainId>,
           std::vector<MemoryGrant>>
      grants_;
  Scheduler scheduler_;
  hw::Iommu iommu_;
  hw::DeviceId next_device_ = 1;
};

/// Register the "microkernel" factory.
Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::microkernel
