#include "microkernel/microkernel.h"

namespace lateral::microkernel {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::Feature;

Microkernel::Microkernel(hw::Machine& machine,
                         substrate::SubstrateConfig config,
                         SchedulingPolicy policy)
    : IsolationSubstrate(machine, std::move(config)),
      frames_(machine.dram()),
      scheduler_(policy, machine.core_count()),
      iommu_(hw::Iommu::Mode::enforcing) {
  info_.name = "microkernel";
  info_.features = Feature::spatial_isolation | Feature::temporal_isolation |
                   Feature::concurrent_domains | Feature::legacy_hosting |
                   Feature::sealed_storage | Feature::attestation |
                   Feature::io_isolation;
  if (policy == SchedulingPolicy::fixed_partition)
    info_.features = info_.features | Feature::covert_channel_mitigation;
  // Formally verified kernels (seL4) are ~10 kLoC; add MMU/IOMMU hardware
  // complexity as a token amount.
  info_.tcb_loc = 10'000;
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software};
}

const substrate::SubstrateInfo& Microkernel::info() const { return info_; }

Status Microkernel::admit_domain(const substrate::DomainSpec& spec) const {
  if (spec.memory_pages == 0) return Errc::invalid_argument;
  return Status::success();
}

Status Microkernel::attach_memory(DomainId id, DomainRecord& record) {
  AddressSpace space;
  space.frames.reserve(record.spec.memory_pages);
  for (std::size_t i = 0; i < record.spec.memory_pages; ++i) {
    auto frame = frames_.allocate(1);
    if (!frame) {
      for (const hw::PhysAddr f : space.frames) (void)frames_.free(f, 1);
      return frame.error();
    }
    machine_.advance(machine_.costs().page_table_update);
    space.frames.push_back(*frame);
  }
  // Load the image into the first pages of the address space (plaintext in
  // DRAM — visible to a physical attacker by design of this substrate).
  BytesView code = record.spec.image.code;
  for (std::size_t i = 0; i < space.frames.size() && !code.empty(); ++i) {
    const std::size_t n = std::min<std::size_t>(hw::kPageSize, code.size());
    machine_.memory().load(space.frames[i], code.subspan(0, n));
    code = code.subspan(n);
  }
  spaces_.emplace(id, std::move(space));
  (void)scheduler_.add_domain(id, record.spec.time_share_permille);
  return Status::success();
}

void Microkernel::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  for (const hw::PhysAddr frame : it->second.frames)
    (void)frames_.free(frame, 1);
  spaces_.erase(it);
  (void)scheduler_.remove_domain(id);
  // No dangling memory rights: drop every grant touching the domain.
  for (auto grant_it = grants_.begin(); grant_it != grants_.end();) {
    if (grant_it->first.first == id || grant_it->first.second == id)
      grant_it = grants_.erase(grant_it);
    else
      ++grant_it;
  }
}

Result<Microkernel::AddressSpace*> Microkernel::space_of(DomainId id) {
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return Errc::no_such_domain;
  return &it->second;
}

Result<Bytes> Microkernel::read_memory(DomainId actor, DomainId target,
                                       std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  // The MMU only walks the actor's own page tables: there is no path to
  // another address space, so any cross-domain access is a fault.
  if (actor != target) return Errc::access_denied;
  if (!find_domain(actor)) return Errc::no_such_domain;
  auto space = space_of(target);
  if (!space) return space.error();
  if (offset + len > (*space)->frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;  // page fault

  machine_.charge(machine_.costs().syscall,
                  machine_.costs().memcpy_per_16_bytes, len);
  Bytes out;
  out.reserve(len);
  const hw::AccessContext ctx{hw::SecurityState::non_secure, 0};
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    Bytes chunk;
    if (const Status s = machine_.memory().read(
            ctx, (*space)->frames[page] + in_page, n, chunk);
        !s.ok())
      return s.error();
    out.insert(out.end(), chunk.begin(), chunk.end());
    offset += n;
    len -= n;
  }
  return out;
}

Status Microkernel::write_memory(DomainId actor, DomainId target,
                                 std::uint64_t offset, BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (actor != target) return Errc::access_denied;
  if (!find_domain(actor)) return Errc::no_such_domain;
  auto space = space_of(target);
  if (!space) return space.error();
  if (offset + data.size() > (*space)->frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;

  machine_.charge(machine_.costs().syscall,
                  machine_.costs().memcpy_per_16_bytes, data.size());
  const hw::AccessContext ctx{hw::SecurityState::non_secure, 0};
  while (!data.empty()) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    if (const Status s = machine_.memory().write(
            ctx, (*space)->frames[page] + in_page, data.subspan(0, n));
        !s.ok())
      return s;
    data = data.subspan(n);
    offset += n;
  }
  return Status::success();
}

Result<std::vector<hw::PhysAddr>> Microkernel::domain_frames(
    DomainId domain) const {
  const auto it = spaces_.find(domain);
  if (it == spaces_.end()) return Errc::no_such_domain;
  return it->second.frames;
}

hw::Device Microkernel::make_device(const std::string& name) {
  return hw::Device(next_device_++, name, machine_, iommu_);
}

Status Microkernel::grant_dma(DomainId driver, const hw::Device& device,
                              bool writable) {
  const auto it = spaces_.find(driver);
  if (it == spaces_.end()) return Errc::no_such_domain;
  for (const hw::PhysAddr frame : it->second.frames) {
    if (const Status s = iommu_.map(device.id(), frame, 1, writable); !s.ok())
      return s;
  }
  return Status::success();
}

Status Microkernel::grant_memory(DomainId owner, DomainId grantee,
                                 std::size_t first_page, std::size_t pages,
                                 bool writable) {
  const auto owner_it = spaces_.find(owner);
  if (owner_it == spaces_.end() || !spaces_.contains(grantee))
    return Errc::no_such_domain;
  if (owner == grantee || pages == 0) return Errc::invalid_argument;
  if (first_page + pages > owner_it->second.frames.size())
    return Errc::invalid_argument;
  machine_.advance(machine_.costs().syscall +
                   machine_.costs().page_table_update * pages);
  grants_[{owner, grantee}].push_back(
      MemoryGrant{first_page, pages, writable});
  return Status::success();
}

Status Microkernel::revoke_memory(DomainId owner, DomainId grantee) {
  const auto it = grants_.find({owner, grantee});
  if (it == grants_.end()) return Errc::invalid_argument;
  machine_.advance(machine_.costs().syscall +
                   machine_.costs().page_table_update);
  grants_.erase(it);
  return Status::success();
}

const Microkernel::MemoryGrant* Microkernel::find_grant(
    DomainId grantee, DomainId owner, std::uint64_t offset, std::size_t len,
    bool write) const {
  const auto it = grants_.find({owner, grantee});
  if (it == grants_.end()) return nullptr;
  const std::size_t first_page = offset / hw::kPageSize;
  const std::size_t last_page = (offset + len - 1) / hw::kPageSize;
  for (const MemoryGrant& grant : it->second) {
    if (write && !grant.writable) continue;
    if (first_page >= grant.first_page &&
        last_page < grant.first_page + grant.pages)
      return &grant;
  }
  return nullptr;
}

Result<Bytes> Microkernel::read_granted(DomainId grantee, DomainId owner,
                                        std::uint64_t offset,
                                        std::size_t len) {
  if (!spaces_.contains(grantee)) return Errc::no_such_domain;
  auto space = space_of(owner);
  if (!space) return space.error();
  if (len == 0) return Bytes{};
  if (offset + len > (*space)->frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;
  if (!find_grant(grantee, owner, offset, len, /*write=*/false))
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, len);
  const hw::AccessContext ctx{hw::SecurityState::non_secure, 0};
  Bytes out;
  out.reserve(len);
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    Bytes chunk;
    if (const Status s = machine_.memory().read(
            ctx, (*space)->frames[page] + in_page, n, chunk);
        !s.ok())
      return s.error();
    out.insert(out.end(), chunk.begin(), chunk.end());
    offset += n;
    len -= n;
  }
  return out;
}

Status Microkernel::write_granted(DomainId grantee, DomainId owner,
                                  std::uint64_t offset, BytesView data) {
  if (!spaces_.contains(grantee)) return Errc::no_such_domain;
  auto space = space_of(owner);
  if (!space) return space.error();
  if (data.empty()) return Status::success();
  if (offset + data.size() > (*space)->frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;
  if (!find_grant(grantee, owner, offset, data.size(), /*write=*/true))
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  const hw::AccessContext ctx{hw::SecurityState::non_secure, 0};
  while (!data.empty()) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    if (const Status s = machine_.memory().write(
            ctx, (*space)->frames[page] + in_page, data.subspan(0, n));
        !s.ok())
      return s;
    data = data.subspan(n);
    offset += n;
  }
  return Status::success();
}

Cycles Microkernel::message_cost(std::size_t len) const {
  return machine_.costs().ipc_one_way +
         machine_.costs().ipc_per_16_bytes * ((len + 15) / 16);
}

substrate::ConcurrencyLaw Microkernel::concurrency_law() const {
  // seL4-class kernels run one kernel image on every core with per-core
  // run queues; IPC between domains scheduled on different cores proceeds
  // independently (a cross-core notify costs an IPI, charged by the
  // scheduler, not a shared lock on the IPC path).
  return substrate::ConcurrencyLaw::parallel;
}

Cycles Microkernel::attest_cost() const { return machine_.costs().syscall; }

Cycles Microkernel::region_map_cost(std::size_t pages) const {
  // An L4 map item: kernel entry plus one page-table write per page. After
  // that, access is plain loads/stores — the zero-copy path's entire
  // recurring cost is the cache traffic region_access models.
  return machine_.costs().syscall +
         machine_.costs().page_table_update * pages;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "microkernel",
      [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<Microkernel>(machine, config);
      });
}

}  // namespace lateral::microkernel
