#include "microkernel/scheduler.h"

#include <algorithm>

namespace lateral::microkernel {

Status Scheduler::add_domain(substrate::DomainId id,
                             std::uint32_t share_permille) {
  if (share_permille == 0) return Errc::invalid_argument;
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.share_permille = share_permille;
  entry.core = next_core_;
  const auto [it, inserted] = entries_.emplace(id, entry);
  (void)it;
  if (!inserted) return Errc::invalid_argument;
  next_core_ = (next_core_ + 1) % core_time_.size();
  return Status::success();
}

Status Scheduler::remove_domain(substrate::DomainId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(id) ? Status::success()
                            : Status(Errc::no_such_domain);
}

Status Scheduler::set_affinity(substrate::DomainId id, std::size_t core) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return Errc::no_such_domain;
  if (core >= core_time_.size()) return Errc::invalid_argument;
  it->second.core = core;
  it->second.pinned = true;
  return Status::success();
}

Result<std::size_t> Scheduler::core_of(substrate::DomainId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return Errc::no_such_domain;
  return it->second.core;
}

Status Scheduler::set_demand(substrate::DomainId id, Cycles demand) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return Errc::no_such_domain;
  it->second.demand = demand;
  return Status::success();
}

Cycles Scheduler::core_time(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < core_time_.size() ? core_time_[i] : 0;
}

Scheduler::SmpStats Scheduler::smp_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<substrate::DomainId, Cycles> Scheduler::run_epoch(
    Cycles epoch_cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<substrate::DomainId, Cycles> granted;
  if (entries_.empty()) return granted;

  const std::size_t cores = core_time_.size();
  std::vector<Cycles> leftover(cores, 0);
  std::vector<Cycles> busy(cores, 0);
  // Demand still unmet after each core's local pass — the candidates for
  // idle balancing.
  std::map<substrate::DomainId, Cycles> unmet;

  // Per-core pass: each core runs the single-core algorithm over the
  // domains homed on it. With one core this is exactly the pre-SMP
  // scheduler, grant for grant.
  for (std::size_t c = 0; c < cores; ++c) {
    std::uint64_t total_share = 0;
    for (const auto& [id, entry] : entries_)
      if (entry.core == c) total_share += entry.share_permille;
    if (total_share == 0) {
      leftover[c] = epoch_cycles;  // an empty core is fully idle
      continue;
    }

    // First pass: everyone gets min(slice, demand).
    std::map<substrate::DomainId, Cycles> core_unmet;
    for (const auto& [id, entry] : entries_) {
      if (entry.core != c) continue;
      const Cycles slice = epoch_cycles * entry.share_permille / total_share;
      const Cycles grant = std::min(slice, entry.demand);
      granted[id] = grant;
      busy[c] += grant;
      leftover[c] += slice - grant;
      if (entry.demand > slice) core_unmet[id] = entry.demand - slice;
    }

    if (policy_ == SchedulingPolicy::fixed_partition) {
      // Strict partitions: yielded time idles; nothing is redistributed, so
      // one domain's behaviour is invisible in another's grant.
      continue;
    }

    // Work-conserving: redistribute leftover to unmet demand, share-weighted.
    // Iterate because a grant may be capped by its domain's remaining demand.
    while (leftover[c] > 0 && !core_unmet.empty()) {
      std::uint64_t unmet_share = 0;
      for (const auto& [id, want] : core_unmet)
        unmet_share += entries_[id].share_permille;
      Cycles distributed = 0;
      for (auto it = core_unmet.begin(); it != core_unmet.end();) {
        const Cycles offer = std::max<Cycles>(
            1, leftover[c] * entries_[it->first].share_permille / unmet_share);
        const Cycles take = std::min(offer, it->second);
        granted[it->first] += take;
        busy[c] += take;
        it->second -= take;
        distributed += take;
        it = (it->second == 0) ? core_unmet.erase(it) : std::next(it);
        if (distributed >= leftover[c]) break;
      }
      if (distributed == 0) break;  // cannot place any more
      leftover[c] -= std::min(leftover[c], distributed);
    }
    for (const auto& [id, want] : core_unmet) unmet[id] = want;
  }

  // Idle balancing: a core with leftover budget pulls the hungriest
  // unpinned domain from another core. The pull is a migration — the
  // domain's home moves, and the move is an IPI kick to the idle core
  // (Zephyr SMP idiom). fixed_partition never donates, locally or across
  // cores: cross-core donation would reopen the covert channel.
  if (policy_ == SchedulingPolicy::work_conserving) {
    while (true) {
      std::size_t idle = cores;
      for (std::size_t c = 0; c < cores; ++c)
        if (leftover[c] > 0) {
          idle = c;
          break;
        }
      if (idle == cores) break;
      substrate::DomainId best = substrate::kInvalidDomain;
      Cycles best_want = 0;
      for (const auto& [id, want] : unmet) {
        const Entry& entry = entries_[id];
        if (entry.core == idle || entry.pinned) continue;
        if (want > best_want) {
          best = id;
          best_want = want;
        }
      }
      if (best_want == 0) break;
      entries_[best].core = idle;
      ++stats_.migrations;
      ++stats_.ipi_kicks;
      const Cycles take = std::min(leftover[idle], best_want);
      granted[best] += take;
      busy[idle] += take;
      leftover[idle] -= take;
      if ((unmet[best] -= take) == 0) unmet.erase(best);
    }
  }

  for (std::size_t c = 0; c < cores; ++c) core_time_[c] += busy[c];
  return granted;
}

}  // namespace lateral::microkernel
