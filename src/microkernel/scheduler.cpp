#include "microkernel/scheduler.h"

namespace lateral::microkernel {

Status Scheduler::add_domain(substrate::DomainId id,
                             std::uint32_t share_permille) {
  if (share_permille == 0) return Errc::invalid_argument;
  const auto [it, inserted] = entries_.emplace(id, Entry{share_permille, 0});
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Status Scheduler::remove_domain(substrate::DomainId id) {
  return entries_.erase(id) ? Status::success()
                            : Status(Errc::no_such_domain);
}

Status Scheduler::set_demand(substrate::DomainId id, Cycles demand) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return Errc::no_such_domain;
  it->second.demand = demand;
  return Status::success();
}

std::map<substrate::DomainId, Cycles> Scheduler::run_epoch(
    Cycles epoch_cycles) {
  std::map<substrate::DomainId, Cycles> granted;
  if (entries_.empty()) return granted;

  std::uint64_t total_share = 0;
  for (const auto& [id, entry] : entries_) total_share += entry.share_permille;

  // First pass: everyone gets min(slice, demand).
  Cycles leftover = 0;
  std::map<substrate::DomainId, Cycles> unmet;
  for (const auto& [id, entry] : entries_) {
    const Cycles slice = epoch_cycles * entry.share_permille / total_share;
    const Cycles grant = std::min(slice, entry.demand);
    granted[id] = grant;
    leftover += slice - grant;
    if (entry.demand > slice) unmet[id] = entry.demand - slice;
  }

  if (policy_ == SchedulingPolicy::fixed_partition) {
    // Strict partitions: yielded time idles; nothing is redistributed, so
    // one domain's behaviour is invisible in another's grant.
    return granted;
  }

  // Work-conserving: redistribute leftover to unmet demand, share-weighted.
  // Iterate because a grant may be capped by its domain's remaining demand.
  while (leftover > 0 && !unmet.empty()) {
    std::uint64_t unmet_share = 0;
    for (const auto& [id, want] : unmet)
      unmet_share += entries_[id].share_permille;
    Cycles distributed = 0;
    for (auto it = unmet.begin(); it != unmet.end();) {
      const Cycles offer = std::max<Cycles>(
          1, leftover * entries_[it->first].share_permille / unmet_share);
      const Cycles take = std::min(offer, it->second);
      granted[it->first] += take;
      it->second -= take;
      distributed += take;
      it = (it->second == 0) ? unmet.erase(it) : std::next(it);
      if (distributed >= leftover) break;
    }
    if (distributed == 0) break;  // cannot place any more
    leftover -= std::min(leftover, distributed);
  }
  return granted;
}

}  // namespace lateral::microkernel
