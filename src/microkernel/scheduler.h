// Deterministic CPU scheduler with two policies (paper §II-C):
//
//  * work_conserving — classic budget round-robin: CPU time a domain leaves
//    unused is donated to other runnable domains. Efficient, but the donation
//    is a timing covert channel: a sender modulates its demand, a receiver
//    observes how much extra time it gets.
//  * fixed_partition — strict time partitioning ("interference-free
//    scheduling"): each domain gets exactly its slice; unused time idles.
//    The covert channel's bandwidth drops to zero (bench_fig7_covert).
//
// SMP (FIG13): the scheduler keeps one run queue per core. Domains are
// placed round-robin at registration and stay put (cache affinity) unless
// idle balancing moves them: under work_conserving, a core whose domains
// left budget unused pulls the hungriest unpinned domain from another core
// — Zephyr-style, the migration is an IPI kick to the idle core, and the
// domain's home moves with it. fixed_partition never migrates: partitions
// are per-core, and donation across cores would reopen the covert channel
// the policy exists to close.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "substrate/isolation.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::microkernel {

enum class SchedulingPolicy : std::uint8_t {
  work_conserving,
  fixed_partition,
};

class Scheduler {
 public:
  explicit Scheduler(SchedulingPolicy policy, std::size_t cores = 1)
      : policy_(policy),
        core_time_(cores ? cores : 1, 0) {}

  SchedulingPolicy policy() const { return policy_; }
  void set_policy(SchedulingPolicy policy) { policy_ = policy; }
  std::size_t core_count() const { return core_time_.size(); }

  /// Register a domain with a share (permille of each epoch). Home core is
  /// assigned round-robin in registration order (deterministic).
  Status add_domain(substrate::DomainId id, std::uint32_t share_permille);
  Status remove_domain(substrate::DomainId id);

  /// Pin the domain to `core`: it schedules there and idle balancing will
  /// never migrate it.
  Status set_affinity(substrate::DomainId id, std::size_t core);
  /// The core the domain currently schedules on.
  Result<std::size_t> core_of(substrate::DomainId id) const;

  /// How many cycles the domain wants in the next epoch. A domain that
  /// yields sets a demand below its slice.
  Status set_demand(substrate::DomainId id, Cycles demand);

  /// Run one scheduling epoch of `epoch_cycles` *per core*; returns cycles
  /// granted per domain. Deterministic: same shares + demands + placement
  /// => same grants, same migrations.
  std::map<substrate::DomainId, Cycles> run_epoch(Cycles epoch_cycles);

  /// Cumulative busy cycles granted on core `i` across epochs. Monotone
  /// non-decreasing by construction — pinned by the TSan scheduler test.
  Cycles core_time(std::size_t i) const;

  struct SmpStats {
    std::uint64_t migrations = 0;  // domains moved by idle balancing
    std::uint64_t ipi_kicks = 0;   // cross-core kicks those moves sent
  };
  SmpStats smp_stats() const;

 private:
  struct Entry {
    std::uint32_t share_permille = 0;
    Cycles demand = 0;
    std::size_t core = 0;
    bool pinned = false;
  };

  SchedulingPolicy policy_;
  mutable std::mutex mu_;
  std::map<substrate::DomainId, Entry> entries_;
  std::vector<Cycles> core_time_;
  std::size_t next_core_ = 0;  // round-robin placement cursor
  SmpStats stats_;
};

}  // namespace lateral::microkernel
