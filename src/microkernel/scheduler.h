// Deterministic CPU scheduler with two policies (paper §II-C):
//
//  * work_conserving — classic budget round-robin: CPU time a domain leaves
//    unused is donated to other runnable domains. Efficient, but the donation
//    is a timing covert channel: a sender modulates its demand, a receiver
//    observes how much extra time it gets.
//  * fixed_partition — strict time partitioning ("interference-free
//    scheduling"): each domain gets exactly its slice; unused time idles.
//    The covert channel's bandwidth drops to zero (bench_fig7_covert).
#pragma once

#include <cstdint>
#include <map>

#include "substrate/isolation.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::microkernel {

enum class SchedulingPolicy : std::uint8_t {
  work_conserving,
  fixed_partition,
};

class Scheduler {
 public:
  explicit Scheduler(SchedulingPolicy policy) : policy_(policy) {}

  SchedulingPolicy policy() const { return policy_; }
  void set_policy(SchedulingPolicy policy) { policy_ = policy; }

  /// Register a domain with a share (permille of each epoch).
  Status add_domain(substrate::DomainId id, std::uint32_t share_permille);
  Status remove_domain(substrate::DomainId id);

  /// How many cycles the domain wants in the next epoch. A domain that
  /// yields sets a demand below its slice.
  Status set_demand(substrate::DomainId id, Cycles demand);

  /// Run one scheduling epoch of `epoch_cycles`; returns cycles granted per
  /// domain. Deterministic: same shares + demands => same grants.
  std::map<substrate::DomainId, Cycles> run_epoch(Cycles epoch_cycles);

 private:
  struct Entry {
    std::uint32_t share_permille = 0;
    Cycles demand = 0;
  };
  SchedulingPolicy policy_;
  std::map<substrate::DomainId, Entry> entries_;
};

}  // namespace lateral::microkernel
