// Intel SGX isolation substrate (paper §II-B "Intel SGX").
//
// Reproduced structure:
//  * independent trusted components run *concurrently* in fully isolated
//    enclaves; the (untrusted) OS schedules them like threads;
//  * enclave memory is tagged EPC: software outside the enclave cannot
//    read or write it (the access check happens in the memory system);
//  * the memory-encryption engine (MEE) encrypts and integrity-protects
//    enclave pages whenever they are resident in off-chip DRAM — a physical
//    bus attacker sees only ciphertext, and tampering is detected on the
//    next read (per-page version counters + MAC, our stand-in for the MEE
//    integrity tree);
//  * enclaves may access the untrusted host's memory (how Haven-style
//    trusted reuse of the legacy OS works), but never other enclaves';
//  * remote attestation goes through a quoting-enclave round trip;
//  * ECALL/EENTER round trips are expensive relative to microkernel IPC.
//
// The paper's caveat that SGX "suffers from ... cache side-channel attacks"
// is modelled by side_channel_leak(): a co-resident local attacker can
// recover a fraction of enclave-internal state bits despite the isolation
// (used by the fig6 ablation).
#pragma once

#include <map>

#include "crypto/aes.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::sgx {

class Sgx final : public substrate::IsolationSubstrate {
 public:
  Sgx(hw::Machine& machine, substrate::SubstrateConfig config);

  const substrate::SubstrateInfo& info() const override;

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  /// Remote attestation via the quoting enclave (extra local-report and
  /// enclave-crossing costs); enclaves only.
  Result<substrate::Quote> attest(substrate::DomainId actor,
                                  BytesView user_data) override;

  // --- Local attestation (EREPORT/report keys) ------------------------------
  /// A MAC-authenticated report one enclave creates FOR another on the
  /// same machine. Only the target (whose report key the MAC uses) can
  /// verify it — no signatures, no quoting enclave, orders of magnitude
  /// cheaper than remote attestation.
  struct LocalReport {
    crypto::Digest source_measurement{};
    crypto::Digest target_measurement{};
    Bytes user_data;
    crypto::Digest mac{};
  };

  /// EREPORT: `source` attests itself to `target` (both enclaves here).
  Result<LocalReport> ereport(substrate::DomainId source,
                              substrate::DomainId target, BytesView user_data);

  /// The target enclave verifies a report addressed to it. Errc::
  /// verification_failed for forged/tampered/misaddressed reports.
  Status verify_report(substrate::DomainId verifier,
                       const LocalReport& report);

  Result<std::vector<hw::PhysAddr>> domain_frames(
      substrate::DomainId domain) const;

  /// Cache side channel: a local-software attacker observing an enclave
  /// recovers `leak_fraction` of the requested bytes (deterministic stride).
  /// Returns the partially-recovered buffer with unknown bytes zeroed.
  Result<Bytes> side_channel_leak(substrate::DomainId enclave,
                                  std::uint64_t offset, std::size_t len,
                                  double leak_fraction) const;

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// Regions are untrusted buffers *outside* the EPC (the standard SGX
  /// zero-copy idiom): the enclave reaches them directly, so accesses pay
  /// no EENTER/EEXIT and no MEE crypt — establishing the mapping pays one
  /// enclave round trip.
  Cycles region_map_cost(std::size_t pages) const override;

 private:
  struct EnclaveSpace {
    bool enclave = false;  // false => untrusted host domain
    std::vector<hw::PhysAddr> frames;
    /// Per-page write counters (freshness) and MACs (integrity), held
    /// on-die by the real MEE.
    std::vector<std::uint64_t> page_versions;
    std::vector<crypto::Digest> page_macs;
  };

  static constexpr std::uint64_t kEpcTagBase = 0xE9C0'0000'0000ULL;

  Result<const EnclaveSpace*> space_of(substrate::DomainId id) const;
  Result<EnclaveSpace*> space_of(substrate::DomainId id);

  /// MEE transforms for one page.
  Bytes mee_encrypt(hw::PhysAddr page_addr, std::uint64_t version,
                    BytesView plaintext) const;
  Bytes mee_decrypt(hw::PhysAddr page_addr, std::uint64_t version,
                    BytesView ciphertext) const;
  crypto::Digest mee_mac(hw::PhysAddr page_addr, std::uint64_t version,
                         BytesView ciphertext) const;

  Result<Bytes> read_page(const EnclaveSpace& space, std::size_t page) const;
  Status write_page(EnclaveSpace& space, std::size_t page, BytesView content);

  substrate::SubstrateInfo info_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, EnclaveSpace> spaces_;
  crypto::Aes128Key mee_key_{};
  Bytes mee_mac_key_;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::sgx
