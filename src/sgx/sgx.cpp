#include "sgx/sgx.h"

#include "crypto/hmac.h"

namespace lateral::sgx {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::DomainKind;
using substrate::Feature;

Sgx::Sgx(hw::Machine& machine, substrate::SubstrateConfig config)
    : IsolationSubstrate(machine, std::move(config)), frames_(machine.dram()) {
  info_.name = "sgx";
  info_.features = Feature::spatial_isolation | Feature::concurrent_domains |
                   Feature::legacy_hosting | Feature::memory_encryption |
                   Feature::sealed_storage | Feature::attestation |
                   Feature::late_launch;
  // "An SGX-CPU therefore adds the equivalent of likely many thousands of
  // lines of code to the TCB" (§II-C) — microcode + architectural enclaves.
  info_.tcb_loc = 20'000;
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software,
                           AttackerModel::physical_bus};

  // MEE keys derive from the device fuses; they never leave the die.
  Bytes fuse_key(machine_.fuses().device_key().begin(),
                 machine_.fuses().device_key().end());
  const Bytes material =
      crypto::hkdf(to_bytes("sgx.mee.v1"), fuse_key, to_bytes("enc+mac"), 48);
  std::copy(material.begin(), material.begin() + 16, mee_key_.begin());
  mee_mac_key_.assign(material.begin() + 16, material.end());
}

const substrate::SubstrateInfo& Sgx::info() const { return info_; }

Status Sgx::admit_domain(const substrate::DomainSpec& spec) const {
  if (spec.memory_pages == 0) return Errc::invalid_argument;
  return Status::success();
}

Bytes Sgx::mee_encrypt(hw::PhysAddr page_addr, std::uint64_t version,
                       BytesView plaintext) const {
  // Nonce binds page address and version so ciphertext cannot be replayed
  // across locations or points in time.
  const std::uint64_t nonce = page_addr ^ (version << 20);
  return crypto::aes128_ctr(mee_key_, nonce, plaintext);
}

Bytes Sgx::mee_decrypt(hw::PhysAddr page_addr, std::uint64_t version,
                       BytesView ciphertext) const {
  return mee_encrypt(page_addr, version, ciphertext);  // CTR is symmetric
}

crypto::Digest Sgx::mee_mac(hw::PhysAddr page_addr, std::uint64_t version,
                            BytesView ciphertext) const {
  crypto::Hmac mac(mee_mac_key_);
  std::uint8_t header[16];
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<std::uint8_t>(page_addr >> (56 - 8 * i));
    header[8 + i] = static_cast<std::uint8_t>(version >> (56 - 8 * i));
  }
  mac.update(BytesView(header, sizeof(header)));
  mac.update(ciphertext);
  return mac.finish();
}

Status Sgx::attach_memory(DomainId id, DomainRecord& record) {
  EnclaveSpace space;
  space.enclave = record.spec.kind == DomainKind::trusted_component;
  space.frames.reserve(record.spec.memory_pages);
  const std::uint64_t tag = kEpcTagBase + id;
  for (std::size_t i = 0; i < record.spec.memory_pages; ++i) {
    auto frame = frames_.allocate(1);
    if (!frame) {
      for (const hw::PhysAddr f : space.frames) {
        (void)machine_.memory().set_page_owner(f, 0);
        (void)frames_.free(f, 1);
      }
      return frame.error();
    }
    if (space.enclave) {
      if (const Status s = machine_.memory().set_page_owner(*frame, tag);
          !s.ok())
        return s;
    }
    space.frames.push_back(*frame);
  }
  space.page_versions.assign(space.frames.size(), 0);
  space.page_macs.resize(space.frames.size());

  // EADD: copy + measure the image page by page, encrypting EPC content.
  Bytes code(record.spec.image.code);
  code.resize(space.frames.size() * hw::kPageSize, 0);
  for (std::size_t i = 0; i < space.frames.size(); ++i) {
    const BytesView page(code.data() + i * hw::kPageSize, hw::kPageSize);
    if (space.enclave) {
      space.page_versions[i] = 1;
      const Bytes ct = mee_encrypt(space.frames[i], 1, page);
      space.page_macs[i] = mee_mac(space.frames[i], 1, ct);
      machine_.memory().load(space.frames[i], ct);
      machine_.charge(0, machine_.costs().epc_crypt_per_16_bytes,
                      hw::kPageSize);
    } else {
      machine_.memory().load(space.frames[i], page);
    }
  }
  spaces_.emplace(id, std::move(space));
  return Status::success();
}

void Sgx::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  for (const hw::PhysAddr frame : it->second.frames) {
    (void)machine_.memory().set_page_owner(frame, 0);
    (void)frames_.free(frame, 1);
  }
  spaces_.erase(it);
}

Result<const Sgx::EnclaveSpace*> Sgx::space_of(DomainId id) const {
  const auto it = spaces_.find(id);
  // A corpse has no space (kill released its memory) but still has a record:
  // callers must see domain_dead, not a claim the domain never existed.
  if (it == spaces_.end())
    return is_dead(id) ? Errc::domain_dead : Errc::no_such_domain;
  return &it->second;
}

Result<Sgx::EnclaveSpace*> Sgx::space_of(DomainId id) {
  const auto it = spaces_.find(id);
  // A corpse has no space (kill released its memory) but still has a record:
  // callers must see domain_dead, not a claim the domain never existed.
  if (it == spaces_.end())
    return is_dead(id) ? Errc::domain_dead : Errc::no_such_domain;
  return &it->second;
}

Result<Bytes> Sgx::read_page(const EnclaveSpace& space,
                             std::size_t page) const {
  Bytes raw;
  if (const Status s = machine_.memory().raw_read(space.frames[page],
                                                  hw::kPageSize, raw);
      !s.ok())
    return s.error();
  if (!space.enclave) return raw;

  // MEE read path: verify integrity + freshness, then decrypt.
  const crypto::Digest expected =
      mee_mac(space.frames[page], space.page_versions[page], raw);
  if (!ct_equal(crypto::digest_view(expected),
                crypto::digest_view(space.page_macs[page])))
    return Errc::tamper_detected;
  machine_.charge(0, machine_.costs().epc_crypt_per_16_bytes, hw::kPageSize);
  return mee_decrypt(space.frames[page], space.page_versions[page], raw);
}

Status Sgx::write_page(EnclaveSpace& space, std::size_t page,
                       BytesView content) {
  if (!space.enclave)
    return machine_.memory().raw_write(space.frames[page], content);
  const std::uint64_t version = ++space.page_versions[page];
  const Bytes ct = mee_encrypt(space.frames[page], version, content);
  space.page_macs[page] = mee_mac(space.frames[page], version, ct);
  machine_.charge(0, machine_.costs().epc_crypt_per_16_bytes, hw::kPageSize);
  return machine_.memory().raw_write(space.frames[page], ct);
}

Result<Bytes> Sgx::read_memory(DomainId actor, DomainId target,
                               std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();

  if (actor != target) {
    // An enclave may read its untrusted host's memory; nothing may read an
    // enclave's memory from outside.
    if ((*target_space)->enclave) return Errc::access_denied;
    if (!(*actor_space)->enclave) return Errc::access_denied;
  }
  const EnclaveSpace& space = **target_space;
  if (offset + len > space.frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, len);
  Bytes out;
  out.reserve(len);
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    auto content = read_page(space, page);
    if (!content) return content.error();
    out.insert(out.end(), content->begin() + static_cast<long>(in_page),
               content->begin() + static_cast<long>(in_page + n));
    offset += n;
    len -= n;
  }
  return out;
}

Status Sgx::write_memory(DomainId actor, DomainId target, std::uint64_t offset,
                         BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();
  if (actor != target) {
    if ((*target_space)->enclave) return Errc::access_denied;
    if (!(*actor_space)->enclave) return Errc::access_denied;
  }
  EnclaveSpace& space = **target_space;
  if (offset + data.size() > space.frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  while (!data.empty()) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    // Read-modify-write at page granularity (the MEE works on full lines).
    auto content = read_page(space, page);
    if (!content) return content.error();
    std::copy(data.begin(), data.begin() + static_cast<long>(n),
              content->begin() + static_cast<long>(in_page));
    if (const Status s = write_page(space, page, *content); !s.ok()) return s;
    data = data.subspan(n);
    offset += n;
  }
  return Status::success();
}

namespace {

/// Report key for a target measurement: derivable only on this CPU (fuse
/// key) and released only to the enclave with that measurement.
Bytes report_key(const crypto::Aes128Key& device_key,
                 const crypto::Digest& target_measurement) {
  Bytes fuse(device_key.begin(), device_key.end());
  return crypto::hkdf(crypto::digest_bytes(target_measurement), fuse,
                      to_bytes("sgx.reportkey.v1"), 32);
}

crypto::Digest report_mac(BytesView key, const crypto::Digest& source,
                          const crypto::Digest& target, BytesView user_data) {
  crypto::Hmac mac(key);
  mac.update(crypto::digest_view(source));
  mac.update(crypto::digest_view(target));
  mac.update(user_data);
  return mac.finish();
}

}  // namespace

Result<Sgx::LocalReport> Sgx::ereport(DomainId source, DomainId target,
                                      BytesView user_data) {
  auto source_space = space_of(source);
  if (!source_space) return source_space.error();
  if (!(*source_space)->enclave) return Errc::access_denied;
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();
  if (!(*target_space)->enclave) return Errc::invalid_argument;

  const DomainRecord* source_record = find_domain(source);
  const DomainRecord* target_record = find_domain(target);
  machine_.advance(machine_.costs().sgx_ereport);

  LocalReport report;
  report.source_measurement = source_record->measurement;
  report.target_measurement = target_record->measurement;
  report.user_data.assign(user_data.begin(), user_data.end());
  report.mac = report_mac(
      report_key(machine_.fuses().device_key(), report.target_measurement),
      report.source_measurement, report.target_measurement, user_data);
  return report;
}

Status Sgx::verify_report(DomainId verifier, const LocalReport& report) {
  auto space = space_of(verifier);
  if (!space) return space.error();
  if (!(*space)->enclave) return Errc::access_denied;
  const DomainRecord* record = find_domain(verifier);
  machine_.charge(0, machine_.costs().sw_sha_per_64_bytes, 128);

  // The CPU releases only the verifier's OWN report key: a report
  // addressed to someone else cannot be checked here (and one addressed
  // here but MACed for someone else fails).
  if (!ct_equal(crypto::digest_view(report.target_measurement),
                crypto::digest_view(record->measurement)))
    return Errc::verification_failed;
  const crypto::Digest expected = report_mac(
      report_key(machine_.fuses().device_key(), record->measurement),
      report.source_measurement, report.target_measurement, report.user_data);
  if (!ct_equal(crypto::digest_view(expected),
                crypto::digest_view(report.mac)))
    return Errc::verification_failed;
  return Status::success();
}

Result<substrate::Quote> Sgx::attest(DomainId actor, BytesView user_data) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->enclave) return Errc::access_denied;
  // EREPORT to the quoting enclave plus two enclave crossings.
  machine_.advance(machine_.costs().sgx_ereport +
                   2 * (machine_.costs().sgx_eenter + machine_.costs().sgx_eexit));
  return IsolationSubstrate::attest(actor, user_data);
}

Result<std::vector<hw::PhysAddr>> Sgx::domain_frames(DomainId domain) const {
  auto space = space_of(domain);
  if (!space) return space.error();
  return (*space)->frames;
}

Result<Bytes> Sgx::side_channel_leak(DomainId enclave, std::uint64_t offset,
                                     std::size_t len,
                                     double leak_fraction) const {
  auto space = space_of(enclave);
  if (!space) return space.error();
  if (!(*space)->enclave) return Errc::invalid_argument;
  if (leak_fraction < 0.0 || leak_fraction > 1.0)
    return Errc::invalid_argument;
  if (offset + len > (*space)->frames.size() * hw::kPageSize)
    return Errc::invalid_argument;

  // A cache-timing attacker recovers bytes at a deterministic stride; the
  // rest stay unknown. This bypasses the EPC check entirely — that is the
  // point of the paper's "hardware is leaky" argument.
  Bytes out(len, 0);
  if (leak_fraction == 0.0) return out;
  const std::size_t stride =
      std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / leak_fraction));
  for (std::size_t i = 0; i < len; i += stride) {
    const std::size_t page = (offset + i) / hw::kPageSize;
    const std::size_t in_page = (offset + i) % hw::kPageSize;
    auto content = read_page(**space, page);
    if (!content) return content.error();
    out[i] = (*content)[in_page];
  }
  return out;
}

Cycles Sgx::message_cost(std::size_t len) const {
  // One enclave crossing per message direction.
  return machine_.costs().sgx_eenter + machine_.costs().sgx_eexit +
         machine_.costs().memcpy_per_16_bytes * ((len + 15) / 16);
}

substrate::ConcurrencyLaw Sgx::concurrency_law() const {
  // EENTER/EEXIT update shared enclave bookkeeping (EPCM/TCS state walks,
  // the measured-launch serialization the SGX microbenchmark literature
  // reports); the data-dependent EPC crypt work runs on the entering
  // core's MEE pipeline. So the fixed transition serializes, the per-byte
  // share scales.
  return substrate::ConcurrencyLaw::transition_serialized;
}

Cycles Sgx::attest_cost() const { return machine_.costs().sgx_ereport; }

Cycles Sgx::region_map_cost(std::size_t pages) const {
  // One ECALL round trip to agree on the untrusted buffer, plus host-side
  // page-table setup. Data in the region is deliberately outside the EPC:
  // the enclave treats it as untrusted input, and in exchange accesses are
  // plain loads — no MEE, no crossing.
  return machine_.costs().sgx_eenter + machine_.costs().sgx_eexit +
         machine_.costs().page_table_update * pages;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "sgx", [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<Sgx>(machine, config);
      });
}

}  // namespace lateral::sgx
