#include "fleet/admission.h"

#include <algorithm>

namespace lateral::fleet {

AdmissionGate::AdmissionGate(AdmissionPolicy policy)
    : policy_(policy), tokens_(policy.burst) {
  if (policy_.refill_per_megacycle == 0)
    throw Error("AdmissionGate: refill rate must be nonzero");
}

Status AdmissionGate::admit(Cycles now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (now > last_refill_) {
    const Cycles elapsed = now - last_refill_;
    const std::uint64_t add = elapsed * policy_.refill_per_megacycle /
                              1'000'000;
    if (add > 0) {
      tokens_ = std::min(policy_.burst, tokens_ + add);
      // Advance by the cycles actually converted, keeping the remainder in
      // the clock delta — fractional refills are deferred, never lost.
      last_refill_ += add * 1'000'000 / policy_.refill_per_megacycle;
    }
  }
  if (tokens_ == 0) {
    ++shed_;
    return Errc::exhausted;
  }
  --tokens_;
  ++admitted_;
  return Status::success();
}

std::uint64_t AdmissionGate::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

std::uint64_t AdmissionGate::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace lateral::fleet
