#include "fleet/fleet_server.h"

#include "crypto/sha256.h"

namespace lateral::fleet {

void apply_policy(FleetServerConfig& config,
                  const core::FleetPolicy& policy) {
  config.ticket_ttl = policy.ticket_ttl;
  config.admission.burst = policy.admit_burst;
  config.admission.refill_per_megacycle = policy.admit_rate;
}

CacheConfig cache_config(const core::FleetPolicy& policy,
                         const hw::Machine* clock) {
  CacheConfig cfg;
  cfg.capacity = policy.cache_capacity;
  cfg.ttl = policy.cache_ttl;
  cfg.clock = clock;
  return cfg;
}

FleetServer::FleetServer(FleetServerConfig config)
    : config_(std::move(config)),
      tickets_(to_bytes("fleet.ticketkey:" + config_.endpoint),
               config_.ticket_ttl),
      gate_(config_.admission),
      drbg_(to_bytes("fleet.server:" + config_.endpoint)),
      fleet_(config_.hub ? config_.hub->fleet(config_.label)
                         : runtime::MetricsHub::FleetRef(&own_fleet_)),
      counters_(config_.hub ? config_.hub->counters(config_.label)
                            : runtime::MetricsHub::CounterRef(&own_counters_)) {
  if (!config_.network || !config_.substrate)
    throw Error("FleetServer: network and substrate are required");
  if (config_.verifier && config_.expected_client.empty())
    throw Error("FleetServer: verifier requires expected_client");
  cq_ = make_completion_queue();
}

std::unique_ptr<runtime::CompletionQueue> FleetServer::make_completion_queue()
    const {
  runtime::CompletionQueueConfig cfg;
  cfg.depth = config_.batch_depth;
  // FIG14 sweeps batch_depth as the experiment variable; pin the controller
  // to it so the sweep measures the depth, not the controller.
  cfg.adaptive.min_batch = config_.batch_depth;
  cfg.adaptive.max_batch = config_.batch_depth;
  cfg.adaptive.initial = config_.batch_depth;
  cfg.adaptive.adaptive = false;
  cfg.hub = config_.hub;
  cfg.label = config_.label + ".mux";
  return std::make_unique<runtime::CompletionQueue>(
      *config_.substrate, config_.frontend_domain, config_.service_channel,
      cfg);
}

Cycles FleetServer::now() const {
  return config_.substrate->machine().now();
}

Status FleetServer::register_method(const std::string& name,
                                    net::RemoteDispatcher::Method handler) {
  if (name.empty() || !handler || name == config_.batched_method ||
      name == "scrape" || name == "audit_pull")  // built-ins (FIG16)
    return Errc::invalid_argument;
  const auto [it, inserted] = inline_methods_.emplace(name,
                                                      std::move(handler));
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Status FleetServer::pump(std::size_t max_batched) {
  while (true) {
    auto datagram = config_.network->receive(config_.endpoint);
    if (!datagram) break;  // drained
    handle_datagram(*datagram);
  }
  return serve_backlog(max_batched);
}

void FleetServer::handle_datagram(const net::SimNetwork::Datagram& datagram) {
  auto parsed = parse_frame(datagram.payload);
  if (!parsed) return;  // not even a protocol frame: nothing to answer
  switch (parsed->kind) {
    case FrameKind::full_msg1:
      handle_full_msg1(datagram.from, parsed->payload);
      break;
    case FrameKind::full_msg3:
      handle_full_msg3(datagram.from, parsed->payload);
      break;
    case FrameKind::resume:
      handle_resume(datagram.from, parsed->payload);
      break;
    case FrameKind::record:
      handle_record(datagram.from, parsed->payload);
      break;
    default:
      // Server-to-client kinds looping back: ignore.
      break;
  }
}

void FleetServer::handle_full_msg1(const std::string& peer,
                                   BytesView payload) {
  Session session;
  std::optional<net::VerifierConfig> verifier;
  if (config_.verifier)
    verifier = net::VerifierConfig{config_.verifier, config_.expected_client};
  session.channel = std::make_unique<net::SecureChannelEndpoint>(
      net::Role::responder, drbg_.generate(32),
      net::ProverConfig{config_.substrate, config_.service_domain}, verifier);

  auto msg2 = session.channel->handle_msg1(payload);
  if (!msg2) {
    send_reject(peer, msg2.error());
    return;
  }
  pending_[peer] = std::move(session);  // a retry supersedes any stale state
  send_frame(peer, FrameKind::full_msg2, *msg2);
}

void FleetServer::handle_full_msg3(const std::string& peer,
                                   BytesView payload) {
  const auto it = pending_.find(peer);
  if (it == pending_.end()) {
    send_reject(peer, Errc::invalid_argument);
    return;
  }
  Session session = std::move(it->second);
  pending_.erase(it);
  if (const Status s = session.channel->handle_msg3(payload); !s.ok()) {
    if (config_.audit)
      config_.audit->append(health::AuditKind::attestation_failed, peer,
                            s.error(), "handshake_msg3");
    send_reject(peer, s.error());
    return;
  }

  // Ticket bound to the identity this handshake just verified. Without
  // client verification there is no identity to bind — the zero digest
  // stands for "anonymous", and resumption grants no more than the full
  // handshake did.
  crypto::Digest measurement{};
  if (config_.verifier) {
    if (const auto expected =
            config_.verifier->expectation(config_.expected_client))
      measurement = *expected;
  }
  const MintedTicket minted = tickets_.mint(measurement, now());
  auto sealed = session.channel->seal_record(
      encode_grant(minted.wire, minted.secret));
  if (!sealed) return;  // channel came up unusable; client will retry

  sessions_[peer] = std::move(session);
  send_frame(peer, FrameKind::grant, *sealed);
  fleet_->handshakes_full++;
  fleet_->tickets_issued++;
  stamp_handshake_span(trace::SpanPhase::handshake_full, peer);
}

void FleetServer::handle_resume(const std::string& peer, BytesView payload) {
  auto request = decode_resume(payload);
  if (!request) {
    send_reject(peer, Errc::invalid_argument);
    return;
  }
  auto claims = tickets_.redeem(request->ticket_wire, now());
  if (!claims) {
    fleet_->tickets_rejected++;
    if (config_.audit)
      config_.audit->append(health::AuditKind::ticket_rejected, peer,
                            claims.error(), "redeem");
    send_reject(peer, claims.error());
    return;
  }
  // Possession of the secret, proven over the exact wire presented. A
  // failed binder still burned the ticket above — a lifted ticket can cost
  // its owner one resumption, never a session.
  if (!ct_equal(resume_binder(claims->secret, request->ticket_wire,
                              request->client_nonce),
                request->binder)) {
    fleet_->tickets_rejected++;
    if (config_.audit)
      config_.audit->append(health::AuditKind::ticket_rejected, peer,
                            Errc::verification_failed, "binder");
    send_reject(peer, Errc::verification_failed);
    return;
  }
  // The sealed identity must still be the one we expect TODAY: a policy
  // update (new known-good meter build) refuses tickets minted for the old
  // identity even though they are otherwise valid.
  if (config_.verifier) {
    const auto expected =
        config_.verifier->expectation(config_.expected_client);
    if (!expected ||
        !ct_equal(crypto::digest_view(claims->measurement),
                  crypto::digest_view(*expected))) {
      fleet_->tickets_rejected++;
      if (config_.audit)
        config_.audit->append(health::AuditKind::ticket_rejected, peer,
                              Errc::access_denied, "identity");
      send_reject(peer, Errc::access_denied);
      return;
    }
  }

  const Bytes server_nonce = drbg_.generate(32);
  const Bytes keys = resumption_keys(claims->secret, request->client_nonce,
                                     server_nonce);
  Session session;
  session.resumed = true;
  session.channel =
      net::SecureChannelEndpoint::resume(net::Role::responder, keys);
  sessions_[peer] = std::move(session);
  send_frame(peer, FrameKind::resume_ok, server_nonce);
  fleet_->handshakes_resumed++;
  stamp_handshake_span(trace::SpanPhase::handshake_resumed, peer);
}

void FleetServer::handle_record(const std::string& peer, BytesView payload) {
  const auto it = sessions_.find(peer);
  if (it == sessions_.end()) {
    send_reject(peer, Errc::invalid_argument);
    return;
  }
  auto plain = it->second.channel->open_record(payload);
  if (!plain) {
    // Channel authentication failed: tampering or a desynced peer. Fail
    // closed — drop the session; the client reconnects (ticket intact).
    if (config_.audit)
      config_.audit->append(health::AuditKind::session_tamper, peer,
                            Errc::verification_failed, "open_record");
    sessions_.erase(it);
    send_reject(peer, Errc::verification_failed);
    return;
  }
  auto request = net::decode_rpc_request(*plain);
  if (!request) {
    send_sealed(peer, FrameKind::reply,
                net::encode_rpc_reply(Errc::invalid_argument, {}));
    return;
  }

  if (request->method == config_.batched_method) {
    if (config_.admission_enabled && !gate_.admit(now()).ok()) {
      // Shed: answered immediately and counted, never queued, never lost.
      fleet_->admission_shed++;
      counters_->rejected++;
      send_sealed(peer, FrameKind::reply,
                  net::encode_rpc_reply(Errc::exhausted, {}));
      return;
    }
    counters_->submitted++;
    backlog_.push_back(Arrival{.peer = peer,
                               .payload = std::move(request->payload),
                               .arrived_at = now()});
    return;
  }

  // Built-in health-plane methods (FIG16), resolved before the inline
  // table so applications cannot shadow them. Both ride the established
  // sealed session: the scrape/audit consumer is exactly as attested as
  // any meter submitting a record.
  if (request->method == "scrape") {
    Bytes reply_plain;
    if (!config_.scrape_source) {
      reply_plain = net::encode_rpc_reply(Errc::not_supported, {});
    } else {
      fleet_->scrapes++;
      reply_plain = net::encode_rpc_reply(Errc::ok,
                                          to_bytes(config_.scrape_source()));
    }
    send_sealed(peer, FrameKind::reply, reply_plain);
    return;
  }
  if (request->method == "audit_pull") {
    send_sealed(peer, FrameKind::reply, serve_audit_pull(request->payload));
    return;
  }

  const auto method = inline_methods_.find(request->method);
  Bytes reply_plain;
  if (method == inline_methods_.end()) {
    reply_plain = net::encode_rpc_reply(Errc::invalid_argument, {});
  } else {
    Result<Bytes> result = method->second(request->payload);
    reply_plain = result ? net::encode_rpc_reply(Errc::ok, *result)
                         : net::encode_rpc_reply(result.error(), {});
  }
  send_sealed(peer, FrameKind::reply, reply_plain);
}

Bytes FleetServer::serve_audit_pull(BytesView payload) {
  if (!config_.audit) return net::encode_rpc_reply(Errc::not_supported, {});
  std::uint64_t from_seq = 0;
  if (payload.size() == 8) {
    for (const std::uint8_t b : payload) from_seq = (from_seq << 8) | b;
  } else if (!payload.empty()) {
    return net::encode_rpc_reply(Errc::invalid_argument, {});
  }
  auto segment = config_.audit->segment(from_seq, *config_.substrate,
                                        config_.service_domain);
  if (!segment) return net::encode_rpc_reply(segment.error(), {});
  fleet_->audit_pulls++;
  return net::encode_rpc_reply(Errc::ok, segment->serialize());
}

Status FleetServer::serve_backlog(std::size_t max_batched) {
  std::size_t served = 0;
  while (!backlog_.empty() && (max_batched == 0 || served < max_batched)) {
    Arrival& front = backlog_.front();
    auto id = cq_->submit(Bytes(front.payload));
    if (!id) {
      if (id.error() != Errc::exhausted) return id.error();
      // Submission ring full: ring once (flush + completion drain share
      // the crossing) and keep going — the bound is backpressure, not
      // loss.
      if (const Status s = cq_->doorbell(); !s.ok()) return s;
      drain_completions();
      continue;
    }
    in_flight_[*id] =
        InFlight{.peer = front.peer, .arrived_at = front.arrived_at};
    backlog_.pop_front();
    ++served;
  }
  const Status rung = cq_->doorbell();
  drain_completions();
  return rung;
}

void FleetServer::drain_completions() {
  cq_->for_each_completion([&](runtime::CqEvent& event) {
    auto node = in_flight_.extract(event.id);
    if (node.empty()) return;
    const InFlight& flight = node.mapped();
    const Bytes reply_plain =
        event.ok() ? net::encode_rpc_reply(Errc::ok, event.payload)
                   : net::encode_rpc_reply(event.status, {});
    counters_->completed++;
    counters_->record_latency(now() - flight.arrived_at);
    send_sealed(flight.peer, FrameKind::reply, reply_plain);
  });
}

void FleetServer::send_frame(const std::string& peer, FrameKind kind,
                             BytesView payload) {
  // A vanished peer is not the server's problem; delivery failure is the
  // client's timeout to handle.
  (void)config_.network->send(config_.endpoint, peer, frame(kind, payload));
}

void FleetServer::send_reject(const std::string& peer, Errc errc) {
  const Bytes payload{static_cast<std::uint8_t>(errc)};
  send_frame(peer, FrameKind::reject, payload);
}

void FleetServer::send_sealed(const std::string& peer, FrameKind kind,
                              BytesView plain) {
  const auto it = sessions_.find(peer);
  if (it == sessions_.end()) return;
  auto sealed = it->second.channel->seal_record(plain);
  if (!sealed) {
    sessions_.erase(it);
    return;
  }
  send_frame(peer, kind, *sealed);
}

void FleetServer::stamp_handshake_span(trace::SpanPhase phase,
                                       const std::string& peer) {
  if (!config_.tracer || !config_.tracer->enabled()) return;
  const trace::TraceContext ctx = config_.tracer->begin_trace();
  config_.substrate->stamp_span(config_.service_domain, ctx,
                                config_.tracer->next_span(), phase,
                                to_bytes(peer), 0);
}

void FleetServer::sync_verifier_cache(const CachedVerifier& cache) {
  const CacheStats stats = cache.cache_stats();
  fleet_->verify_cache_hits = stats.hits;
  fleet_->verify_cache_misses = stats.misses;
}

void FleetServer::on_service_restart(
    substrate::DomainId new_service_domain) {
  config_.service_domain = new_service_domain;
  // Every outstanding ticket was sealed by the dead incarnation's key.
  tickets_.rotate();
  // Live record keys likewise: drop the sessions, clients re-handshake.
  pending_.clear();
  sessions_.clear();
  // Admitted-but-unserved work cannot be answered (its sessions are gone):
  // account it as cancelled — withdrawn, not lost — so the lossless
  // invariant still balances after the crash.
  counters_->cancelled += backlog_.size() + in_flight_.size();
  backlog_.clear();
  in_flight_.clear();
  // Fresh channel epoch: the old queue would see stale_epoch forever.
  cq_ = make_completion_queue();
}

}  // namespace lateral::fleet
