// Attested-session resumption tickets (the TLS session-ticket idea, carried
// over to attested channels).
//
// After a client passes the full three-message quote exchange, the server
// mints a ticket binding the client's *code identity* (measurement) to a
// fresh resumption secret and an expiry. The ticket is sealed under a
// server-local key and opaque to the client; the secret travels to the
// client only inside the just-established channel. A later connection
// presents ticket + a keyed binder over it, and both sides derive fresh
// session keys from the secret — one round trip, no DH, no quotes.
//
// Security properties, each with an explicit rejection path:
//   - single-use: a redeemed ticket id is remembered until its expiry;
//     presenting it again fails with Errc::ticket_replayed.
//   - expiring: past its expiry the ticket fails with Errc::ticket_expired
//     (the redeemed-set prune rides on the same clock, so state is bounded
//     by tickets-per-TTL, not tickets-ever-minted).
//   - restart-invalidated: rotate() replaces the sealing key, so every
//     ticket minted by the previous incarnation fails to unseal
//     (Errc::verification_failed) and clients fall back to the full
//     handshake against the re-measured server.
//   - identity-bound: redeem() returns the sealed measurement; the server
//     refuses tickets whose identity no longer matches its expectation.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::fleet {

/// What mint() hands out: the sealed wire form (client-opaque) and the
/// resumption secret (for the client, via the established channel).
struct MintedTicket {
  Bytes wire;
  Bytes secret;
  std::uint64_t id = 0;
};

/// What a successful redeem() recovers from the sealed wire.
struct TicketClaims {
  crypto::Digest measurement{};  // client code identity at mint time
  Bytes secret;
  Cycles expiry = 0;
  std::uint64_t id = 0;
};

class TicketIssuer {
 public:
  /// `ttl` is the ticket lifetime in simulated cycles.
  TicketIssuer(BytesView key_seed, Cycles ttl);

  Cycles ttl() const { return ttl_; }

  /// Mint a ticket for a client whose measurement was just verified.
  MintedTicket mint(const crypto::Digest& client_measurement, Cycles now);

  /// Unseal + validate + mark-redeemed, in that order:
  ///   verification_failed — unsealable (forged, or minted before rotate())
  ///   ticket_expired      — past expiry
  ///   ticket_replayed     — id already redeemed this lifetime
  Result<TicketClaims> redeem(BytesView wire, Cycles now);

  /// Key rotation (server restart): every outstanding ticket now fails to
  /// unseal, and the redeemed-set is cleared (old ids can never collide —
  /// they belonged to a key that no longer exists).
  void rotate();

  std::size_t redeemed_live() const;

 private:
  crypto::Aead make_aead() const;

  const Bytes key_seed_;
  const Cycles ttl_;

  mutable std::mutex mu_;
  crypto::HmacDrbg drbg_;
  std::uint64_t key_epoch_ = 0;
  crypto::Aead aead_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Cycles> redeemed_;  // id -> expiry (pruned by now)
};

}  // namespace lateral::fleet
