#include "fleet/protocol.h"

namespace lateral::fleet {
namespace {

constexpr std::size_t kNonceBytes = 32;
constexpr std::size_t kBinderBytes = 32;

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

Result<Bytes> read_blob32(BytesView wire, std::size_t& offset) {
  if (offset + 4 > wire.size()) return Errc::invalid_argument;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | wire[offset++];
  if (offset + len > wire.size()) return Errc::invalid_argument;
  Bytes out(wire.begin() + static_cast<long>(offset),
            wire.begin() + static_cast<long>(offset + len));
  offset += len;
  return out;
}

}  // namespace

Bytes frame(FrameKind kind, BytesView payload) {
  Bytes out;
  out.reserve(1 + payload.size());
  out.push_back(static_cast<std::uint8_t>(kind));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Frame> parse_frame(BytesView datagram) {
  if (datagram.empty()) return Errc::invalid_argument;
  const auto kind = static_cast<FrameKind>(datagram[0]);
  switch (kind) {
    case FrameKind::full_msg1:
    case FrameKind::full_msg3:
    case FrameKind::resume:
    case FrameKind::record:
    case FrameKind::full_msg2:
    case FrameKind::grant:
    case FrameKind::resume_ok:
    case FrameKind::reject:
    case FrameKind::reply:
      break;
    default:
      return Errc::invalid_argument;
  }
  Frame out;
  out.kind = kind;
  out.payload.assign(datagram.begin() + 1, datagram.end());
  return out;
}

Bytes resumption_keys(BytesView secret, BytesView client_nonce,
                      BytesView server_nonce) {
  Bytes ikm;
  ikm.insert(ikm.end(), client_nonce.begin(), client_nonce.end());
  ikm.insert(ikm.end(), server_nonce.begin(), server_nonce.end());
  return crypto::hkdf(secret, ikm, to_bytes("lateral.fleet.resume.v1"), 32);
}

Bytes resume_binder(BytesView secret, BytesView ticket_wire,
                    BytesView client_nonce) {
  Bytes msg = to_bytes("lateral.fleet.binder.v1");
  msg.insert(msg.end(), ticket_wire.begin(), ticket_wire.end());
  msg.insert(msg.end(), client_nonce.begin(), client_nonce.end());
  return crypto::digest_bytes(crypto::hmac_sha256(secret, msg));
}

Bytes encode_resume(BytesView ticket_wire, BytesView client_nonce,
                    BytesView binder) {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(ticket_wire.size()));
  out.insert(out.end(), ticket_wire.begin(), ticket_wire.end());
  out.insert(out.end(), client_nonce.begin(), client_nonce.end());
  out.insert(out.end(), binder.begin(), binder.end());
  return out;
}

Result<ResumeRequest> decode_resume(BytesView payload) {
  std::size_t offset = 0;
  auto ticket = read_blob32(payload, offset);
  if (!ticket) return ticket.error();
  if (payload.size() != offset + kNonceBytes + kBinderBytes)
    return Errc::invalid_argument;
  ResumeRequest out;
  out.ticket_wire = std::move(*ticket);
  out.client_nonce.assign(payload.begin() + static_cast<long>(offset),
                          payload.begin() +
                              static_cast<long>(offset + kNonceBytes));
  out.binder.assign(payload.begin() +
                        static_cast<long>(offset + kNonceBytes),
                    payload.end());
  return out;
}

Bytes encode_grant(BytesView ticket_wire, BytesView secret) {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(ticket_wire.size()));
  out.insert(out.end(), ticket_wire.begin(), ticket_wire.end());
  out.insert(out.end(), secret.begin(), secret.end());
  return out;
}

Result<Grant> decode_grant(BytesView plain) {
  std::size_t offset = 0;
  auto ticket = read_blob32(plain, offset);
  if (!ticket) return ticket.error();
  if (plain.size() <= offset) return Errc::invalid_argument;
  Grant out;
  out.ticket_wire = std::move(*ticket);
  out.secret.assign(plain.begin() + static_cast<long>(offset), plain.end());
  return out;
}

}  // namespace lateral::fleet
