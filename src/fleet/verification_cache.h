// CachedVerifier — quote-verification results cached by code identity.
//
// The SoK observation behind FIG14: remote-attestation handshakes are the
// dominant per-connection cost, and a fleet of identical meters presents
// the SAME measurement a million times over. A cache hit skips the
// endorsement-chain signature checks (the RSA work — in this cost model the
// entirety of "quote verification") and accepts the quote on the strength
// of the measurement having fully verified within the TTL window.
//
// What a hit still checks, because it is cheap and load-bearing:
//   - the challenge nonce is ours and unconsumed (freshness, consumed),
//   - user_data binds exactly this nonce + context (no cross-session splice),
//   - the measurement matches the current expectation (policy can change).
//
// The honest tradeoff, stated rather than hidden: within the TTL window a
// quote's *signatures* are not re-checked, so per-connection
// proof-of-possession of a fused device key degrades to "this measurement
// proved itself recently". docs/fleet.md discusses when that is acceptable
// (fleets of low-value identical clients) and the knob that disables it
// (ttl = 0 -> every verification is a miss).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/attestation.h"
#include "hw/machine.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::fleet {

struct CacheConfig {
  std::size_t capacity = 256;    // bounded: LRU eviction beyond this
  Cycles ttl = 50'000'000;       // hit window in simulated cycles; 0 = off
  const hw::Machine* clock = nullptr;  // required: TTL rides simulated time
};

struct CacheStats {
  std::uint64_t hits = 0;        // verifications served without RSA work
  std::uint64_t misses = 0;      // full verifications performed
  std::uint64_t evictions = 0;   // capacity- or TTL-driven removals
};

class CachedVerifier : public core::AttestationVerifier {
 public:
  CachedVerifier(BytesView drbg_seed, CacheConfig config);

  Status verify(const std::string& logical_name, BytesView quote_wire,
                BytesView nonce, BytesView context) override;

  CacheStats cache_stats() const;
  std::size_t cache_size() const;
  void flush_cache();

 private:
  struct Entry {
    Cycles verified_at = 0;
    std::uint64_t last_used = 0;  // LRU tick
  };

  static std::string cache_key(const std::string& logical_name,
                               const crypto::Digest& measurement);

  const CacheConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> cache_;
  std::uint64_t lru_tick_ = 0;
  CacheStats stats_;
};

}  // namespace lateral::fleet
