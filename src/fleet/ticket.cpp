#include "fleet/ticket.h"

namespace lateral::fleet {
namespace {

// Ticket plaintext: [32B measurement | 32B secret | 8B expiry | 8B id].
constexpr std::size_t kSecretBytes = 32;
constexpr std::size_t kPlainBytes = 32 + kSecretBytes + 8 + 8;

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64(BytesView wire, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | wire[offset + i];
  return v;
}

const Bytes kTicketAad = to_bytes("lateral.fleet.ticket.v1");

}  // namespace

TicketIssuer::TicketIssuer(BytesView key_seed, Cycles ttl)
    : key_seed_(key_seed.begin(), key_seed.end()),
      ttl_(ttl),
      drbg_(key_seed),
      aead_(make_aead()) {
  if (ttl == 0) throw Error("TicketIssuer: ttl must be nonzero");
}

crypto::Aead TicketIssuer::make_aead() const {
  // The sealing key is derived from the seed AND the epoch: rotate() bumps
  // the epoch, and nothing sealed under the old key opens again.
  Bytes info = to_bytes("lateral.fleet.ticketkey.v1:");
  append_u64(info, key_epoch_);
  return crypto::Aead(crypto::hkdf(/*salt=*/{}, key_seed_, info, 32));
}

MintedTicket TicketIssuer::mint(const crypto::Digest& client_measurement,
                                Cycles now) {
  std::lock_guard<std::mutex> lock(mu_);
  MintedTicket out;
  out.id = next_id_++;
  out.secret = drbg_.generate(kSecretBytes);

  Bytes plain;
  plain.reserve(kPlainBytes);
  plain.insert(plain.end(), client_measurement.begin(),
               client_measurement.end());
  plain.insert(plain.end(), out.secret.begin(), out.secret.end());
  append_u64(plain, now + ttl_);
  append_u64(plain, out.id);

  // The id doubles as the AEAD nonce: unique per key epoch by construction
  // (rotate() replaces the key, so post-rotate reuse of an id is under a
  // different keystream).
  const crypto::SealedBox box = aead_.seal(out.id, kTicketAad, plain);
  Bytes wire;
  append_u64(wire, box.nonce);
  wire.insert(wire.end(), box.tag.begin(), box.tag.end());
  wire.insert(wire.end(), box.ciphertext.begin(), box.ciphertext.end());
  out.wire = std::move(wire);
  return out;
}

Result<TicketClaims> TicketIssuer::redeem(BytesView wire, Cycles now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wire.size() != 8 + 16 + kPlainBytes) return Errc::verification_failed;

  crypto::SealedBox box;
  box.nonce = read_u64(wire, 0);
  std::copy(wire.begin() + 8, wire.begin() + 24, box.tag.begin());
  box.ciphertext.assign(wire.begin() + 24, wire.end());

  auto plain = aead_.open(box, kTicketAad);
  if (!plain || plain->size() != kPlainBytes)
    return Errc::verification_failed;

  TicketClaims claims;
  std::copy(plain->begin(), plain->begin() + 32, claims.measurement.begin());
  claims.secret.assign(plain->begin() + 32,
                       plain->begin() + 32 + kSecretBytes);
  claims.expiry = read_u64(*plain, 32 + kSecretBytes);
  claims.id = read_u64(*plain, 32 + kSecretBytes + 8);
  if (claims.id != box.nonce) return Errc::verification_failed;

  // Prune on every redeem attempt, before any outcome: an expired id can
  // never redeem again, so remembering it is pure state. This bounds the
  // set by mint-rate x TTL regardless of the rejection mix.
  for (auto it = redeemed_.begin(); it != redeemed_.end();) {
    it = it->second < now ? redeemed_.erase(it) : std::next(it);
  }
  if (now > claims.expiry) return Errc::ticket_expired;

  const auto [it, inserted] = redeemed_.emplace(claims.id, claims.expiry);
  (void)it;
  if (!inserted) return Errc::ticket_replayed;
  return claims;
}

void TicketIssuer::rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++key_epoch_;
  aead_ = make_aead();
  redeemed_.clear();
}

std::size_t TicketIssuer::redeemed_live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return redeemed_.size();
}

}  // namespace lateral::fleet
