#include "fleet/fleet_client.h"

namespace lateral::fleet {

FleetClient::FleetClient(FleetClientConfig config)
    : config_(std::move(config)),
      drbg_(to_bytes("fleet.client:" + config_.endpoint)) {
  if (!config_.network) throw Error("FleetClient: network is required");
  // Idempotent: first client with this name registers the endpoint.
  (void)config_.network->register_endpoint(config_.endpoint);
}

Status FleetClient::send_frame(FrameKind kind, BytesView payload) {
  return config_.network->send(config_.endpoint, config_.server_endpoint,
                               frame(kind, payload));
}

Result<Frame> FleetClient::next_frame() {
  auto datagram = config_.network->receive(config_.endpoint);
  if (!datagram) {
    if (!config_.drive) return Errc::io_error;
    config_.drive();
    datagram = config_.network->receive(config_.endpoint);
    if (!datagram) return Errc::io_error;
  }
  auto parsed = parse_frame(datagram->payload);
  if (!parsed) return Errc::io_error;
  if (parsed->kind == FrameKind::reject) {
    if (parsed->payload.size() != 1 || parsed->payload[0] == 0)
      return Errc::io_error;
    return static_cast<Errc>(parsed->payload[0]);
  }
  return parsed;
}

Status FleetClient::connect() {
  disconnect();
  if (ticket_) {
    const Status resumed = connect_resumed();
    if (resumed.ok()) return resumed;
    // Whatever the server disliked about the ticket (expired, replayed,
    // rotated away, identity policy), the remedy is the same: forget it
    // and prove ourselves from scratch.
    last_reject_ = resumed.error();
    ticket_.reset();
    channel_.reset();
  }
  return connect_full();
}

Status FleetClient::connect_full() {
  auto channel = std::make_unique<net::SecureChannelEndpoint>(
      net::Role::initiator, drbg_.generate(32), config_.prover,
      config_.verifier);

  auto msg1 = channel->start();
  if (!msg1) return msg1.error();
  if (const Status s = send_frame(FrameKind::full_msg1, *msg1); !s.ok())
    return s;

  auto msg2 = next_frame();
  if (!msg2) return msg2.error();
  if (msg2->kind != FrameKind::full_msg2) return Errc::io_error;

  auto msg3 = channel->handle_msg2(msg2->payload);
  if (!msg3) return msg3.error();
  if (const Status s = send_frame(FrameKind::full_msg3, *msg3); !s.ok())
    return s;

  // The grant doubles as the handshake-complete ack: it only opens if both
  // sides derived the same keys, and it carries next session's ticket.
  auto granted = next_frame();
  if (!granted) return granted.error();
  if (granted->kind != FrameKind::grant) return Errc::io_error;
  auto plain = channel->open_record(granted->payload);
  if (!plain) return plain.error();
  auto grant = decode_grant(*plain);
  if (!grant) return grant.error();

  ticket_ = TicketState{.wire = std::move(grant->ticket_wire),
                        .secret = std::move(grant->secret)};
  channel_ = std::move(channel);
  resumed_ = false;
  return Status::success();
}

Status FleetClient::connect_resumed() {
  const Bytes client_nonce = drbg_.generate(32);
  const Bytes binder =
      resume_binder(ticket_->secret, ticket_->wire, client_nonce);
  if (const Status s =
          send_frame(FrameKind::resume,
                     encode_resume(ticket_->wire, client_nonce, binder));
      !s.ok())
    return s;

  auto response = next_frame();
  if (!response) return response.error();
  if (response->kind != FrameKind::resume_ok) return Errc::io_error;

  const Bytes keys =
      resumption_keys(ticket_->secret, client_nonce, response->payload);
  channel_ = net::SecureChannelEndpoint::resume(net::Role::initiator, keys);
  resumed_ = true;
  // Single-use: this ticket is now redeemed server-side. Holding onto it
  // would only buy the next connect a ticket_replayed rejection.
  ticket_.reset();
  return Status::success();
}

void FleetClient::disconnect() {
  channel_.reset();
  resumed_ = false;
}

Result<Bytes> FleetClient::call(const std::string& method,
                                BytesView payload) {
  if (const Status s = submit(method, payload); !s.ok()) return s.error();
  if (config_.drive) config_.drive();
  return collect();
}

Status FleetClient::submit(const std::string& method, BytesView payload) {
  if (!channel_) return Errc::would_block;
  auto record =
      channel_->seal_record(net::encode_rpc_request(method, payload));
  if (!record) return record.error();
  return send_frame(FrameKind::record, *record);
}

Result<Bytes> FleetClient::collect() {
  if (!channel_) return Errc::would_block;
  auto datagram = config_.network->receive(config_.endpoint);
  if (!datagram) return Errc::would_block;
  auto parsed = parse_frame(datagram->payload);
  if (!parsed) return Errc::io_error;
  if (parsed->kind == FrameKind::reject) {
    // The server dropped our session (e.g. restart); reconnect to go on.
    disconnect();
    if (parsed->payload.size() != 1 || parsed->payload[0] == 0)
      return Errc::io_error;
    return static_cast<Errc>(parsed->payload[0]);
  }
  if (parsed->kind != FrameKind::reply) return Errc::io_error;
  auto plain = channel_->open_record(parsed->payload);
  if (!plain) return plain.error();
  return net::decode_rpc_reply(*plain);
}

}  // namespace lateral::fleet
