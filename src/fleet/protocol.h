// lateral::fleet wire protocol — framing for a multiplexed attested server.
//
// net::federation establishes ONE link between two fixed endpoints with both
// sides driven from the same call stack. A fleet server instead demuxes many
// clients off a single SimNetwork endpoint, so every datagram carries a
// one-byte frame kind in front of its payload: handshake legs, ticket
// resumption, and sealed RPC records all share the wire. The secure-channel
// payloads inside the frames are unchanged — framing adds routing, not
// trust; a forged frame kind at worst selects the wrong state machine,
// which then fails record authentication.
#pragma once

#include <cstdint>

#include "crypto/hmac.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::fleet {

enum class FrameKind : std::uint8_t {
  // client -> server
  full_msg1 = 0x01,  // handshake msg1 (dh_pub_i || nonce_i)
  full_msg3 = 0x02,  // handshake msg3 (quote_I)
  resume = 0x03,     // [u32 ticket_len | ticket | 32B nonce_c | 32B binder]
  record = 0x04,     // sealed RPC request record
  // server -> client
  full_msg2 = 0x11,  // handshake msg2 (dh_pub_r || nonce_r || quote_R)
  grant = 0x12,      // sealed record: [u32 ticket_len | ticket | 32B secret]
  resume_ok = 0x13,  // [32B nonce_s]
  reject = 0x14,     // [u8 errc] — why a handshake/resumption was refused
  reply = 0x15,      // sealed RPC reply record
};

struct Frame {
  FrameKind kind = FrameKind::reject;
  Bytes payload;
};

/// Prepend the frame kind to a payload.
Bytes frame(FrameKind kind, BytesView payload);

/// Split a datagram into kind + payload; invalid_argument on an empty
/// datagram or a kind outside the protocol.
Result<Frame> parse_frame(BytesView datagram);

// --- Resumption crypto ----------------------------------------------------

/// Session keys for a resumed channel: HKDF over both nonces, salted with
/// the ticket's resumption secret. Either side deriving different inputs
/// (stolen ticket without the secret, tampered nonce) yields keys that fail
/// every record — the resumed channel authenticates itself in use.
Bytes resumption_keys(BytesView secret, BytesView client_nonce,
                      BytesView server_nonce);

/// Proof of secret possession presented WITH the ticket: a keyed MAC over
/// the exact ticket wire and the client's nonce. A ticket lifted off the
/// wire is useless without the secret, which only ever travelled inside the
/// originally attested channel.
Bytes resume_binder(BytesView secret, BytesView ticket_wire,
                    BytesView client_nonce);

/// Encode/decode the resume frame payload.
Bytes encode_resume(BytesView ticket_wire, BytesView client_nonce,
                    BytesView binder);
struct ResumeRequest {
  Bytes ticket_wire;
  Bytes client_nonce;
  Bytes binder;
};
Result<ResumeRequest> decode_resume(BytesView payload);

/// Encode/decode the grant plaintext (travels sealed in the fresh channel).
Bytes encode_grant(BytesView ticket_wire, BytesView secret);
struct Grant {
  Bytes ticket_wire;
  Bytes secret;
};
Result<Grant> decode_grant(BytesView plain);

}  // namespace lateral::fleet
