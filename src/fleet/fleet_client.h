// FleetClient — one meter in the FIG14 fleet.
//
// Wraps the connection policy a real device would carry: hold the
// resumption ticket from the last session, try the one-RTT resumed
// handshake first, and fall back to the full three-message quote exchange
// whenever the server refuses (expired / replayed / rotated-away ticket,
// changed identity expectations). The fallback is the protocol's safety
// net: every rejection path ends in a fresh full handshake, never a
// wedged client.
//
// Two calling styles:
//   - call(): synchronous RPC; `drive` (the callback that runs the server's
//     pump) is invoked between send and receive.
//   - submit()/collect(): pipelined — seal and send many requests without
//     waiting, then collect replies in order after the caller has pumped
//     the server. This is how a fleet bench loads one batch crossing with
//     hundreds of meters' readings.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "fleet/protocol.h"
#include "net/network.h"
#include "net/remote.h"
#include "net/secure_channel.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::fleet {

struct FleetClientConfig {
  std::string endpoint;         // this client's network name (registered
                                // by the constructor if needed)
  std::string server_endpoint;  // the FleetServer's network name
  net::SimNetwork* network = nullptr;
  /// Attest ourselves (the TrustZone metering component).
  std::optional<net::ProverConfig> prover;
  /// Require the server's code identity (the SGX anonymizer).
  std::optional<net::VerifierConfig> verifier;
  /// Runs the server between our send and receive (single-process
  /// simulation stand-in for "the server is always running").
  std::function<void()> drive;
};

class FleetClient {
 public:
  explicit FleetClient(FleetClientConfig config);

  /// Connect: resumed when a ticket is held and the server accepts it,
  /// full handshake otherwise. A refused ticket is discarded and the
  /// connection falls back to the full handshake transparently;
  /// last_reject() tells why.
  Status connect();

  bool connected() const { return channel_ != nullptr; }
  /// Did the *current* connection resume (vs full handshake)?
  bool resumed() const { return resumed_; }
  bool has_ticket() const { return ticket_.has_value(); }
  /// Why the last resumption attempt was refused (Errc::ok if it was not).
  Errc last_reject() const { return last_reject_; }

  /// Drop the connection but keep the ticket — the next connect() resumes.
  void disconnect();
  void clear_ticket() { ticket_.reset(); }

  /// Synchronous RPC (uses `drive`).
  Result<Bytes> call(const std::string& method, BytesView payload);

  /// Pipelined RPC: seal + send without waiting. Replies arrive in order
  /// via collect() once the server has pumped.
  Status submit(const std::string& method, BytesView payload);
  /// Next in-order reply; Errc::would_block when none has arrived.
  Result<Bytes> collect();

 private:
  struct TicketState {
    Bytes wire;
    Bytes secret;
  };

  Status connect_full();
  Status connect_resumed();
  /// Receive the next frame for us, running `drive` first when the queue
  /// is empty. A reject frame surfaces as its carried error code.
  Result<Frame> next_frame();
  Status send_frame(FrameKind kind, BytesView payload);

  FleetClientConfig config_;
  crypto::HmacDrbg drbg_;
  std::unique_ptr<net::SecureChannelEndpoint> channel_;
  std::optional<TicketState> ticket_;
  bool resumed_ = false;
  Errc last_reject_ = Errc::ok;
};

}  // namespace lateral::fleet
