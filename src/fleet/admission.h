// AdmissionGate — token-bucket admission control at the network edge.
//
// Overload policy for a fleet server: either bound the work you accept, or
// let queueing delay grow without bound and serve everyone terribly. The
// gate refills `refill_per_megacycle` request tokens per simulated
// megacycle up to a `burst` ceiling; a request that finds no token is shed
// — refused *immediately and visibly* (the client gets Errc::exhausted and
// MetricsHub counts admission_shed), never queued and never silently
// dropped. Everything admitted is served: shedding at the edge is what
// makes the "zero lost admitted requests" invariant affordable under 10x
// overload.
//
// Thread-safe: the FIG14 pump is single-threaded, but the gate is shared
// observable state (TSan-exercised in fleet_test) like the rest of the
// metrics machinery.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/result.h"
#include "util/types.h"

namespace lateral::fleet {

struct AdmissionPolicy {
  std::uint64_t burst = 256;                // bucket capacity, in requests
  std::uint64_t refill_per_megacycle = 64;  // sustained rate
};

class AdmissionGate {
 public:
  explicit AdmissionGate(AdmissionPolicy policy);

  /// One request at simulated time `now`: success = admitted (a token was
  /// consumed), Errc::exhausted = shed.
  Status admit(Cycles now);

  std::uint64_t admitted() const;
  std::uint64_t shed() const;
  const AdmissionPolicy& policy() const { return policy_; }

 private:
  const AdmissionPolicy policy_;
  mutable std::mutex mu_;
  std::uint64_t tokens_;
  Cycles last_refill_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace lateral::fleet
