#include "fleet/verification_cache.h"

#include <algorithm>

#include "substrate/quote.h"

namespace lateral::fleet {

CachedVerifier::CachedVerifier(BytesView drbg_seed, CacheConfig config)
    : core::AttestationVerifier(drbg_seed), config_(config) {
  if (!config_.clock) throw Error("CachedVerifier: clock is required");
}

std::string CachedVerifier::cache_key(const std::string& logical_name,
                                      const crypto::Digest& measurement) {
  std::string key = logical_name;
  key.push_back('\0');
  key.append(reinterpret_cast<const char*>(measurement.data()),
             measurement.size());
  return key;
}

Status CachedVerifier::verify(const std::string& logical_name,
                              BytesView quote_wire, BytesView nonce,
                              BytesView context) {
  auto quote = substrate::Quote::deserialize(quote_wire);
  if (!quote) return Errc::invalid_argument;

  const Cycles now = config_.clock->now();
  const std::string key = cache_key(logical_name, quote->measurement);

  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (config_.ttl != 0 && now <= it->second.verified_at + config_.ttl) {
        it->second.last_used = ++lru_tick_;
        hit = true;
      } else {
        cache_.erase(it);  // stale: fall through to a full verification
        ++stats_.evictions;
      }
    }
  }

  if (hit) {
    // The cheap, load-bearing checks still run on every hit; only the
    // endorsement-chain RSA work is skipped.
    const auto expected = expectation(logical_name);
    if (!expected ||
        !ct_equal(crypto::digest_view(quote->measurement),
                  crypto::digest_view(*expected)))
      return Errc::verification_failed;
    if (!challenge_outstanding(nonce)) return Errc::verification_failed;
    if (!ct_equal(quote->user_data, core::bound_user_data(nonce, context)))
      return Errc::verification_failed;
    consume_challenge(nonce);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    return Status::success();
  }

  const Status full = AttestationVerifier::verify(logical_name, quote_wire,
                                                  nonce, context);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (!full.ok()) return full;

  if (cache_.size() >= config_.capacity && cache_.find(key) == cache_.end()) {
    const auto lru = std::min_element(
        cache_.begin(), cache_.end(), [](const auto& a, const auto& b) {
          return a.second.last_used < b.second.last_used;
        });
    cache_.erase(lru);
    ++stats_.evictions;
  }
  cache_[key] = Entry{.verified_at = now, .last_used = ++lru_tick_};
  return full;
}

CacheStats CachedVerifier::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CachedVerifier::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void CachedVerifier::flush_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += cache_.size();
  cache_.clear();
}

}  // namespace lateral::fleet
