// FleetServer — one utility server, a million meters (FIG14).
//
// net::establish_link attests exactly one client per call and drives both
// sides from one stack; production is many clients multiplexed onto one
// SGX anonymizer domain. FleetServer demuxes a single SimNetwork endpoint
// by claimed source address into per-connection session state, and runs
// everything from a single-threaded pump() — no per-connection threads:
//
//   - Full handshakes (three messages) verified through the configured
//     verifier — pass a fleet::CachedVerifier and a burst of
//     identical-measurement meters amortizes one RSA verification.
//   - One-RTT ticket resumption via TicketIssuer, with distinct
//     trace spans (handshake_full vs handshake_resumed) and rejection
//     paths (ticket_expired / ticket_replayed / identity mismatch) that
//     push clients back to the full handshake.
//   - RPC records are admission-controlled at the edge (token bucket;
//     refusals are counted and answered, not dropped), then pumped through
//     ONE CompletionQueue into the service domain so the enclave-crossing
//     cost is paid per doorbell, not per meter.
//   - pump(max_batched) caps the service work per tick; admitted surplus
//     stays in an internal arrival queue — lossless backpressure. The
//     arrival->completion latency histogram (MetricsHub, label `<label>`)
//     is where 10x overload either stays bounded (gate on) or collapses
//     (gate off); bench_fig14 plots exactly that.
//
// A supervised restart of the service domain plugs in via
// on_service_restart(): tickets rotate (all outstanding ones die), live
// sessions drop, and the batch channel re-attaches to the new epoch.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/attestation.h"
#include "core/manifest.h"
#include "health/audit.h"
#include "fleet/admission.h"
#include "fleet/protocol.h"
#include "fleet/ticket.h"
#include "fleet/verification_cache.h"
#include "net/network.h"
#include "net/remote.h"
#include "net/secure_channel.h"
#include "runtime/completion_queue.h"
#include "runtime/metrics.h"
#include "trace/trace.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::fleet {

struct FleetServerConfig {
  // --- Wiring -------------------------------------------------------------
  std::string endpoint;  // this server's (registered) network name
  net::SimNetwork* network = nullptr;
  substrate::IsolationSubstrate* substrate = nullptr;
  /// The attested service (e.g. the SGX anonymizer): prover identity for
  /// handshakes AND callee of the batched channel.
  substrate::DomainId service_domain = substrate::kInvalidDomain;
  /// Untrusted frontend domain acting as the batch channel's caller side.
  substrate::DomainId frontend_domain = substrate::kInvalidDomain;
  substrate::ChannelId service_channel = 0;

  // --- Client authentication ---------------------------------------------
  /// Optional: require clients to attest as `expected_client`. Pass a
  /// CachedVerifier to amortize identical-measurement bursts.
  core::AttestationVerifier* verifier = nullptr;
  std::string expected_client;

  // --- Routing -------------------------------------------------------------
  /// Requests to this method go through the CompletionQueue into the
  /// service domain (payload = request payload, reply = handler reply).
  /// All other methods must be registered inline via register_method().
  std::string batched_method = "report";

  // --- Knobs (see docs/fleet.md; mirror the manifest `fleet` stanza) ------
  Cycles ticket_ttl = 5'000'000;
  AdmissionPolicy admission{};
  bool admission_enabled = true;
  std::size_t batch_depth = 64;

  // --- Observability -------------------------------------------------------
  runtime::MetricsHub* hub = nullptr;  // optional; label below
  std::string label = "fleet";
  trace::Tracer* tracer = nullptr;     // optional: handshake spans

  // --- Health plane (FIG16) ------------------------------------------------
  /// When set, the built-in `scrape` method answers with this text (wire the
  /// assembly's dump_observability / render_metrics_text here). Served only
  /// over an established sealed session — the same attestation gate every
  /// record passes — so metrics never leave the box to an unattested peer.
  std::function<std::string()> scrape_source;
  /// When set: (a) the built-in `audit_pull` method serves sealed, attested
  /// AuditSegments from this log (payload = optional 8-byte big-endian
  /// from_seq), and (b) security-relevant rejections on this server (ticket
  /// replay/expiry, record tamper, failed client attestation) are appended
  /// to it as evidence.
  health::AuditLog* audit = nullptr;
};

/// Size a server config from a manifest `fleet { ... }` stanza (ticket TTL
/// and admission bucket; the verification cache is sized separately via
/// cache_config() because it needs a clock and lives outside the server).
void apply_policy(FleetServerConfig& config, const core::FleetPolicy& policy);

/// The CachedVerifier sizing implied by a manifest `fleet` stanza.
CacheConfig cache_config(const core::FleetPolicy& policy,
                         const hw::Machine* clock);

class FleetServer {
 public:
  explicit FleetServer(FleetServerConfig config);

  /// Register an inline (non-batched) method, dispatched synchronously on
  /// the pump thread.
  Status register_method(const std::string& name,
                         net::RemoteDispatcher::Method handler);

  /// Drain the network endpoint and serve: progress handshakes and
  /// resumptions, admit/shed RPC records, push up to `max_batched` admitted
  /// requests through the service channel (0 = everything queued), and send
  /// sealed replies. Single-threaded by design.
  Status pump(std::size_t max_batched = 0);

  /// Supervised-restart hook: the service domain was relaunched as
  /// `new_service_domain`. Rotates the ticket key (outstanding tickets fail
  /// to unseal -> full-handshake fallback), drops every live session (their
  /// record keys belong to the dead incarnation), and re-attaches the batch
  /// channel at the channel's new epoch.
  void on_service_restart(substrate::DomainId new_service_domain);

  std::size_t sessions() const { return sessions_.size(); }
  std::size_t backlog() const { return backlog_.size(); }
  runtime::FleetStats stats() const { return fleet_.snapshot(); }

  /// Mirror a CachedVerifier's hit/miss counters into the hub's FleetStats
  /// so one dump_observability() shows the whole fleet picture. (The cache
  /// is shared state the server only borrows; it cannot observe hits
  /// itself.)
  void sync_verifier_cache(const CachedVerifier& cache);

 private:
  struct Session {
    std::unique_ptr<net::SecureChannelEndpoint> channel;
    bool resumed = false;
  };
  struct InFlight {
    std::string peer;
    Cycles arrived_at = 0;
  };
  struct Arrival {
    std::string peer;
    Bytes payload;
    Cycles arrived_at = 0;
  };

  void handle_datagram(const net::SimNetwork::Datagram& datagram);
  void handle_full_msg1(const std::string& peer, BytesView payload);
  void handle_full_msg3(const std::string& peer, BytesView payload);
  void handle_resume(const std::string& peer, BytesView payload);
  void handle_record(const std::string& peer, BytesView payload);
  /// The `audit_pull` built-in: seal the log through the current epoch,
  /// attest the seal with the service domain, answer with the serialized
  /// AuditSegment. `payload` is empty (from the chain genesis) or an 8-byte
  /// big-endian starting sequence number.
  Bytes serve_audit_pull(BytesView payload);
  Status serve_backlog(std::size_t max_batched);
  void drain_completions();
  void send_frame(const std::string& peer, FrameKind kind, BytesView payload);
  void send_reject(const std::string& peer, Errc errc);
  /// Seal `plain` on the peer's session and send it as `kind`; drops the
  /// session on a sealing failure (the channel is unusable).
  void send_sealed(const std::string& peer, FrameKind kind, BytesView plain);
  void stamp_handshake_span(trace::SpanPhase phase, const std::string& peer);
  Cycles now() const;
  std::unique_ptr<runtime::CompletionQueue> make_completion_queue() const;

  FleetServerConfig config_;
  TicketIssuer tickets_;
  AdmissionGate gate_;
  crypto::HmacDrbg drbg_;
  /// The one crossing into the service domain: admitted requests are
  /// submitted here and pump() rings a single doorbell per tick — flush
  /// and completion drain share that crossing (fixed depth; FIG14 sweeps
  /// batch_depth explicitly, so the adaptive controller stays off).
  std::unique_ptr<runtime::CompletionQueue> cq_;
  std::map<std::string, Session> pending_;   // mid-handshake, by peer
  std::map<std::string, Session> sessions_;  // established, by peer
  std::map<std::string, net::RemoteDispatcher::Method> inline_methods_;
  std::deque<Arrival> backlog_;              // admitted, not yet submitted
  std::map<runtime::SubmissionId, InFlight> in_flight_;
  runtime::MetricsHub::FleetSlot own_fleet_;
  runtime::MetricsHub::FleetRef fleet_;
  runtime::MetricsHub::CounterSlot own_counters_;
  runtime::MetricsHub::CounterRef counters_;  // arrival->completion e2e
};

}  // namespace lateral::fleet
