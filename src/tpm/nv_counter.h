// Monotonic non-volatile counter bank — the TPM's rollback-protection
// primitive (TPM2_NV_DefineSpace with TPM2_NT_COUNTER semantics), shared
// between the discrete-chip TPM substrate and the software fTPM exactly
// like PcrBank.
//
// Semantics: once defined, a counter only ever moves forward. There is no
// write, no undefine, no reset — `increment` is the single mutator. That is
// what makes it a root-of-trust anchor for update rollback protection: an
// attacker who replays an old (validly signed) image cannot also rewind the
// counter, so the stale version number is refused by arithmetic, not by
// policy. The bank lives in the substrate object, which outlives every
// domain it hosts — counters therefore persist across kill_domain and
// supervised restart, the simulation analogue of NV flash on the chip.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/result.h"

namespace lateral::tpm {

/// Counters a single bank will hold at most — real TPMs have a small, fixed
/// NV budget; modeling it keeps callers honest about index hygiene.
constexpr std::size_t kMaxNvCounters = 16;

class NvCounterBank {
 public:
  /// TPM2_NV_DefineSpace: allocate a named counter starting at 0.
  /// Defining an existing name is idempotent (returns success, keeps the
  /// current value) so supervised restarts can re-run provisioning code.
  Status define(const std::string& name) {
    if (name.empty()) return Errc::invalid_argument;
    if (counters_.contains(name)) return Status::success();
    if (counters_.size() >= kMaxNvCounters) return Errc::exhausted;
    counters_.emplace(name, 0);
    return Status::success();
  }

  /// TPM2_NV_Read: current value; undefined counters fail closed.
  Result<std::uint64_t> read(const std::string& name) const {
    const auto it = counters_.find(name);
    if (it == counters_.end()) return Errc::invalid_argument;
    return it->second;
  }

  /// TPM2_NV_Increment: the only mutator — returns the post-bump value.
  Result<std::uint64_t> increment(const std::string& name) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) return Errc::invalid_argument;
    return ++it->second;
  }

  std::size_t defined() const { return counters_.size(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace lateral::tpm
