// TPM isolation substrate (paper §II-B "Trusted Platform Module").
//
// Models a discrete TPM chip plus the late-launch (DRTM) path:
//  * PCR bank with extend-only semantics; PCR0 holds the CRTM measurement
//    of the machine's boot ROM (authenticated boot, §II-D);
//  * quote = device-key signature over the PCR composite and caller nonce;
//  * sealing binds secrets to PCR state — change the boot chain and
//    unsealing fails;
//  * trusted components run via late launch, Flicker-style: they are
//    mutually isolated by distinct cryptographic identities but CANNOT run
//    concurrently — invoking a different component pays a full late-launch
//    context switch;
//  * component state lives on-chip: a physical bus attacker gets nothing;
//  * everything is slow: each interaction is a command over a slow bus to
//    chip firmware (the invocation-cost experiment's outlier, by design);
//  * no legacy hosting — legacy code runs on the main CPU, outside this
//    substrate.
#pragma once

#include "substrate/registry.h"
#include "substrate/substrate.h"
#include "tpm/nv_counter.h"
#include "tpm/pcr_bank.h"

namespace lateral::tpm {

class Tpm final : public substrate::IsolationSubstrate {
 public:
  Tpm(hw::Machine& machine, substrate::SubstrateConfig config);

  const substrate::SubstrateInfo& info() const override;

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  // --- PCR interface ------------------------------------------------------
  /// PCR_Extend: pcr = H(pcr || digest).
  Status pcr_extend(std::size_t index, const crypto::Digest& digest);
  Result<crypto::Digest> pcr_read(std::size_t index) const;
  /// Composite hash over a PCR selection (what quotes sign).
  crypto::Digest pcr_composite(const std::vector<std::size_t>& selection) const;

  /// TPM_Quote: sign (composite, nonce) with the endorsement key.
  Result<substrate::Quote> quote_pcrs(const std::vector<std::size_t>& selection,
                                      BytesView nonce);

  /// Seal data to the *current* value of the selected PCRs.
  Result<Bytes> seal_to_pcrs(const std::vector<std::size_t>& selection,
                             BytesView plaintext);
  /// Unseal succeeds only if the selected PCRs still match sealing time.
  Result<Bytes> unseal_pcrs(BytesView sealed);

  // --- Monotonic NV counters (rollback protection) ------------------------
  /// TPM2_NV_DefineSpace: allocate a named monotonic counter (idempotent).
  Status nv_define(const std::string& name);
  /// TPM2_NV_Read: current value.
  Result<std::uint64_t> nv_read(const std::string& name);
  /// TPM2_NV_Increment: bump and return the new value — the only mutator.
  Result<std::uint64_t> nv_increment(const std::string& name);

  /// Which component is currently late-launched (kInvalidDomain if none).
  substrate::DomainId active_component() const { return active_; }

  /// No shared grant regions: component state lives in on-chip SRAM and
  /// legacy code lives across a slow LPC bus — there is no memory both
  /// sides can address. Callers fall back to the (batched) copy path.
  bool supports_regions() const override { return false; }

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// Flicker semantics: switching the invoked component performs a full
  /// late launch (stop everything, reset the DRTM PCR, measure, start).
  Status pre_call(substrate::DomainId actor,
                  substrate::DomainId callee) override;

 private:
  struct ChipSpace {
    std::vector<hw::PhysAddr> frames;  // on-chip SRAM pages
  };

  substrate::SubstrateInfo info_;
  hw::FrameAllocator sram_frames_;
  std::map<substrate::DomainId, ChipSpace> spaces_;
  PcrBank pcrs_;
  NvCounterBank nv_;
  substrate::DomainId active_ = substrate::kInvalidDomain;
  std::uint64_t seal_pcr_nonce_ = 1;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::tpm
