// Platform Configuration Register bank — the TPM's measurement log
// structure, shared between the discrete-chip TPM substrate and the
// software fTPM (paper §II-C: "Microsoft Surface tablets implement TPM
// functionality not using dedicated TPM security chips, but as software
// running within TrustZone").
//
// Semantics: extend-only accumulators. pcr' = H(pcr || digest); there is no
// operation that restores a previous value, which is what makes the boot
// log trustworthy.
#pragma once

#include <array>
#include <vector>

#include "crypto/sha256.h"
#include "util/result.h"

namespace lateral::tpm {

constexpr std::size_t kNumPcrs = 24;
/// The DRTM PCR that late launch resets and extends (PCR17 on real HW).
constexpr std::size_t kDrtmPcr = 17;

class PcrBank {
 public:
  Status extend(std::size_t index, const crypto::Digest& digest) {
    if (index >= kNumPcrs) return Errc::invalid_argument;
    pcrs_[index] = crypto::Sha256::hash2(crypto::digest_view(pcrs_[index]),
                                         crypto::digest_view(digest));
    return Status::success();
  }

  Result<crypto::Digest> read(std::size_t index) const {
    if (index >= kNumPcrs) return Errc::invalid_argument;
    return pcrs_[index];
  }

  /// Only the DRTM machinery may reset, and only the DRTM PCR.
  Status drtm_reset() {
    pcrs_[kDrtmPcr] = crypto::Digest{};
    return Status::success();
  }

  /// Composite hash over a selection (what quotes sign and sealing binds).
  crypto::Digest composite(const std::vector<std::size_t>& selection) const {
    crypto::Sha256 ctx;
    for (const std::size_t index : selection) {
      if (index >= kNumPcrs) continue;
      const std::uint8_t idx_byte = static_cast<std::uint8_t>(index);
      ctx.update(BytesView(&idx_byte, 1));
      ctx.update(crypto::digest_view(pcrs_[index]));
    }
    return ctx.finish();
  }

  /// Validate a selection without computing anything.
  static Status check_selection(const std::vector<std::size_t>& selection) {
    for (const std::size_t index : selection)
      if (index >= kNumPcrs) return Errc::invalid_argument;
    return Status::success();
  }

 private:
  std::array<crypto::Digest, kNumPcrs> pcrs_{};
};

}  // namespace lateral::tpm
