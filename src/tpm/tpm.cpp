#include "tpm/tpm.h"

#include "crypto/hmac.h"

namespace lateral::tpm {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::DomainKind;
using substrate::Feature;

Tpm::Tpm(hw::Machine& machine, substrate::SubstrateConfig config)
    : IsolationSubstrate(machine, std::move(config)),
      sram_frames_(machine.sram()) {
  info_.name = "tpm";
  info_.features = Feature::spatial_isolation | Feature::sealed_storage |
                   Feature::attestation | Feature::late_launch;
  info_.tcb_loc = 15'000;  // chip firmware + DRTM microcode
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software,
                           AttackerModel::physical_bus,
                           AttackerModel::physical_intrusion};

  // CRTM: the unchangeable first boot step measures the boot ROM into PCR0
  // before anything else runs (authenticated boot).
  (void)pcr_extend(0, machine_.boot_rom().measurement());
}

const substrate::SubstrateInfo& Tpm::info() const { return info_; }

Status Tpm::admit_domain(const substrate::DomainSpec& spec) const {
  // Fixed-function chip: no legacy hosting, and only small components fit
  // in chip memory.
  if (spec.kind == DomainKind::legacy) return Errc::not_supported;
  if (spec.memory_pages == 0 || spec.memory_pages > 8)
    return Errc::exhausted;
  return Status::success();
}

Status Tpm::attach_memory(DomainId id, DomainRecord& record) {
  ChipSpace space;
  space.frames.reserve(record.spec.memory_pages);
  for (std::size_t i = 0; i < record.spec.memory_pages; ++i) {
    auto frame = sram_frames_.allocate(1);
    if (!frame) {
      for (const hw::PhysAddr f : space.frames) (void)sram_frames_.free(f, 1);
      return frame.error();
    }
    space.frames.push_back(*frame);
  }
  BytesView code = record.spec.image.code;
  for (std::size_t i = 0; i < space.frames.size() && !code.empty(); ++i) {
    const std::size_t n = std::min<std::size_t>(hw::kPageSize, code.size());
    machine_.memory().load(space.frames[i], code.subspan(0, n));
    code = code.subspan(n);
  }
  spaces_.emplace(id, std::move(space));
  return Status::success();
}

void Tpm::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  for (const hw::PhysAddr frame : it->second.frames)
    (void)sram_frames_.free(frame, 1);
  spaces_.erase(it);
  if (active_ == id) active_ = substrate::kInvalidDomain;
}

Result<Bytes> Tpm::read_memory(DomainId actor, DomainId target,
                               std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (actor != target) return Errc::access_denied;
  const auto it = spaces_.find(target);
  if (it == spaces_.end()) return Errc::no_such_domain;
  const ChipSpace& space = it->second;
  if (offset + len > space.frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;

  machine_.charge(machine_.costs().tpm_command_base,
                  machine_.costs().tpm_per_byte * 16, len);
  Bytes out;
  out.reserve(len);
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    Bytes chunk = machine_.memory().dump(space.frames[page] + in_page, n);
    out.insert(out.end(), chunk.begin(), chunk.end());
    offset += n;
    len -= n;
  }
  return out;
}

Status Tpm::write_memory(DomainId actor, DomainId target, std::uint64_t offset,
                         BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (actor != target) return Errc::access_denied;
  const auto it = spaces_.find(target);
  if (it == spaces_.end()) return Errc::no_such_domain;
  const ChipSpace& space = it->second;
  if (offset + data.size() > space.frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;

  machine_.charge(machine_.costs().tpm_command_base,
                  machine_.costs().tpm_per_byte * 16, data.size());
  while (!data.empty()) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    machine_.memory().load(space.frames[page] + in_page, data.subspan(0, n));
    data = data.subspan(n);
    offset += n;
  }
  return Status::success();
}

Status Tpm::pcr_extend(std::size_t index, const crypto::Digest& digest) {
  machine_.advance(machine_.costs().tpm_command_base);
  return pcrs_.extend(index, digest);
}

Result<crypto::Digest> Tpm::pcr_read(std::size_t index) const {
  return pcrs_.read(index);
}

crypto::Digest Tpm::pcr_composite(
    const std::vector<std::size_t>& selection) const {
  return pcrs_.composite(selection);
}

Result<substrate::Quote> Tpm::quote_pcrs(
    const std::vector<std::size_t>& selection, BytesView nonce) {
  for (const std::size_t index : selection)
    if (index >= kNumPcrs) return Errc::invalid_argument;
  machine_.advance(machine_.costs().tpm_command_base +
                   machine_.costs().tpm_sign_extra);
  return substrate::make_quote("tpm", pcr_composite(selection), nonce,
                               machine_.fuses().endorsement_key(),
                               machine_.fuses().endorsement_cert());
}

Result<Bytes> Tpm::seal_to_pcrs(const std::vector<std::size_t>& selection,
                                BytesView plaintext) {
  for (const std::size_t index : selection)
    if (index >= kNumPcrs) return Errc::invalid_argument;
  machine_.advance(machine_.costs().tpm_command_base);

  // Sealing key binds device key and current PCR composite.
  const crypto::Aead aead = sealing_aead(pcr_composite(selection));
  const crypto::SealedBox box = aead.seal(seal_pcr_nonce_++, {}, plaintext);
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(selection.size()));
  for (const std::size_t index : selection)
    out.push_back(static_cast<std::uint8_t>(index));
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(box.nonce >> (8 * i)));
  out.insert(out.end(), box.tag.begin(), box.tag.end());
  out.insert(out.end(), box.ciphertext.begin(), box.ciphertext.end());
  return out;
}

Result<Bytes> Tpm::unseal_pcrs(BytesView sealed) {
  machine_.advance(machine_.costs().tpm_command_base);
  if (sealed.size() < 1) return Errc::invalid_argument;
  const std::size_t sel_len = sealed[0];
  if (sealed.size() < 1 + sel_len + 8 + 16) return Errc::invalid_argument;
  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < sel_len; ++i) {
    if (sealed[1 + i] >= kNumPcrs) return Errc::invalid_argument;
    selection.push_back(sealed[1 + i]);
  }
  std::size_t offset = 1 + sel_len;
  crypto::SealedBox box;
  for (int i = 0; i < 8; ++i)
    box.nonce = (box.nonce << 8) | sealed[offset + i];
  offset += 8;
  std::copy(sealed.begin() + static_cast<long>(offset),
            sealed.begin() + static_cast<long>(offset + 16), box.tag.begin());
  offset += 16;
  box.ciphertext.assign(sealed.begin() + static_cast<long>(offset),
                        sealed.end());

  const crypto::Aead aead = sealing_aead(pcr_composite(selection));
  auto plain = aead.open(box, {});
  if (!plain) return Errc::verification_failed;  // PCR state changed
  return std::move(*plain);
}

Status Tpm::nv_define(const std::string& name) {
  machine_.advance(machine_.costs().tpm_command_base);
  return nv_.define(name);
}

Result<std::uint64_t> Tpm::nv_read(const std::string& name) {
  machine_.advance(machine_.costs().tpm_command_base);
  return nv_.read(name);
}

Result<std::uint64_t> Tpm::nv_increment(const std::string& name) {
  machine_.advance(machine_.costs().tpm_command_base);
  return nv_.increment(name);
}

Status Tpm::pre_call(DomainId actor, DomainId callee) {
  (void)actor;
  const auto it = spaces_.find(callee);
  if (it == spaces_.end()) return Errc::no_such_domain;
  if (active_ != callee) {
    // Late launch: stop everything, reset the DRTM PCR, measure the new
    // component, transfer control. Mutual isolation between components
    // comes from their distinct measured identities, not concurrency.
    const DomainRecord* record = find_domain(callee);
    if (!record) return Errc::no_such_domain;
    machine_.advance(machine_.costs().tpm_command_base * 2);
    (void)pcrs_.drtm_reset();  // PCR reset (only DRTM can)
    if (const Status s = pcr_extend(kDrtmPcr, record->measurement); !s.ok())
      return s;
    active_ = callee;
  }
  return Status::success();
}

Cycles Tpm::message_cost(std::size_t len) const {
  return machine_.costs().tpm_command_base +
         machine_.costs().tpm_per_byte * len;
}

substrate::ConcurrencyLaw Tpm::concurrency_law() const {
  // A discrete chip on a slow bus executes one command at a time, end to
  // end; a second core's command waits for the bus and the firmware.
  return substrate::ConcurrencyLaw::device_serialized;
}

Cycles Tpm::attest_cost() const {
  return machine_.costs().tpm_command_base + machine_.costs().tpm_sign_extra;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "tpm", [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<Tpm>(machine, config);
      });
}

}  // namespace lateral::tpm
