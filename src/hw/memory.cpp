#include "hw/memory.h"

#include <algorithm>
#include <cstring>

namespace lateral::hw {

PhysicalMemory::PhysicalMemory(std::size_t total_bytes)
    : storage_(total_bytes, 0) {}

Result<Range> PhysicalMemory::add_region(const std::string& name,
                                         PhysAddr begin, std::size_t length,
                                         RegionAttributes attrs) {
  if (begin % kPageSize != 0 || length % kPageSize != 0)
    return Errc::invalid_argument;
  if (begin + length > storage_.size() || begin + length < begin)
    return Errc::invalid_argument;
  const Range range{begin, begin + length};
  for (const auto& existing : regions_) {
    if (existing.name == name) return Errc::invalid_argument;
    if (range.begin < existing.range.end && existing.range.begin < range.end)
      return Errc::invalid_argument;  // overlap
  }
  regions_.push_back(NamedRegion{name, range, attrs});
  return range;
}

Result<Range> PhysicalMemory::region(const std::string& name) const {
  for (const auto& r : regions_)
    if (r.name == name) return r.range;
  return Errc::invalid_argument;
}

const PhysicalMemory::NamedRegion* PhysicalMemory::find_region(
    PhysAddr addr) const {
  for (const auto& r : regions_)
    if (addr >= r.range.begin && addr < r.range.end) return &r;
  return nullptr;
}

Result<RegionAttributes> PhysicalMemory::attributes_at(PhysAddr addr) const {
  const NamedRegion* r = find_region(addr);
  if (!r) return Errc::invalid_argument;
  return r->attrs;
}

Status PhysicalMemory::set_page_owner(PhysAddr page_addr,
                                      std::uint64_t owner_tag) {
  if (page_addr % kPageSize != 0 || page_addr >= storage_.size())
    return Errc::invalid_argument;
  if (owner_tag == 0)
    page_owner_.erase(page_addr);
  else
    page_owner_[page_addr] = owner_tag;
  return Status::success();
}

std::uint64_t PhysicalMemory::page_owner(PhysAddr page_addr) const {
  const auto it = page_owner_.find(page_addr & ~(kPageSize - 1));
  return it == page_owner_.end() ? 0 : it->second;
}

Status PhysicalMemory::check(const AccessContext& ctx, PhysAddr addr,
                             std::size_t len, bool is_write) const {
  if (addr + len > storage_.size() || addr + len < addr)
    return Errc::invalid_argument;
  // Walk the access page by page: attributes and owner tags are
  // page-granular.
  PhysAddr cursor = addr & ~(std::uint64_t(kPageSize) - 1);
  const PhysAddr last = addr + len;
  for (; cursor < last; cursor += kPageSize) {
    const NamedRegion* r = find_region(cursor);
    if (r) {
      if (r->attrs.secure_only && ctx.state != SecurityState::secure)
        return Errc::access_denied;
      if (r->attrs.read_only && is_write) return Errc::access_denied;
    }
    const std::uint64_t owner = page_owner(cursor);
    if (owner != 0 && owner != ctx.owner_tag) return Errc::access_denied;
  }
  return Status::success();
}

Status PhysicalMemory::read(const AccessContext& ctx, PhysAddr addr,
                            std::size_t len, Bytes& out) const {
  if (const Status s = check(ctx, addr, len, /*is_write=*/false); !s.ok())
    return s;
  out.assign(storage_.begin() + static_cast<long>(addr),
             storage_.begin() + static_cast<long>(addr + len));
  return Status::success();
}

Status PhysicalMemory::write(const AccessContext& ctx, PhysAddr addr,
                             BytesView data) {
  if (const Status s = check(ctx, addr, data.size(), /*is_write=*/true);
      !s.ok())
    return s;
  std::copy(data.begin(), data.end(),
            storage_.begin() + static_cast<long>(addr));
  return Status::success();
}

Status PhysicalMemory::raw_read(PhysAddr addr, std::size_t len,
                                Bytes& out) const {
  if (addr + len > storage_.size() || addr + len < addr)
    return Errc::invalid_argument;
  // Physical probing cannot reach on-chip memory.
  for (PhysAddr cursor = addr & ~(std::uint64_t(kPageSize) - 1);
       cursor < addr + len; cursor += kPageSize) {
    const NamedRegion* r = find_region(cursor);
    if (r && r->attrs.on_chip) return Errc::access_denied;
  }
  out.assign(storage_.begin() + static_cast<long>(addr),
             storage_.begin() + static_cast<long>(addr + len));
  return Status::success();
}

Status PhysicalMemory::raw_write(PhysAddr addr, BytesView data) {
  if (addr + data.size() > storage_.size() || addr + data.size() < addr)
    return Errc::invalid_argument;
  for (PhysAddr cursor = addr & ~(std::uint64_t(kPageSize) - 1);
       cursor < addr + data.size(); cursor += kPageSize) {
    const NamedRegion* r = find_region(cursor);
    if (r && r->attrs.on_chip) return Errc::access_denied;
  }
  std::copy(data.begin(), data.end(),
            storage_.begin() + static_cast<long>(addr));
  return Status::success();
}

void PhysicalMemory::load(PhysAddr addr, BytesView data) {
  if (addr + data.size() > storage_.size())
    throw Error("PhysicalMemory::load out of bounds");
  std::copy(data.begin(), data.end(),
            storage_.begin() + static_cast<long>(addr));
}

Bytes PhysicalMemory::dump(PhysAddr addr, std::size_t len) const {
  if (addr + len > storage_.size())
    throw Error("PhysicalMemory::dump out of bounds");
  return Bytes(storage_.begin() + static_cast<long>(addr),
               storage_.begin() + static_cast<long>(addr + len));
}

FrameAllocator::FrameAllocator(Range range)
    : range_(range), used_(range.size() / kPageSize, false) {
  if (range.begin % kPageSize != 0 || range.size() % kPageSize != 0)
    throw Error("FrameAllocator: unaligned range");
}

Result<PhysAddr> FrameAllocator::allocate(std::size_t pages) {
  if (pages == 0) return Errc::invalid_argument;
  std::size_t run = 0;
  for (std::size_t i = 0; i < used_.size(); ++i) {
    run = used_[i] ? 0 : run + 1;
    if (run == pages) {
      const std::size_t first = i + 1 - pages;
      for (std::size_t j = first; j <= i; ++j) used_[j] = true;
      return range_.begin + first * kPageSize;
    }
  }
  return Errc::exhausted;
}

Status FrameAllocator::free(PhysAddr addr, std::size_t pages) {
  if (addr < range_.begin || addr % kPageSize != 0)
    return Errc::invalid_argument;
  const std::size_t first = (addr - range_.begin) / kPageSize;
  if (first + pages > used_.size()) return Errc::invalid_argument;
  for (std::size_t j = first; j < first + pages; ++j) {
    if (!used_[j]) return Errc::invalid_argument;  // double free
    used_[j] = false;
  }
  return Status::success();
}

std::size_t FrameAllocator::pages_free() const {
  return static_cast<std::size_t>(
      std::count(used_.begin(), used_.end(), false));
}

}  // namespace lateral::hw
