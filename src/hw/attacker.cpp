#include "hw/attacker.h"

#include <algorithm>

namespace lateral::hw {

Result<Bytes> PhysicalAttacker::probe(PhysAddr addr, std::size_t len) const {
  Bytes out;
  if (const Status s = machine_.memory().raw_read(addr, len, out); !s.ok())
    return s.error();
  return out;
}

Status PhysicalAttacker::tamper(PhysAddr addr, BytesView data) {
  return machine_.memory().raw_write(addr, data);
}

std::vector<PhysAddr> PhysicalAttacker::scan(Range range,
                                             BytesView needle) const {
  std::vector<PhysAddr> hits;
  if (needle.empty() || range.size() < needle.size()) return hits;
  Bytes haystack;
  if (!machine_.memory().raw_read(range.begin, range.size(), haystack).ok())
    return hits;
  auto it = haystack.begin();
  for (;;) {
    it = std::search(it, haystack.end(), needle.begin(), needle.end());
    if (it == haystack.end()) break;
    hits.push_back(range.begin +
                   static_cast<PhysAddr>(std::distance(haystack.begin(), it)));
    ++it;
  }
  return hits;
}

Status PhysicalAttacker::flip_random_bits(Range range, std::size_t count,
                                          util::Xoshiro& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const PhysAddr addr = range.begin + rng.below(range.size());
    Bytes byte;
    if (const Status s = machine_.memory().raw_read(addr, 1, byte); !s.ok())
      return s;
    byte[0] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    if (const Status s = machine_.memory().raw_write(addr, byte); !s.ok())
      return s;
  }
  return Status::success();
}

}  // namespace lateral::hw
