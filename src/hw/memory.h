// Simulated physical memory.
//
// Memory is divided into named regions with hardware attributes. The two
// that matter for the paper's attacker models:
//   * on_chip  — SRAM/caches/fuses: invisible to a physical bus attacker.
//   * secure_only — TrustZone-style: accessible only when the access carries
//     the secure security state (the "NS bit" of the bus transaction).
// EPC-style enclave protection is layered on top by the SGX substrate via
// `owner_tag`: a region slice claimed for an enclave is readable/writable
// only by accesses carrying that tag.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace lateral::hw {

constexpr std::size_t kPageSize = 4096;

using PhysAddr = std::uint64_t;

/// Security state carried by a bus access (TrustZone NS bit analogue).
enum class SecurityState : std::uint8_t { non_secure, secure };

/// Who is performing an access, as seen by the memory system.
struct AccessContext {
  SecurityState state = SecurityState::non_secure;
  /// EPC owner tag carried by the access; 0 = no enclave context.
  std::uint64_t owner_tag = 0;
};

struct RegionAttributes {
  bool on_chip = false;      // shielded from physical bus probing
  bool secure_only = false;  // requires SecurityState::secure
  bool read_only = false;    // boot ROM
};

/// A half-open physical address range.
struct Range {
  PhysAddr begin = 0;
  PhysAddr end = 0;
  bool contains(PhysAddr addr, std::size_t len) const {
    return addr >= begin && addr + len <= end && addr + len >= addr;
  }
  std::size_t size() const { return end - begin; }
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t total_bytes);

  std::size_t size() const { return storage_.size(); }

  /// Define a named region with attributes. Regions must not overlap.
  /// Returns the range. Errc::invalid_argument on overlap/misalignment.
  Result<Range> add_region(const std::string& name, PhysAddr begin,
                           std::size_t length, RegionAttributes attrs);

  Result<Range> region(const std::string& name) const;
  Result<RegionAttributes> attributes_at(PhysAddr addr) const;

  /// Claim/release an owner tag on a page (EPC semantics). A tagged page is
  /// only accessible by accesses carrying the identical tag.
  Status set_page_owner(PhysAddr page_addr, std::uint64_t owner_tag);
  std::uint64_t page_owner(PhysAddr page_addr) const;

  /// Checked access paths: enforce secure_only / owner_tag / read_only.
  Status read(const AccessContext& ctx, PhysAddr addr, std::size_t len,
              Bytes& out) const;
  Status write(const AccessContext& ctx, PhysAddr addr, BytesView data);

  /// Raw paths used by the physical bus attacker and by loaders. These see
  /// exactly what is stored in DRAM cells (ciphertext if a substrate
  /// encrypted the data before storing). They fail on on-chip memory —
  /// that is the one thing tamper-resistant packaging actually guarantees.
  Status raw_read(PhysAddr addr, std::size_t len, Bytes& out) const;
  Status raw_write(PhysAddr addr, BytesView data);

  /// Loader path: ignores all protection. Only boot ROM setup and test
  /// fixtures use it.
  void load(PhysAddr addr, BytesView data);
  Bytes dump(PhysAddr addr, std::size_t len) const;

 private:
  struct NamedRegion {
    std::string name;
    Range range;
    RegionAttributes attrs;
  };

  const NamedRegion* find_region(PhysAddr addr) const;
  Status check(const AccessContext& ctx, PhysAddr addr, std::size_t len,
               bool is_write) const;

  Bytes storage_;
  std::vector<NamedRegion> regions_;
  std::map<PhysAddr, std::uint64_t> page_owner_;  // page addr -> tag
};

/// Simple first-fit page-frame allocator over a range.
class FrameAllocator {
 public:
  FrameAllocator() = default;
  explicit FrameAllocator(Range range);

  /// Allocate `pages` contiguous pages. Errc::exhausted when full.
  Result<PhysAddr> allocate(std::size_t pages);
  Status free(PhysAddr addr, std::size_t pages);

  std::size_t pages_free() const;

 private:
  Range range_{};
  std::vector<bool> used_;  // one bit per page
};

}  // namespace lateral::hw
