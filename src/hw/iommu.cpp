#include "hw/iommu.h"

#include "hw/machine.h"

namespace lateral::hw {

Status Iommu::map(DeviceId dev, PhysAddr page, std::size_t pages,
                  bool writable) {
  if (page % kPageSize != 0) return Errc::invalid_argument;
  auto& table = tables_[dev];
  for (std::size_t i = 0; i < pages; ++i)
    table[page + i * kPageSize] = Entry{writable};
  return Status::success();
}

Status Iommu::unmap(DeviceId dev, PhysAddr page, std::size_t pages) {
  if (page % kPageSize != 0) return Errc::invalid_argument;
  const auto it = tables_.find(dev);
  if (it == tables_.end()) return Errc::invalid_argument;
  for (std::size_t i = 0; i < pages; ++i)
    it->second.erase(page + i * kPageSize);
  return Status::success();
}

Status Iommu::check(DeviceId dev, PhysAddr addr, std::size_t len,
                    bool is_write) const {
  if (mode_ == Mode::disabled) return Status::success();
  const auto table_it = tables_.find(dev);
  if (table_it == tables_.end()) return Errc::access_denied;
  const auto& table = table_it->second;
  for (PhysAddr page = addr & ~(std::uint64_t(kPageSize) - 1);
       page < addr + len; page += kPageSize) {
    const auto it = table.find(page);
    if (it == table.end()) return Errc::access_denied;
    if (is_write && !it->second.writable) return Errc::access_denied;
  }
  return Status::success();
}

Device::Device(DeviceId id, std::string name, Machine& machine, Iommu& iommu)
    : id_(id), name_(std::move(name)), machine_(machine), iommu_(iommu) {}

Result<Bytes> Device::dma_read(PhysAddr addr, std::size_t len) {
  machine_.advance(machine_.costs().dma_setup +
                   machine_.costs().dma_per_page * ((len + kPageSize - 1) / kPageSize));
  if (const Status s = iommu_.check(id_, addr, len, /*is_write=*/false);
      !s.ok())
    return s.error();
  Bytes out;
  // DMA bypasses CPU-side checks (secure_only, owner tags) by design — the
  // IOMMU is the only line of defence. It still cannot reach on-chip memory.
  if (const Status s = machine_.memory().raw_read(addr, len, out); !s.ok())
    return s.error();
  return out;
}

Status Device::dma_write(PhysAddr addr, BytesView data) {
  machine_.advance(machine_.costs().dma_setup +
                   machine_.costs().dma_per_page *
                       ((data.size() + kPageSize - 1) / kPageSize));
  if (const Status s = iommu_.check(id_, addr, data.size(), /*is_write=*/true);
      !s.ok())
    return s;
  return machine_.memory().raw_write(addr, data);
}

}  // namespace lateral::hw
