// Physical bus attacker.
//
// Models the paper's strongest attacker class short of chip decapsulation
// (§II-D "Physical Exposure of Data"): off-chip wires are accessible, so
// DRAM can be read and altered, while on-chip SRAM, ROM and fuses are
// shielded by tamper-resistant packaging.
//
// Experiments use this to show which substrates keep secrets confidential
// (SGX/SEP encrypt before data leaves the die) and which do not (plain
// MMU isolation).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/types.h"

namespace lateral::hw {

class PhysicalAttacker {
 public:
  explicit PhysicalAttacker(Machine& machine) : machine_(machine) {}

  /// Probe DRAM. Fails (access_denied) only for on-chip regions.
  Result<Bytes> probe(PhysAddr addr, std::size_t len) const;

  /// Overwrite DRAM content (cold-boot / interposer attack).
  Status tamper(PhysAddr addr, BytesView data);

  /// Scan a range for a byte pattern (e.g. a known key or plaintext
  /// fragment). Returns the offsets of all matches.
  std::vector<PhysAddr> scan(Range range, BytesView needle) const;

  /// Flip `count` random bits in the range (rowhammer-style corruption).
  Status flip_random_bits(Range range, std::size_t count, util::Xoshiro& rng);

 private:
  Machine& machine_;
};

}  // namespace lateral::hw
