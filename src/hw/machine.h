// The simulated machine: clock, physical memory, fuse bank, boot ROM.
//
// A Machine is the unit a substrate is instantiated on. Distributed
// scenarios (smart meter <-> utility server) create several machines and
// connect them through net::SimNetwork.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "hw/cost_model.h"
#include "hw/memory.h"
#include "util/types.h"

namespace lateral::hw {

/// Keys fused into the silicon at manufacturing time. Only reachable by
/// substrate code holding a SecurityState::secure / on-die execution
/// context — the substrates gate access; the bank itself is on-chip.
class FuseBank {
 public:
  FuseBank(crypto::Aes128Key device_key, crypto::RsaKeyPair endorsement_key,
           Bytes endorsement_cert);

  /// Per-device symmetric key (TrustZone-style fused AES key).
  const crypto::Aes128Key& device_key() const { return device_key_; }

  /// Device endorsement key pair (TPM EK / SGX provisioning-key analogue).
  const crypto::RsaKeyPair& endorsement_key() const { return endorsement_key_; }

  /// Vendor signature over the endorsement public key: the root of every
  /// attestation chain.
  BytesView endorsement_cert() const { return endorsement_cert_; }

 private:
  crypto::Aes128Key device_key_;
  crypto::RsaKeyPair endorsement_key_;
  Bytes endorsement_cert_;
};

/// Immutable first-stage boot code with its measurement. The trust anchor
/// for secure/authenticated boot: its hash cannot change after manufacture.
class BootRom {
 public:
  explicit BootRom(Bytes image);
  BytesView image() const { return image_; }
  const crypto::Digest& measurement() const { return measurement_; }

 private:
  Bytes image_;
  crypto::Digest measurement_;
};

/// Hardware vendor: owns the root signing key and endorses device fuses.
/// One Vendor typically signs many machines (like Intel or a TPM CA).
class Vendor {
 public:
  explicit Vendor(std::uint64_t seed, std::size_t key_bits = 1024);

  const crypto::RsaPublicKey& root_public_key() const { return root_.pub; }

  /// Manufacture a fuse bank: generate device keys and sign the endorsement.
  FuseBank manufacture_fuses();

 private:
  crypto::RsaKeyPair root_;
  std::unique_ptr<crypto::HmacDrbg> drbg_;
};

struct MachineConfig {
  std::string name = "machine";
  std::size_t dram_bytes = 16 * 1024 * 1024;
  std::size_t sram_bytes = 256 * 1024;  // on-chip scratchpad
};

class Machine {
 public:
  /// Builds memory with three standard regions:
  ///   "rom"  (on-chip, read-only), "sram" (on-chip), "dram" (off-chip).
  Machine(MachineConfig config, Vendor& vendor, Bytes boot_rom_image);

  const std::string& name() const { return config_.name; }

  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }

  const FuseBank& fuses() const { return fuses_; }
  const BootRom& boot_rom() const { return boot_rom_; }
  const CostModel& costs() const { return costs_; }

  /// DRAM range available for substrate use.
  Range dram() const { return dram_; }
  Range sram() const { return sram_; }

  /// Simulated clock.
  Cycles now() const { return clock_; }
  void advance(Cycles cycles) { clock_ += cycles; }

  /// Charge a data-dependent cost: base + per_16B * ceil(len/16).
  void charge(Cycles base, Cycles per_16_bytes, std::size_t len) {
    clock_ += base + per_16_bytes * ((len + 15) / 16);
  }

  /// On-chip monotonic counter (TPM NV counter analogue). Trusted wrappers
  /// use it to detect rollback of sealed state: a physical attacker can
  /// replay old DRAM/disk content but cannot decrement this counter.
  std::uint64_t nv_counter() const { return nv_counter_; }
  std::uint64_t nv_counter_increment() { return ++nv_counter_; }

 private:
  MachineConfig config_;
  CostModel costs_;
  PhysicalMemory memory_;
  FuseBank fuses_;
  BootRom boot_rom_;
  Range dram_{};
  Range sram_{};
  Cycles clock_ = 0;
  std::uint64_t nv_counter_ = 0;
};

}  // namespace lateral::hw
