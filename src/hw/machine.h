// The simulated machine: clock, physical memory, fuse bank, boot ROM.
//
// A Machine is the unit a substrate is instantiated on. Distributed
// scenarios (smart meter <-> utility server) create several machines and
// connect them through net::SimNetwork.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "hw/cost_model.h"
#include "hw/memory.h"
#include "util/types.h"

namespace lateral::hw {

/// Keys fused into the silicon at manufacturing time. Only reachable by
/// substrate code holding a SecurityState::secure / on-die execution
/// context — the substrates gate access; the bank itself is on-chip.
class FuseBank {
 public:
  FuseBank(crypto::Aes128Key device_key, crypto::RsaKeyPair endorsement_key,
           Bytes endorsement_cert);

  /// Per-device symmetric key (TrustZone-style fused AES key).
  const crypto::Aes128Key& device_key() const { return device_key_; }

  /// Device endorsement key pair (TPM EK / SGX provisioning-key analogue).
  const crypto::RsaKeyPair& endorsement_key() const { return endorsement_key_; }

  /// Vendor signature over the endorsement public key: the root of every
  /// attestation chain.
  BytesView endorsement_cert() const { return endorsement_cert_; }

 private:
  crypto::Aes128Key device_key_;
  crypto::RsaKeyPair endorsement_key_;
  Bytes endorsement_cert_;
};

/// Immutable first-stage boot code with its measurement. The trust anchor
/// for secure/authenticated boot: its hash cannot change after manufacture.
class BootRom {
 public:
  explicit BootRom(Bytes image);
  BytesView image() const { return image_; }
  const crypto::Digest& measurement() const { return measurement_; }

 private:
  Bytes image_;
  crypto::Digest measurement_;
};

/// Hardware vendor: owns the root signing key and endorses device fuses.
/// One Vendor typically signs many machines (like Intel or a TPM CA).
class Vendor {
 public:
  explicit Vendor(std::uint64_t seed, std::size_t key_bits = 1024);

  const crypto::RsaPublicKey& root_public_key() const { return root_.pub; }

  /// Manufacture a fuse bank: generate device keys and sign the endorsement.
  FuseBank manufacture_fuses();

 private:
  crypto::RsaKeyPair root_;
  std::unique_ptr<crypto::HmacDrbg> drbg_;
};

struct MachineConfig {
  std::string name = "machine";
  std::size_t dram_bytes = 16 * 1024 * 1024;
  std::size_t sram_bytes = 256 * 1024;  // on-chip scratchpad
  std::size_t cores = 1;                // symmetric cores, one clock each
};

class Machine {
 public:
  /// Builds memory with three standard regions:
  ///   "rom"  (on-chip, read-only), "sram" (on-chip), "dram" (off-chip).
  Machine(MachineConfig config, Vendor& vendor, Bytes boot_rom_image);

  const std::string& name() const { return config_.name; }

  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }

  const FuseBank& fuses() const { return fuses_; }
  const BootRom& boot_rom() const { return boot_rom_; }
  const CostModel& costs() const { return costs_; }

  /// DRAM range available for substrate use.
  Range dram() const { return dram_; }
  Range sram() const { return sram_; }

  /// Global simulated epoch: the max over all core clocks. With one core
  /// this is exactly the old single-clock machine.
  Cycles now() const {
    Cycles max = 0;
    for (const Cycles c : clocks_)
      if (c > max) max = c;
    return max;
  }

  /// Per-core cycle accounting.
  std::size_t core_count() const { return clocks_.size(); }
  Cycles core(std::size_t i) const { return clocks_[i]; }

  /// The core that subsequent advance()/charge() calls account against.
  /// Prefer the RAII CoreLease over calling this directly.
  std::size_t active_core() const { return active_core_; }
  void set_active_core(std::size_t i) {
    active_core_ = (i < clocks_.size()) ? i : 0;
  }

  void advance(Cycles cycles) { clocks_[active_core_] += cycles; }

  /// Charge a data-dependent cost: base + per_16B * ceil(len/16).
  void charge(Cycles base, Cycles per_16_bytes, std::size_t len) {
    clocks_[active_core_] += base + per_16_bytes * ((len + 15) / 16);
  }

  /// Spin the active core forward to a gate another core holds (a shared
  /// monitor, a single-threaded device). No-op if the core is already past.
  void stall_until(Cycles gate) {
    if (clocks_[active_core_] < gate) clocks_[active_core_] = gate;
  }

  /// Record a bus-visible touch of a shared resource (channel id, region
  /// cache line). If a *different* core touched the same resource within
  /// costs().contention_window simulated cycles, the active core pays
  /// bus_contention_penalty. Returns the penalty charged (0 on a single
  /// core, so N=1 runs are bit-exact with the old machine).
  Cycles note_shared_access(std::uint64_t resource);

  /// Total contention penalties charged so far (all cores).
  std::uint64_t contention_events() const { return contention_events_; }

  /// On-chip monotonic counter (TPM NV counter analogue). Trusted wrappers
  /// use it to detect rollback of sealed state: a physical attacker can
  /// replay old DRAM/disk content but cannot decrement this counter.
  std::uint64_t nv_counter() const { return nv_counter_; }
  std::uint64_t nv_counter_increment() { return ++nv_counter_; }

 private:
  struct Touch {
    std::size_t core = 0;
    Cycles stamp = 0;
  };

  MachineConfig config_;
  CostModel costs_;
  PhysicalMemory memory_;
  FuseBank fuses_;
  BootRom boot_rom_;
  Range dram_{};
  Range sram_{};
  std::vector<Cycles> clocks_;
  std::size_t active_core_ = 0;
  std::unordered_map<std::uint64_t, Touch> touches_;
  std::uint64_t contention_events_ = 0;
  std::uint64_t nv_counter_ = 0;
};

/// Scoped "this work runs on core i": sets the machine's active core and
/// restores the previous one on destruction. The executor takes a lease
/// inside its striped substrate lock, so per-core accounting composes with
/// the existing serialization of simulated-machine access.
class CoreLease {
 public:
  CoreLease(Machine& machine, std::size_t core)
      : machine_(machine), prev_(machine.active_core()) {
    machine_.set_active_core(core);
  }
  ~CoreLease() { machine_.set_active_core(prev_); }
  CoreLease(const CoreLease&) = delete;
  CoreLease& operator=(const CoreLease&) = delete;

 private:
  Machine& machine_;
  std::size_t prev_;
};

}  // namespace lateral::hw
