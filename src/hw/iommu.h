// IOMMU and DMA-capable devices.
//
// The paper (§II-D): "peripheral devices are also capable of direct DRAM
// access ... IOMMUs control memory access by the device the same way MMUs
// control memory access by the CPU." A Device performs DMA through the
// machine's IOMMU; without a mapping, the transfer is refused — with the
// IOMMU absent or permissive, a malicious driver can overwrite anything
// off-chip (the attack the fig6 ablation demonstrates).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "hw/memory.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::hw {

class Machine;

using DeviceId = std::uint32_t;

/// Page-granular DMA permission table, per device.
class Iommu {
 public:
  enum class Mode {
    disabled,    // all DMA allowed (legacy platforms)
    enforcing,   // only mapped pages allowed
  };

  explicit Iommu(Mode mode) : mode_(mode) {}

  Mode mode() const { return mode_; }
  void set_mode(Mode mode) { mode_ = mode; }

  /// Allow device `dev` to DMA into [page, page+pages).
  Status map(DeviceId dev, PhysAddr page, std::size_t pages, bool writable);
  Status unmap(DeviceId dev, PhysAddr page, std::size_t pages);

  /// Check a DMA access. Errc::access_denied when not mapped.
  Status check(DeviceId dev, PhysAddr addr, std::size_t len,
               bool is_write) const;

 private:
  struct Entry {
    bool writable = false;
  };
  Mode mode_;
  std::map<DeviceId, std::map<PhysAddr, Entry>> tables_;
};

/// A DMA-capable peripheral. Its *driver* runs in some domain; a compromised
/// driver issues arbitrary DMA through this interface.
class Device {
 public:
  Device(DeviceId id, std::string name, Machine& machine, Iommu& iommu);

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// DMA transfers; both directions are checked by the IOMMU.
  Result<Bytes> dma_read(PhysAddr addr, std::size_t len);
  Status dma_write(PhysAddr addr, BytesView data);

 private:
  DeviceId id_;
  std::string name_;
  Machine& machine_;
  Iommu& iommu_;
};

}  // namespace lateral::hw
