#include "hw/machine.h"

#include "crypto/hmac.h"

namespace lateral::hw {

const CostModel& CostModel::standard() {
  static const CostModel model{};
  return model;
}

FuseBank::FuseBank(crypto::Aes128Key device_key,
                   crypto::RsaKeyPair endorsement_key, Bytes endorsement_cert)
    : device_key_(device_key),
      endorsement_key_(std::move(endorsement_key)),
      endorsement_cert_(std::move(endorsement_cert)) {}

BootRom::BootRom(Bytes image)
    : image_(std::move(image)), measurement_(crypto::Sha256::hash(image_)) {}

Vendor::Vendor(std::uint64_t seed, std::size_t key_bits) {
  Bytes seed_bytes(8);
  for (int i = 0; i < 8; ++i)
    seed_bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  drbg_ = std::make_unique<crypto::HmacDrbg>(seed_bytes);
  root_ = crypto::RsaKeyPair::generate(*drbg_, key_bits);
}

FuseBank Vendor::manufacture_fuses() {
  crypto::Aes128Key device_key{};
  const Bytes dk = drbg_->generate(device_key.size());
  std::copy(dk.begin(), dk.end(), device_key.begin());

  // Device endorsement keys are small for simulation speed; the chain of
  // custody (vendor root signs endorsement pub) is what the protocols need.
  crypto::RsaKeyPair ek = crypto::RsaKeyPair::generate(*drbg_, 512);
  Bytes cert = crypto::rsa_sign(root_, ek.pub.serialize());
  return FuseBank(device_key, std::move(ek), std::move(cert));
}

Machine::Machine(MachineConfig config, Vendor& vendor, Bytes boot_rom_image)
    : config_(std::move(config)),
      costs_(CostModel::standard()),
      memory_(1 * kPageSize + config_.sram_bytes + config_.dram_bytes),
      fuses_(vendor.manufacture_fuses()),
      boot_rom_(std::move(boot_rom_image)),
      clocks_(config_.cores ? config_.cores : 1, 0) {
  // Layout: [rom | sram | dram].
  PhysAddr cursor = 0;
  auto rom = memory_.add_region("rom", cursor, kPageSize,
                                {.on_chip = true, .read_only = true});
  if (!rom) throw Error("Machine: rom region setup failed");
  cursor += kPageSize;

  auto sram = memory_.add_region("sram", cursor, config_.sram_bytes,
                                 {.on_chip = true});
  if (!sram) throw Error("Machine: sram region setup failed");
  sram_ = *sram;
  cursor += config_.sram_bytes;

  auto dram = memory_.add_region("dram", cursor, config_.dram_bytes, {});
  if (!dram) throw Error("Machine: dram region setup failed");
  dram_ = *dram;

  // Place the boot ROM image (truncated to the ROM page if oversized).
  const std::size_t rom_len =
      std::min<std::size_t>(boot_rom_.image().size(), kPageSize);
  memory_.load(0, boot_rom_.image().subspan(0, rom_len));
}

Cycles Machine::note_shared_access(std::uint64_t resource) {
  if (clocks_.size() < 2) return 0;
  const Cycles here = clocks_[active_core_];
  Touch& touch = touches_[resource];
  const bool contended = touch.stamp != 0 && touch.core != active_core_ &&
                         here < touch.stamp + costs_.contention_window;
  touch.core = active_core_;
  // Stamps start at 1 so a default-constructed Touch never reads as a
  // prior access at cycle 0.
  touch.stamp = here + 1;
  if (!contended) return 0;
  ++contention_events_;
  clocks_[active_core_] += costs_.bus_contention_penalty;
  return costs_.bus_contention_penalty;
}

}  // namespace lateral::hw
