// Cycle-cost model of the simulated machine.
//
// Every substrate operation advances the machine clock by one of these
// constants, so benchmark results are deterministic and reproducible.
// The constants are calibrated to the order of magnitude of published
// measurements (L4 IPC papers, SGX ECALL microbenchmarks, TPM command
// latencies) — the *ratios* between substrates are the experimental signal,
// not the absolute values. See EXPERIMENTS.md for the calibration notes.
#pragma once

#include "util/types.h"

namespace lateral::hw {

struct CostModel {
  // --- Microkernel (seL4/L4Re class) ---
  Cycles syscall = 150;                  // kernel entry/exit
  Cycles context_switch = 700;           // address-space switch
  Cycles ipc_one_way = 750;              // send+switch+receive, small message
  Cycles ipc_per_16_bytes = 4;           // message copy

  // --- ARM TrustZone ---
  Cycles smc_world_switch = 3500;        // secure monitor call, one direction
  Cycles tz_secure_os_dispatch = 1200;   // secure-world OS demultiplexing

  // --- Intel SGX ---
  Cycles sgx_eenter = 4000;
  Cycles sgx_eexit = 4000;
  Cycles sgx_ocall_extra = 2000;         // stack switch + edge routines
  Cycles epc_crypt_per_16_bytes = 40;    // memory-encryption engine
  Cycles sgx_ereport = 3000;             // local attestation report

  // --- TPM (discrete chip on a slow bus) ---
  Cycles tpm_command_base = 3'000'000;   // any command: LPC bus + firmware
  Cycles tpm_per_byte = 300;             // payload transfer
  Cycles tpm_sign_extra = 9'000'000;     // RSA inside the chip

  // --- Apple SEP / HSM-style coprocessor ---
  Cycles sep_mailbox_round_trip = 30'000;
  Cycles sep_inline_crypt_per_16_bytes = 8;  // dedicated inline engine

  // --- Generic hardware ---
  Cycles memcpy_per_16_bytes = 2;
  Cycles dma_setup = 500;
  Cycles dma_per_page = 250;
  Cycles page_table_update = 60;

  // --- Grant-region data plane (zero-copy shared memory) ---
  // Mapping is a one-time cost charged by map_region (backends add their
  // own crossing on top: syscall, SMC, EENTER/EEXIT, DMA programming...).
  // Accessing an already-mapped region in place costs a TLB fill plus a
  // cache-line touch per descriptor, *independent of payload length* —
  // that independence is the whole point of the plane (FIG11).
  Cycles region_access = 40;             // per-descriptor in-place access
  Cycles cheri_cap_derive = 25;          // bounded-capability handoff (CHERI)

  // --- Tracing (lateral::trace) ---
  // A traced crossing carries a 16-byte TraceContext in its metadata; the
  // wire bytes are charged at the substrate's own per-byte rate. On top of
  // that, stamping the cycle counter into the domain's flight recorder is a
  // couple of stores — charged once per crossing *direction*, not per span
  // event, so tracing amortizes with batching exactly like the crossing.
  Cycles trace_stamp = 4;                // recorder stamp per crossing

  // --- Health plane (lateral::health) ---
  // A *sampled* crossing (1 in sample_every) attributes its cycle charge to
  // (domain, phase, shard) in the profiler's ring: a counter tick plus two
  // stores. Unsampled crossings pay nothing — the sampling decision itself
  // is ordinary instruction flow, already inside the crossing constants —
  // and a disabled profiler is conformance-pinned to exactly zero.
  Cycles profile_stamp = 6;              // profiler ring store per sample

  // --- Software crypto (used when a substrate lacks an engine) ---
  Cycles sw_aes_per_16_bytes = 160;
  Cycles sw_sha_per_64_bytes = 600;
  Cycles sw_rsa_sign = 12'000'000;       // 1024-bit private-key op
  Cycles sw_rsa_verify = 300'000;        // e = 65537
  Cycles sw_dh_exp = 8'000'000;

  // --- Scheduling ---
  Cycles timer_tick = 10'000;            // preemption grain
  Cycles partition_switch = 2'000;       // time-partition flush (incl. cache)

  // --- SMP (multi-core machine) ---
  // The simulated machine keeps one cycle clock per core; a crossing runs
  // on the core that issued it. Cores are independent except where the
  // substrate's concurrency law says otherwise (a shared monitor, a
  // single-threaded device) and where they touch the same bus-visible
  // resource close together in simulated time.
  Cycles ipi_kick = 400;                 // cross-core interrupt + reschedule
  Cycles bus_contention_penalty = 120;   // shared-bus/cache-line bounce
  Cycles contention_window = 2'000;      // two touches within this window
                                         // from different cores contend
  std::size_t cache_line_bytes = 64;     // granularity of sharing detection

  /// The default model shared by most tests and benches.
  static const CostModel& standard();
};

}  // namespace lateral::hw
