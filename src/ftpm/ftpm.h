// fTPM — TPM functionality as software in a TrustZone secure world
// (paper §II-C: "isolation technologies are partially interchangeable:
// Microsoft Surface tablets implement TPM functionality not using dedicated
// TPM security chips, but as software running within TrustZone"; Raj et
// al., USENIX Security'16).
//
// Same command set as the discrete chip (PCR bank, quotes, PCR-bound
// sealing, CRTM measurement of the boot ROM) — and the interchangeability
// test suite runs the identical BitLocker-style scenario against both.
// The trade-offs differ exactly as the paper argues:
//  * invocations cross the secure monitor, not a slow LPC bus: fTPM
//    commands are orders of magnitude faster (TAB1);
//  * state lives in secure-world DRAM — plaintext on the bus, so the fTPM
//    does NOT defend the physical attacker models the chip does;
//  * there is no DRTM late launch; components run concurrently under the
//    secure-world OS's secondary isolation.
#pragma once

#include "substrate/registry.h"
#include "substrate/substrate.h"
#include "tpm/nv_counter.h"
#include "tpm/pcr_bank.h"

namespace lateral::ftpm {

class Ftpm final : public substrate::IsolationSubstrate {
 public:
  Ftpm(hw::Machine& machine, substrate::SubstrateConfig config);

  const substrate::SubstrateInfo& info() const override;

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  // --- TPM command set (same signatures as tpm::Tpm) ------------------------
  Status pcr_extend(std::size_t index, const crypto::Digest& digest);
  Result<crypto::Digest> pcr_read(std::size_t index) const;
  crypto::Digest pcr_composite(const std::vector<std::size_t>& selection) const;
  Result<substrate::Quote> quote_pcrs(const std::vector<std::size_t>& selection,
                                      BytesView nonce);
  Result<Bytes> seal_to_pcrs(const std::vector<std::size_t>& selection,
                             BytesView plaintext);
  Result<Bytes> unseal_pcrs(BytesView sealed);
  Status nv_define(const std::string& name);
  Result<std::uint64_t> nv_read(const std::string& name);
  Result<std::uint64_t> nv_increment(const std::string& name);

  /// The fTPM keeps the chip's interface contract, including its lack of a
  /// shared-memory plane: commands marshal through the secure monitor so
  /// the two implementations stay interchangeable (paper §II-C). Regions
  /// are refused; callers use the copy path.
  bool supports_regions() const override { return false; }

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;

 private:
  /// Secure-world page tag (the TZASC programming the fTPM relies on).
  static constexpr std::uint64_t kSecureTag = 0xF79A'0001;

  struct SecureSpace {
    std::vector<hw::PhysAddr> frames;
  };

  Cycles command_cost() const;

  substrate::SubstrateInfo info_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, SecureSpace> spaces_;
  tpm::PcrBank pcrs_;
  tpm::NvCounterBank nv_;
  std::uint64_t seal_pcr_nonce_ = 1;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::ftpm
