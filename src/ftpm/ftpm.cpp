#include "ftpm/ftpm.h"

namespace lateral::ftpm {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::DomainKind;
using substrate::Feature;
using tpm::kNumPcrs;

Ftpm::Ftpm(hw::Machine& machine, substrate::SubstrateConfig config)
    : IsolationSubstrate(machine, std::move(config)), frames_(machine.dram()) {
  info_.name = "ftpm";
  info_.features = Feature::spatial_isolation | Feature::concurrent_domains |
                   Feature::sealed_storage | Feature::attestation;
  // The fTPM firmware plus the TrustZone monitor and secure-world runtime
  // it inherits as TCB.
  info_.tcb_loc = 30'000;
  // Software in secure-world DRAM: defends software attackers only —
  // the central difference from the discrete chip.
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software};

  // CRTM: the secure boot ROM measures itself before handing over.
  (void)pcrs_.extend(0, machine_.boot_rom().measurement());
}

const substrate::SubstrateInfo& Ftpm::info() const { return info_; }

Cycles Ftpm::command_cost() const {
  // A command = one SMC round trip plus secure-world dispatch; the fTPM
  // paper's headline result is exactly this gap to the LPC-bus chip.
  return 2 * machine_.costs().smc_world_switch +
         machine_.costs().tz_secure_os_dispatch;
}

Status Ftpm::admit_domain(const substrate::DomainSpec& spec) const {
  if (spec.kind == DomainKind::legacy) return Errc::not_supported;
  if (spec.memory_pages == 0 || spec.memory_pages > 16) return Errc::exhausted;
  return Status::success();
}

Status Ftpm::attach_memory(DomainId id, DomainRecord& record) {
  SecureSpace space;
  space.frames.reserve(record.spec.memory_pages);
  for (std::size_t i = 0; i < record.spec.memory_pages; ++i) {
    auto frame = frames_.allocate(1);
    if (!frame) {
      for (const hw::PhysAddr f : space.frames) {
        (void)machine_.memory().set_page_owner(f, 0);
        (void)frames_.free(f, 1);
      }
      return frame.error();
    }
    if (const Status s = machine_.memory().set_page_owner(*frame, kSecureTag);
        !s.ok())
      return s;
    space.frames.push_back(*frame);
  }
  BytesView code = record.spec.image.code;
  for (std::size_t i = 0; i < space.frames.size() && !code.empty(); ++i) {
    const std::size_t n = std::min<std::size_t>(hw::kPageSize, code.size());
    machine_.memory().load(space.frames[i], code.subspan(0, n));
    code = code.subspan(n);
  }
  spaces_.emplace(id, std::move(space));
  return Status::success();
}

void Ftpm::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  for (const hw::PhysAddr frame : it->second.frames) {
    (void)machine_.memory().set_page_owner(frame, 0);
    (void)frames_.free(frame, 1);
  }
  spaces_.erase(it);
}

Result<Bytes> Ftpm::read_memory(DomainId actor, DomainId target,
                                std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (actor != target) return Errc::access_denied;
  const auto it = spaces_.find(target);
  if (it == spaces_.end()) return Errc::no_such_domain;
  const SecureSpace& space = it->second;
  if (offset + len > space.frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, len);
  const hw::AccessContext ctx{hw::SecurityState::secure, kSecureTag};
  Bytes out;
  out.reserve(len);
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    Bytes chunk;
    if (const Status s = machine_.memory().read(
            ctx, space.frames[page] + in_page, n, chunk);
        !s.ok())
      return s.error();
    out.insert(out.end(), chunk.begin(), chunk.end());
    offset += n;
    len -= n;
  }
  return out;
}

Status Ftpm::write_memory(DomainId actor, DomainId target,
                          std::uint64_t offset, BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (actor != target) return Errc::access_denied;
  const auto it = spaces_.find(target);
  if (it == spaces_.end()) return Errc::no_such_domain;
  const SecureSpace& space = it->second;
  if (offset + data.size() > space.frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  const hw::AccessContext ctx{hw::SecurityState::secure, kSecureTag};
  std::uint64_t cursor = offset;
  while (!data.empty()) {
    const std::size_t page = cursor / hw::kPageSize;
    const std::size_t in_page = cursor % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    if (const Status s = machine_.memory().write(
            ctx, space.frames[page] + in_page, data.subspan(0, n));
        !s.ok())
      return s;
    data = data.subspan(n);
    cursor += n;
  }
  return Status::success();
}

Status Ftpm::pcr_extend(std::size_t index, const crypto::Digest& digest) {
  machine_.advance(command_cost());
  return pcrs_.extend(index, digest);
}

Result<crypto::Digest> Ftpm::pcr_read(std::size_t index) const {
  return pcrs_.read(index);
}

crypto::Digest Ftpm::pcr_composite(
    const std::vector<std::size_t>& selection) const {
  return pcrs_.composite(selection);
}

Result<substrate::Quote> Ftpm::quote_pcrs(
    const std::vector<std::size_t>& selection, BytesView nonce) {
  if (const Status s = tpm::PcrBank::check_selection(selection); !s.ok())
    return s.error();
  machine_.advance(command_cost() + machine_.costs().sw_rsa_sign);
  return substrate::make_quote("ftpm", pcrs_.composite(selection), nonce,
                               machine_.fuses().endorsement_key(),
                               machine_.fuses().endorsement_cert());
}

Result<Bytes> Ftpm::seal_to_pcrs(const std::vector<std::size_t>& selection,
                                 BytesView plaintext) {
  if (const Status s = tpm::PcrBank::check_selection(selection); !s.ok())
    return s.error();
  machine_.advance(command_cost());

  const crypto::Aead aead = sealing_aead(pcrs_.composite(selection));
  const crypto::SealedBox box = aead.seal(seal_pcr_nonce_++, {}, plaintext);
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(selection.size()));
  for (const std::size_t index : selection)
    out.push_back(static_cast<std::uint8_t>(index));
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(box.nonce >> (8 * i)));
  out.insert(out.end(), box.tag.begin(), box.tag.end());
  out.insert(out.end(), box.ciphertext.begin(), box.ciphertext.end());
  return out;
}

Result<Bytes> Ftpm::unseal_pcrs(BytesView sealed) {
  machine_.advance(command_cost());
  if (sealed.size() < 1) return Errc::invalid_argument;
  const std::size_t sel_len = sealed[0];
  if (sealed.size() < 1 + sel_len + 8 + 16) return Errc::invalid_argument;
  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < sel_len; ++i) {
    if (sealed[1 + i] >= kNumPcrs) return Errc::invalid_argument;
    selection.push_back(sealed[1 + i]);
  }
  std::size_t offset = 1 + sel_len;
  crypto::SealedBox box;
  for (int i = 0; i < 8; ++i)
    box.nonce = (box.nonce << 8) | sealed[offset + i];
  offset += 8;
  std::copy(sealed.begin() + static_cast<long>(offset),
            sealed.begin() + static_cast<long>(offset + 16), box.tag.begin());
  offset += 16;
  box.ciphertext.assign(sealed.begin() + static_cast<long>(offset),
                        sealed.end());

  const crypto::Aead aead = sealing_aead(pcrs_.composite(selection));
  auto plain = aead.open(box, {});
  if (!plain) return Errc::verification_failed;
  return std::move(*plain);
}

Status Ftpm::nv_define(const std::string& name) {
  machine_.advance(command_cost());
  return nv_.define(name);
}

Result<std::uint64_t> Ftpm::nv_read(const std::string& name) {
  machine_.advance(command_cost());
  return nv_.read(name);
}

Result<std::uint64_t> Ftpm::nv_increment(const std::string& name) {
  machine_.advance(command_cost());
  return nv_.increment(name);
}

Cycles Ftpm::message_cost(std::size_t len) const {
  return command_cost() / 2 +
         machine_.costs().memcpy_per_16_bytes * ((len + 15) / 16);
}

substrate::ConcurrencyLaw Ftpm::concurrency_law() const {
  // The fTPM is firmware inside the TrustZone secure world; commands
  // inherit the secure monitor funnel on top of their own single-session
  // command loop.
  return substrate::ConcurrencyLaw::monitor_serialized;
}

Cycles Ftpm::attest_cost() const { return command_cost(); }

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "ftpm",
      [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<Ftpm>(machine, config);
      });
}

}  // namespace lateral::ftpm
