#include "trustzone/trustzone.h"

#include "crypto/hmac.h"

namespace lateral::trustzone {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::DomainKind;
using substrate::Feature;

TrustZone::TrustZone(hw::Machine& machine, substrate::SubstrateConfig config,
                     TrustZoneOptions options)
    : IsolationSubstrate(machine, std::move(config)),
      options_(options),
      frames_(machine.dram()) {
  info_.name = "trustzone";
  info_.features = Feature::spatial_isolation | Feature::concurrent_domains |
                   Feature::legacy_hosting | Feature::sealed_storage |
                   Feature::attestation;
  // Monitor + secure-world OS (QSEE/Knox class systems are tens of kLoC).
  info_.tcb_loc = 35'000;
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software};

  if (options_.hypervisor) {
    // The hypervisor joins the isolation substrate (paper §II-B) — and
    // "because of complex hardware emulation, virtualization solutions
    // actually expose a larger attack surface" (§II-C).
    info_.tcb_loc += 15'000;
  }
  if (options_.software_memory_encryption) {
    // Scratchpad-keyed software MEE: the §II-D construction. The keys are
    // derived from fuses and live on-die; DRAM only ever sees ciphertext.
    info_.features = info_.features | Feature::memory_encryption;
    info_.defends_against.push_back(AttackerModel::physical_bus);
    info_.tcb_loc += 2'000;
    Bytes fuse_key(machine_.fuses().device_key().begin(),
                   machine_.fuses().device_key().end());
    const Bytes material = crypto::hkdf(to_bytes("tz.swmee.v1"), fuse_key,
                                        to_bytes("enc+mac"), 48);
    std::copy(material.begin(), material.begin() + 16, sw_mee_key_.begin());
    sw_mee_mac_key_.assign(material.begin() + 16, material.end());
  }
}

const substrate::SubstrateInfo& TrustZone::info() const { return info_; }

Status TrustZone::admit_domain(const substrate::DomainSpec& spec) const {
  // The normal world hosts exactly one legacy codebase; TrustZone itself
  // does not multiplex — a hypervisor does.
  if (spec.kind == DomainKind::legacy && legacy_count_ >= 1 &&
      !options_.hypervisor)
    return Errc::exhausted;
  if (spec.memory_pages == 0) return Errc::invalid_argument;
  return Status::success();
}

Bytes TrustZone::sw_mee_crypt(hw::PhysAddr page_addr, std::uint64_t version,
                              BytesView data) const {
  const std::uint64_t nonce = page_addr ^ (version << 20) ^ (0x72ULL << 56);
  return crypto::aes128_ctr(sw_mee_key_, nonce, data);
}

crypto::Digest TrustZone::sw_mee_mac(hw::PhysAddr page_addr,
                                     std::uint64_t version,
                                     BytesView ciphertext) const {
  crypto::Hmac mac(sw_mee_mac_key_);
  std::uint8_t header[16];
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<std::uint8_t>(page_addr >> (56 - 8 * i));
    header[8 + i] = static_cast<std::uint8_t>(version >> (56 - 8 * i));
  }
  mac.update(BytesView(header, sizeof(header)));
  mac.update(ciphertext);
  return mac.finish();
}

Status TrustZone::attach_memory(DomainId id, DomainRecord& record) {
  WorldSpace space;
  space.secure = record.spec.kind == DomainKind::trusted_component;
  space.frames.reserve(record.spec.memory_pages);
  for (std::size_t i = 0; i < record.spec.memory_pages; ++i) {
    auto frame = frames_.allocate(1);
    if (!frame) {
      for (const hw::PhysAddr f : space.frames) {
        (void)machine_.memory().set_page_owner(f, 0);
        (void)frames_.free(f, 1);
      }
      return frame.error();
    }
    if (space.secure) {
      // Program the TZASC: mark the page secure-world-only.
      if (const Status s = machine_.memory().set_page_owner(*frame, kSecureTag);
          !s.ok())
        return s;
    }
    space.frames.push_back(*frame);
  }

  const bool encrypted = space.secure && options_.software_memory_encryption;
  if (encrypted) {
    space.page_versions.assign(space.frames.size(), 0);
    space.page_macs.resize(space.frames.size());
  }

  Bytes code(record.spec.image.code);
  code.resize(space.frames.size() * hw::kPageSize, 0);
  for (std::size_t i = 0; i < space.frames.size(); ++i) {
    const BytesView page(code.data() + i * hw::kPageSize, hw::kPageSize);
    if (encrypted) {
      space.page_versions[i] = 1;
      const Bytes ct = sw_mee_crypt(space.frames[i], 1, page);
      space.page_macs[i] = sw_mee_mac(space.frames[i], 1, ct);
      machine_.memory().load(space.frames[i], ct);
      machine_.charge(0, machine_.costs().sw_aes_per_16_bytes, hw::kPageSize);
    } else {
      machine_.memory().load(space.frames[i], page);
    }
  }
  if (record.spec.kind == DomainKind::legacy) ++legacy_count_;
  spaces_.emplace(id, std::move(space));
  return Status::success();
}

void TrustZone::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  if (!it->second.secure && legacy_count_ > 0) --legacy_count_;
  for (const hw::PhysAddr frame : it->second.frames) {
    (void)machine_.memory().set_page_owner(frame, 0);
    (void)frames_.free(frame, 1);
  }
  spaces_.erase(it);
}

Result<const TrustZone::WorldSpace*> TrustZone::space_of(DomainId id) const {
  const auto it = spaces_.find(id);
  // A corpse has no space (kill released its memory) but still has a record:
  // callers must see domain_dead, not a claim the domain never existed.
  if (it == spaces_.end())
    return is_dead(id) ? Errc::domain_dead : Errc::no_such_domain;
  return &it->second;
}

Result<TrustZone::WorldSpace*> TrustZone::space_of(DomainId id) {
  const auto it = spaces_.find(id);
  // A corpse has no space (kill released its memory) but still has a record:
  // callers must see domain_dead, not a claim the domain never existed.
  if (it == spaces_.end())
    return is_dead(id) ? Errc::domain_dead : Errc::no_such_domain;
  return &it->second;
}

Result<Bytes> TrustZone::read_page(const WorldSpace& space, std::size_t page,
                                   const hw::AccessContext& ctx) const {
  Bytes raw;
  if (const Status s = machine_.memory().read(ctx, space.frames[page],
                                              hw::kPageSize, raw);
      !s.ok())
    return s.error();
  if (space.page_versions.empty()) return raw;  // plaintext world

  const crypto::Digest expected =
      sw_mee_mac(space.frames[page], space.page_versions[page], raw);
  if (!ct_equal(crypto::digest_view(expected),
                crypto::digest_view(space.page_macs[page])))
    return Errc::tamper_detected;
  machine_.charge(0, machine_.costs().sw_aes_per_16_bytes, hw::kPageSize);
  return sw_mee_crypt(space.frames[page], space.page_versions[page], raw);
}

Status TrustZone::write_page(WorldSpace& space, std::size_t page,
                             BytesView content, const hw::AccessContext& ctx) {
  if (space.page_versions.empty())
    return machine_.memory().write(ctx, space.frames[page], content);
  const std::uint64_t version = ++space.page_versions[page];
  const Bytes ct = sw_mee_crypt(space.frames[page], version, content);
  space.page_macs[page] = sw_mee_mac(space.frames[page], version, ct);
  machine_.charge(0, machine_.costs().sw_aes_per_16_bytes, hw::kPageSize);
  return machine_.memory().write(ctx, space.frames[page], ct);
}

Result<Bytes> TrustZone::raw_domain_read(const WorldSpace& space,
                                         std::uint64_t offset, std::size_t len,
                                         const hw::AccessContext& ctx) const {
  if (offset + len > space.frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;
  Bytes out;
  out.reserve(len);
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    auto content = read_page(space, page, ctx);
    if (!content) return content.error();
    out.insert(out.end(), content->begin() + static_cast<long>(in_page),
               content->begin() + static_cast<long>(in_page + n));
    offset += n;
    len -= n;
  }
  return out;
}

Result<Bytes> TrustZone::read_memory(DomainId actor, DomainId target,
                                     std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();

  const bool actor_secure = (*actor_space)->secure;
  const bool target_secure = (*target_space)->secure;

  if (actor != target) {
    // Asymmetry of the worlds: secure may inspect normal ("the secure world
    // completely controls the normal world"); normal may never touch secure.
    if (!actor_secure) return Errc::access_denied;
    if (target_secure && options_.secure_world_isolation)
      return Errc::access_denied;  // secure OS isolates its trustlets
  }

  machine_.charge(actor_secure ? 0 : machine_.costs().syscall,
                  machine_.costs().memcpy_per_16_bytes, len);
  const hw::AccessContext ctx{
      actor_secure ? hw::SecurityState::secure : hw::SecurityState::non_secure,
      actor_secure ? kSecureTag : 0};
  return raw_domain_read(**target_space, offset, len, ctx);
}

Status TrustZone::write_memory(DomainId actor, DomainId target,
                               std::uint64_t offset, BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();

  const bool actor_secure = (*actor_space)->secure;
  const bool target_secure = (*target_space)->secure;
  if (actor != target) {
    if (!actor_secure) return Errc::access_denied;
    if (target_secure && options_.secure_world_isolation)
      return Errc::access_denied;
  }
  WorldSpace& space = **target_space;
  if (offset + data.size() > space.frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  const hw::AccessContext ctx{
      actor_secure ? hw::SecurityState::secure : hw::SecurityState::non_secure,
      actor_secure ? kSecureTag : 0};
  // Read-modify-write at page granularity (required once pages may be
  // encrypted; harmless otherwise).
  std::uint64_t cursor = offset;
  while (!data.empty()) {
    const std::size_t page = cursor / hw::kPageSize;
    const std::size_t in_page = cursor % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    auto content = read_page(space, page, ctx);
    if (!content) return content.error();
    std::copy(data.begin(), data.begin() + static_cast<long>(n),
              content->begin() + static_cast<long>(in_page));
    if (const Status s = write_page(space, page, *content, ctx); !s.ok())
      return s;
    data = data.subspan(n);
    cursor += n;
  }
  return Status::success();
}

Result<substrate::Quote> TrustZone::attest(DomainId actor,
                                           BytesView user_data) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->secure) return Errc::access_denied;  // fused key is secure-only
  return IsolationSubstrate::attest(actor, user_data);
}

Result<Bytes> TrustZone::seal(DomainId actor, BytesView plaintext) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->secure) return Errc::access_denied;
  return IsolationSubstrate::seal(actor, plaintext);
}

Result<Bytes> TrustZone::unseal(DomainId actor, BytesView sealed) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->secure) return Errc::access_denied;
  return IsolationSubstrate::unseal(actor, sealed);
}

Result<crypto::Digest> TrustZone::measure_normal_world(DomainId actor) {
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  if (!(*actor_space)->secure) return Errc::access_denied;

  crypto::Sha256 ctx;
  bool found = false;
  for (const auto& [id, space] : spaces_) {
    if (space.secure) continue;
    found = true;
    const hw::AccessContext access{hw::SecurityState::secure, kSecureTag};
    auto content = raw_domain_read(space, 0,
                                   space.frames.size() * hw::kPageSize, access);
    if (!content) return content.error();
    machine_.charge(0, machine_.costs().sw_sha_per_64_bytes / 4,
                    content->size());
    ctx.update(*content);
  }
  if (!found) return Errc::no_such_domain;
  return ctx.finish();
}

Result<bool> TrustZone::is_secure_world(DomainId domain) const {
  auto space = space_of(domain);
  if (!space) return space.error();
  return (*space)->secure;
}

Result<std::vector<hw::PhysAddr>> TrustZone::domain_frames(
    DomainId domain) const {
  auto space = space_of(domain);
  if (!space) return space.error();
  return (*space)->frames;
}

Cycles TrustZone::message_cost(std::size_t len) const {
  // Every cross-world message pays an SMC world switch plus the secure-world
  // OS dispatch; payload copy comes on top. Under a hypervisor, normal-world
  // traffic additionally traps into the VMM (one exit per message).
  Cycles cost = machine_.costs().smc_world_switch +
                machine_.costs().tz_secure_os_dispatch +
                machine_.costs().memcpy_per_16_bytes * ((len + 15) / 16);
  if (options_.hypervisor) cost += machine_.costs().context_switch * 2;
  return cost;
}

substrate::ConcurrencyLaw TrustZone::concurrency_law() const {
  // There is ONE secure world: every SMC funnels through the single
  // monitor/secure-OS instance, which takes its big lock for the whole
  // dispatch (paper §II-B — the architecture, not the workload, caps
  // scaling). Whole crossings serialize.
  return substrate::ConcurrencyLaw::monitor_serialized;
}

Cycles TrustZone::attest_cost() const {
  return machine_.costs().smc_world_switch * 2;
}

Cycles TrustZone::region_map_cost(std::size_t pages) const {
  // One SMC to have the monitor carve the NS buffer and program the TZASC,
  // plus a page-table write per page on the mapping world's side. The
  // crossing toll is paid once here, never per access.
  return machine_.costs().smc_world_switch +
         machine_.costs().tz_secure_os_dispatch +
         machine_.costs().page_table_update * pages;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "trustzone",
      [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<TrustZone>(machine, config);
      });
}

}  // namespace lateral::trustzone
