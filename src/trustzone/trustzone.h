// ARM TrustZone isolation substrate (paper §II-B "ARM TrustZone").
//
// Structure reproduced from the paper:
//  * exactly two worlds — the secure world "completely controls" the normal
//    world, never the reverse (asymmetric trust);
//  * the normal world hosts exactly ONE legacy codebase ("TrustZone itself
//    does not support multiplexing") — unless the `hypervisor` option is
//    set, which models "TrustZone can be combined with virtualization
//    techniques to host multiple normal world operating systems. The
//    hypervisor software is then part of the isolation substrate" (the
//    Simko3 / L4Android pattern: two Androids on one phone);
//  * multiple trusted components can share the secure world, but they rely
//    on *secondary* isolation by the secure-world OS — construct with
//    secure_world_isolation=false to model a secure OS that does not
//    isolate its trustlets, and watch compromise spread (tests/fig6);
//  * every cross-world invocation pays a secure monitor call (SMC);
//  * a per-device AES key is fused into the chip, readable only from the
//    secure world — this is what makes software attestation from ROM work
//    in the smart-meter example (Fig. 3);
//  * by default, secure-world memory is protected from normal-world
//    *software* by the NS-bit/TZASC but lies in off-chip DRAM as plaintext —
//    a physical bus attacker reads it. The `software_memory_encryption`
//    option implements §II-D's observation that "SGX-style memory
//    encryption could be implemented using for example ARM TrustZone":
//    secure-world pages are encrypted+MACed by software (slower than an
//    SGX MEE — sw crypto costs) before they reach DRAM, upgrading the
//    substrate to defend the physical_bus attacker model.
#pragma once

#include "crypto/aes.h"
#include "hw/iommu.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::trustzone {

struct TrustZoneOptions {
  /// Secure-world OS isolates its trustlets from one another.
  bool secure_world_isolation = true;
  /// Normal-world hypervisor: host multiple legacy OSes as VMs. Grows the
  /// TCB and adds a VM-exit toll to every normal-world message.
  bool hypervisor = false;
  /// Software MEE on scratchpad keys: secure-world pages encrypted in DRAM.
  bool software_memory_encryption = false;
};

class TrustZone final : public substrate::IsolationSubstrate {
 public:
  TrustZone(hw::Machine& machine, substrate::SubstrateConfig config,
            TrustZoneOptions options = {});
  /// Back-compat convenience: toggle only the secondary-isolation knob.
  TrustZone(hw::Machine& machine, substrate::SubstrateConfig config,
            bool secure_world_isolation)
      : TrustZone(machine, std::move(config),
                  TrustZoneOptions{.secure_world_isolation =
                                       secure_world_isolation}) {}

  const substrate::SubstrateInfo& info() const override;
  const TrustZoneOptions& options() const { return options_; }

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  /// Attestation is a secure-world service: normal-world (legacy) domains
  /// cannot produce quotes.
  Result<substrate::Quote> attest(substrate::DomainId actor,
                                  BytesView user_data) override;
  Result<Bytes> seal(substrate::DomainId actor, BytesView plaintext) override;
  Result<Bytes> unseal(substrate::DomainId actor, BytesView sealed) override;

  /// Knox-style integrity measurement: the secure world hashes a normal
  /// world's memory (paper: "integrity measurement of the running Android
  /// Linux kernel"). `actor` must be a secure-world domain.
  Result<crypto::Digest> measure_normal_world(substrate::DomainId actor);

  /// True when the domain runs in the secure world.
  Result<bool> is_secure_world(substrate::DomainId domain) const;

  Result<std::vector<hw::PhysAddr>> domain_frames(
      substrate::DomainId domain) const;

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// Regions are world-shared buffers in normal-world (NS) memory: the
  /// secure monitor programs the TZASC once; afterwards both worlds
  /// address the buffer without an SMC per access.
  Cycles region_map_cost(std::size_t pages) const override;

 private:
  struct WorldSpace {
    bool secure = false;
    std::vector<hw::PhysAddr> frames;
    // Populated only under software_memory_encryption, for secure spaces.
    std::vector<std::uint64_t> page_versions;
    std::vector<crypto::Digest> page_macs;
  };

  /// TZASC page ownership tag for secure-world pages.
  static constexpr std::uint64_t kSecureTag = 0x5EC0'0001;

  Result<const WorldSpace*> space_of(substrate::DomainId id) const;
  Result<WorldSpace*> space_of(substrate::DomainId id);

  Bytes sw_mee_crypt(hw::PhysAddr page_addr, std::uint64_t version,
                     BytesView data) const;
  crypto::Digest sw_mee_mac(hw::PhysAddr page_addr, std::uint64_t version,
                            BytesView ciphertext) const;
  Result<Bytes> read_page(const WorldSpace& space, std::size_t page,
                          const hw::AccessContext& ctx) const;
  Status write_page(WorldSpace& space, std::size_t page, BytesView content,
                    const hw::AccessContext& ctx);
  Result<Bytes> raw_domain_read(const WorldSpace& space, std::uint64_t offset,
                                std::size_t len,
                                const hw::AccessContext& ctx) const;

  substrate::SubstrateInfo info_;
  TrustZoneOptions options_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, WorldSpace> spaces_;
  std::size_t legacy_count_ = 0;
  crypto::Aes128Key sw_mee_key_{};
  Bytes sw_mee_mac_key_;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::trustzone
