// RFC 822-style message parsing (header block + body).
//
// Part of the decomposed mail application of paper §III-C. Parsing network
// data is exactly the work the paper wants isolated ("Code that handles
// data received from the network such as file format detection and
// rendering should be isolated, because it is exposed to attacks from the
// Internet") — so this parser is written to be *driven from inside* the
// imap/render components, and its tests feed it adversarial input.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace lateral::mail {

struct Message {
  /// Header fields in order of appearance (names lower-cased; values
  /// trimmed; continuation lines folded).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of a header (lower-case name), if present.
  std::optional<std::string> header(const std::string& name) const;

  std::string from() const { return header("from").value_or(""); }
  std::string to() const { return header("to").value_or(""); }
  std::string subject() const { return header("subject").value_or(""); }

  /// Serialize back to wire format (headers, blank line, body).
  std::string to_wire() const;
};

/// Parse a message. Tolerates CRLF and LF. Errc::invalid_argument for
/// structurally broken header blocks (a header line without ':', a
/// continuation line before any header).
Result<Message> parse_message(std::string_view wire);

/// Build a simple message.
Message make_message(const std::string& from, const std::string& to,
                     const std::string& subject, const std::string& body);

}  // namespace lateral::mail
