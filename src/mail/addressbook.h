// AddressBook — "highly personal data such as user dictionaries ... or
// auto correction based on phrases and names previously used" (paper
// §III-C). Holds contacts and serves prefix completion; in the decomposed
// client it runs in its own domain so nothing but the composer UI path can
// reach it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace lateral::mail {

class AddressBook {
 public:
  Status add(const std::string& name, const std::string& address);
  Result<std::string> lookup(const std::string& name) const;
  Status remove(const std::string& name);
  std::size_t size() const { return contacts_.size(); }

  /// Names starting with `prefix` (the autocompletion the input method
  /// consumes), sorted.
  std::vector<std::string> complete(const std::string& prefix) const;

 private:
  std::map<std::string, std::string> contacts_;
};

}  // namespace lateral::mail
