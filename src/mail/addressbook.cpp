#include "mail/addressbook.h"

namespace lateral::mail {

Status AddressBook::add(const std::string& name, const std::string& address) {
  if (name.empty() || address.find('@') == std::string::npos)
    return Errc::invalid_argument;
  contacts_[name] = address;
  return Status::success();
}

Result<std::string> AddressBook::lookup(const std::string& name) const {
  const auto it = contacts_.find(name);
  if (it == contacts_.end()) return Errc::invalid_argument;
  return it->second;
}

Status AddressBook::remove(const std::string& name) {
  return contacts_.erase(name) ? Status::success()
                               : Status(Errc::invalid_argument);
}

std::vector<std::string> AddressBook::complete(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = contacts_.lower_bound(prefix); it != contacts_.end(); ++it) {
    if (it->first.rfind(prefix, 0) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace lateral::mail
