#include "mail/client.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "runtime/batch_channel.h"
#include "runtime/region_pool.h"

namespace lateral::mail {
namespace {

constexpr const char* kManifest = R"(
component ui {
  substrate SUB
  pages 2
  channel imap
  channel render
  channel addressbook
  channel storage
  channel input
  region storage 65536
  loc 2000
}
component imap {
  substrate SUB
  pages 2
  channel ui
  channel tls
  trace {
    payload
    observer ui
  }
  loc 8000
}
component tls {
  substrate SUB
  pages 2
  channel imap
  seal
  assets 10
  loc 4000
}
component render {
  substrate SUB
  pages 4
  channel ui
  assets 1
  loc 30000
}
component addressbook {
  substrate SUB
  pages 2
  channel ui
  assets 5
  loc 2000
}
component storage {
  substrate SUB
  pages 4
  channel ui
  seal
  assets 6
  loc 3000
}
component input {
  substrate SUB
  pages 2
  channel ui
  assets 4
  loc 3000
}
)";

std::string first_token(const std::string& s, std::size_t& offset) {
  while (offset < s.size() && s[offset] == ' ') ++offset;
  const std::size_t begin = offset;
  while (offset < s.size() && s[offset] != ' ' && s[offset] != '\n') ++offset;
  return s.substr(begin, offset - begin);
}

}  // namespace

Result<std::unique_ptr<MailClient>> MailClient::create(
    MailClientConfig config) {
  if (!config.substrate || !config.disk || !config.server)
    return Errc::invalid_argument;

  auto client = std::unique_ptr<MailClient>(new MailClient());
  client->config_ = config;

  // Substitute the actual substrate name into the manifest text.
  std::string text = kManifest;
  const std::string sub = config.substrate->info().name;
  for (std::size_t at = text.find("SUB"); at != std::string::npos;
       at = text.find("SUB"))
    text.replace(at, 3, sub);
  auto manifests = core::parse_manifests(text);
  if (!manifests) return manifests.error();

  core::SystemComposer composer({{sub, config.substrate}});
  auto assembly = composer.compose(*manifests);
  if (!assembly) return assembly.error();
  client->assembly_ = std::move(*assembly);
  core::Assembly& asm_ref = *client->assembly_;

  // --- tls: the only component with a path to the provider ----------------
  (void)asm_ref.set_behavior(
      "tls", [server = config.server](const substrate::Invocation& inv)
                 -> Result<Bytes> {
        // (A full deployment wraps this in net::SecureChannel; the trust
        // boundary — only tls touches the wire — is what matters here.)
        return to_bytes(server->handle(to_string(inv.data)));
      });

  // --- imap: protocol engine; its transport invokes tls -------------------
  client->imap_engine_ = std::make_unique<ImapClient>(
      [&asm_ref](const std::string& line) -> Result<std::string> {
        auto reply = asm_ref.invoke("imap", "tls", to_bytes(line));
        if (!reply) return reply.error();
        return to_string(*reply);
      });
  ImapClient* imap = client->imap_engine_.get();
  (void)asm_ref.set_behavior(
      "imap", [imap](const substrate::Invocation& inv) -> Result<Bytes> {
        const std::string request = to_string(inv.data);
        std::size_t offset = 0;
        const std::string command = first_token(request, offset);
        if (command == "LOGIN") {
          const std::string user = first_token(request, offset);
          const std::string token = first_token(request, offset);
          if (const Status s = imap->login(user, token); !s.ok())
            return s.error();
          return Bytes{};
        }
        if (command == "COUNT") {
          auto count = imap->select("INBOX");
          if (!count) return count.error();
          return to_bytes(std::to_string(*count));
        }
        if (command == "FETCH") {
          const std::size_t index = std::strtoull(
              first_token(request, offset).c_str(), nullptr, 10);
          auto message = imap->fetch(index);
          if (!message) return message.error();
          return to_bytes(message->to_wire());
        }
        if (command == "APPEND") {
          const std::string folder = first_token(request, offset);
          auto message = parse_message(request.substr(offset + 1));
          if (!message) return message.error();
          auto index = imap->append(folder, *message);
          if (!index) return index.error();
          return to_bytes(std::to_string(*index));
        }
        return Errc::invalid_argument;
      });

  // --- render ----------------------------------------------------------------
  HtmlRenderer* renderer = &client->renderer_;
  (void)asm_ref.set_behavior(
      "render", [renderer](const substrate::Invocation& inv) -> Result<Bytes> {
        return to_bytes(renderer->render(to_string(inv.data)));
      });

  // --- addressbook -------------------------------------------------------------
  AddressBook* book = &client->addressbook_;
  (void)asm_ref.set_behavior(
      "addressbook",
      [book](const substrate::Invocation& inv) -> Result<Bytes> {
        const std::string request = to_string(inv.data);
        std::size_t offset = 0;
        const std::string command = first_token(request, offset);
        if (command == "ADD") {
          const std::string name = first_token(request, offset);
          const std::string address = first_token(request, offset);
          if (const Status s = book->add(name, address); !s.ok())
            return s.error();
          return Bytes{};
        }
        if (command == "LOOKUP") {
          auto address = book->lookup(first_token(request, offset));
          if (!address) return address.error();
          return to_bytes(*address);
        }
        if (command == "COMPLETE") {
          std::string joined;
          for (const std::string& name :
               book->complete(first_token(request, offset))) {
            if (!joined.empty()) joined += ",";
            joined += name;
          }
          return to_bytes(joined);
        }
        return Errc::invalid_argument;
      });

  // --- input method ------------------------------------------------------------
  InputMethod* input = &client->input_method_;
  (void)asm_ref.set_behavior(
      "input", [input](const substrate::Invocation& inv) -> Result<Bytes> {
        const std::string request = to_string(inv.data);
        std::size_t offset = 0;
        const std::string command = first_token(request, offset);
        if (command == "LEARN") {
          input->learn(request.substr(offset));
          return Bytes{};
        }
        if (command == "SUGGEST") {
          std::string joined;
          for (const std::string& word :
               input->suggest(first_token(request, offset))) {
            if (!joined.empty()) joined += ",";
            joined += word;
          }
          return to_bytes(joined);
        }
        if (command == "CORRECT") {
          return to_bytes(input->autocorrect(first_token(request, offset)));
        }
        return Errc::invalid_argument;
      });

  // --- storage: VPFS-backed MailStore owned by the storage domain ----------
  const auto storage_component = *asm_ref.component("storage");
  auto fs = vpfs::Vpfs::format(*config.disk, *config.substrate,
                               storage_component->domain, "/mail",
                               config.vpfs_seed);
  if (!fs) return fs.error();
  client->store_ = std::make_unique<MailStore>(std::move(*fs));
  if (const Status s = client->store_->create_folder("INBOX"); !s.ok())
    return s.error();
  if (const Status s = client->store_->create_folder("Sent"); !s.ok())
    return s.error();
  MailStore* store = client->store_.get();
  substrate::IsolationSubstrate* storage_sub = config.substrate;
  const substrate::DomainId storage_domain = storage_component->domain;
  (void)asm_ref.set_behavior(
      "storage",
      [store, storage_sub,
       storage_domain](const substrate::Invocation& inv) -> Result<Bytes> {
        // Scatter-gather aware: an SG invocation carries the command inline
        // and the message body by descriptor — read it in place from the
        // grant region (constant cost) instead of receiving a copy.
        std::string request = to_string(inv.data);
        for (const substrate::RegionDescriptor& seg : inv.segments) {
          auto view = storage_sub->region_view(storage_domain, seg);
          if (!view) return view.error();
          request.append(view->begin(), view->end());
        }
        std::size_t offset = 0;
        const std::string command = first_token(request, offset);
        if (command == "STORE") {
          const std::string folder = first_token(request, offset);
          auto message = parse_message(request.substr(offset + 1));
          if (!message) return message.error();
          auto index = store->store(folder, *message);
          if (!index) return index.error();
          if (const Status s = store->sync(); !s.ok()) return s.error();
          return to_bytes(std::to_string(*index));
        }
        if (command == "LOAD") {
          const std::string folder = first_token(request, offset);
          const std::size_t index = std::strtoull(
              first_token(request, offset).c_str(), nullptr, 10);
          auto message = store->load(folder, index);
          if (!message) return message.error();
          return to_bytes(message->to_wire());
        }
        if (command == "COUNT") {
          auto count = store->count(first_token(request, offset));
          if (!count) return count.error();
          return to_bytes(std::to_string(*count));
        }
        if (command == "SEARCH") {
          const std::string folder = first_token(request, offset);
          auto hits = store->search(folder, first_token(request, offset));
          if (!hits) return hits.error();
          std::string joined;
          for (const std::size_t hit : *hits) {
            if (!joined.empty()) joined += ",";
            joined += std::to_string(hit);
          }
          return to_bytes(joined);
        }
        return Errc::invalid_argument;
      });

  return client;
}

Status MailClient::login(const std::string& user, const std::string& token) {
  auto reply =
      assembly_->invoke("ui", "imap", to_bytes("LOGIN " + user + " " + token));
  return reply ? Status::success() : Status(reply.error());
}

Result<std::size_t> MailClient::sync_inbox() {
  auto count_reply = assembly_->invoke("ui", "imap", to_bytes("COUNT"));
  if (!count_reply) return count_reply.error();
  const std::size_t remote =
      std::strtoull(to_string(*count_reply).c_str(), nullptr, 10);

  auto local_reply = assembly_->invoke("ui", "storage", to_bytes("COUNT INBOX"));
  if (!local_reply) return local_reply.error();
  std::size_t local =
      std::strtoull(to_string(*local_reply).c_str(), nullptr, 10);

  if (local >= remote) return local;

  // The hot path goes through the batching runtime: one boundary crossing
  // per burst of FETCHes and one per burst of STOREs, instead of two
  // crossings per message. The endpoints are the same manifest-declared
  // channels the per-call path uses — batching changes the cost, not the
  // policy — and they carry the channel epoch, so a supervised restart of
  // imap or storage mid-sync surfaces as stale_epoch completions here
  // rather than invocations silently hitting the reincarnated component.
  auto imap_ep = assembly_->endpoint("ui", "imap");
  if (!imap_ep) return imap_ep.error();
  auto storage_ep = assembly_->endpoint("ui", "storage");
  if (!storage_ep) return storage_ep.error();

  constexpr std::size_t kSyncBurst = 32;
  runtime::BatchChannel fetches(
      *imap_ep,
      {.depth = kSyncBurst, .hub = &runtime_metrics_, .label = "ui->imap"});
  runtime::BatchChannel stores(
      *storage_ep,
      {.depth = kSyncBurst, .hub = &runtime_metrics_, .label = "ui->storage"});

  // Message bodies ride the zero-copy data plane when the substrate can
  // realize the manifest-declared ui<->storage grant region: the STORE
  // command crosses inline, the body by descriptor, staged once into a
  // pool slot. On substrates without region support (TPM/fTPM) —
  // no_region_support from region_between — the copy path below moves each
  // body with exactly one copy (call_batch's delivery of the moved buffer).
  std::optional<runtime::RegionPool> body_pool;
  if (auto region = assembly_->region_between("ui", "storage"); region) {
    const auto ui = *assembly_->component("ui");
    // The region's size comes from the substrate (which got it from the
    // manifest), so the pool stays in step with the `region storage <bytes>`
    // declaration instead of restating it.
    if (auto size = ui->substrate->region_size(*region); size)
      body_pool.emplace(*ui->substrate, ui->domain, *region, *size,
                        /*slot_bytes=*/2048);
  }

  while (local < remote) {
    const std::size_t burst = std::min(kSyncBurst, remote - local);
    std::vector<runtime::SubmissionId> fetch_ids;
    fetch_ids.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      auto id = fetches.submit(to_bytes("FETCH " + std::to_string(local + i)));
      if (!id) return id.error();
      fetch_ids.push_back(*id);
    }
    if (const Status s = fetches.flush(); !s.ok()) return s.error();

    std::vector<runtime::SubmissionId> store_ids;
    store_ids.reserve(burst);
    const Bytes store_header = to_bytes("STORE INBOX\n");
    for (const runtime::SubmissionId id : fetch_ids) {
      auto wire = fetches.wait(id);
      if (!wire) return wire.error();
      Result<runtime::SubmissionId> stored = Errc::no_region_support;
      if (body_pool) {
        stored = stores.submit_staged(*body_pool, store_header, *wire);
        // A body too big for a slot (or a momentarily drained pool) falls
        // back to the copy path for that one message — correctness never
        // depends on the fast path.
        if (!stored && stored.error() != Errc::invalid_argument &&
            stored.error() != Errc::exhausted)
          return stored.error();
      }
      if (!stored) {
        Bytes request = store_header;
        request.insert(request.end(), wire->begin(), wire->end());
        stored = stores.submit(std::move(request));
        if (!stored) return stored.error();
      }
      store_ids.push_back(*stored);
    }
    if (const Status s = stores.flush(); !s.ok()) return s.error();
    for (const runtime::SubmissionId id : store_ids) {
      auto stored = stores.wait(id);
      if (!stored) return stored.error();
      ++local;
    }
  }
  return local;
}

Result<std::string> MailClient::read_mail(std::size_t index) {
  auto wire = assembly_->invoke("ui", "storage",
                                to_bytes("LOAD INBOX " + std::to_string(index)));
  if (!wire) return wire.error();
  auto message = parse_message(to_string(*wire));
  if (!message) return message.error();
  auto rendered = assembly_->invoke("ui", "render", to_bytes(message->body));
  if (!rendered) return rendered.error();
  return message->from() + ": " + message->subject() + "\n" +
         to_string(*rendered);
}

Status MailClient::add_contact(const std::string& name,
                               const std::string& address) {
  auto reply = assembly_->invoke("ui", "addressbook",
                                 to_bytes("ADD " + name + " " + address));
  return reply ? Status::success() : Status(reply.error());
}

Result<std::vector<std::string>> MailClient::complete_recipient(
    const std::string& prefix) {
  auto reply =
      assembly_->invoke("ui", "addressbook", to_bytes("COMPLETE " + prefix));
  if (!reply) return reply.error();
  std::vector<std::string> names;
  std::string current;
  for (const std::uint8_t c : *reply) {
    if (c == ',') {
      names.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty()) names.push_back(current);
  return names;
}

Status MailClient::compose(const std::string& contact,
                           const std::string& subject,
                           const std::string& body) {
  auto address =
      assembly_->invoke("ui", "addressbook", to_bytes("LOOKUP " + contact));
  if (!address) return Status(address.error());

  const Message message =
      make_message("me@example", to_string(*address), subject, body);
  Bytes append = to_bytes("APPEND Sent\n" + message.to_wire());
  auto sent = assembly_->invoke("ui", "imap", append);
  if (!sent) return Status(sent.error());

  Bytes store = to_bytes("STORE Sent\n" + message.to_wire());
  auto stored = assembly_->invoke("ui", "storage", store);
  if (!stored) return Status(stored.error());

  // Feed the typed text to the personal dictionary.
  auto learned =
      assembly_->invoke("ui", "input", to_bytes("LEARN " + subject + " " + body));
  return learned ? Status::success() : Status(learned.error());
}

Result<std::vector<std::string>> MailClient::suggest_word(
    const std::string& prefix) {
  auto reply = assembly_->invoke("ui", "input", to_bytes("SUGGEST " + prefix));
  if (!reply) return reply.error();
  std::vector<std::string> words;
  std::string current;
  for (const std::uint8_t c : *reply) {
    if (c == ',') {
      words.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

Result<std::string> MailClient::autocorrect(const std::string& word) {
  auto reply = assembly_->invoke("ui", "input", to_bytes("CORRECT " + word));
  if (!reply) return reply.error();
  return to_string(*reply);
}

Result<std::vector<std::size_t>> MailClient::search(const std::string& needle) {
  auto reply =
      assembly_->invoke("ui", "storage", to_bytes("SEARCH INBOX " + needle));
  if (!reply) return reply.error();
  std::vector<std::size_t> hits;
  std::string current;
  for (const std::uint8_t c : *reply) {
    if (c == ',') {
      hits.push_back(std::strtoull(current.c_str(), nullptr, 10));
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty())
    hits.push_back(std::strtoull(current.c_str(), nullptr, 10));
  return hits;
}

Status MailClient::flag_renderer_compromised() {
  return assembly_->compromise("render");
}

}  // namespace lateral::mail
