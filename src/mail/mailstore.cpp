#include "mail/mailstore.h"

#include <sstream>

namespace lateral::mail {

MailStore::MailStore(std::unique_ptr<vpfs::Vpfs> fs) : fs_(std::move(fs)) {
  if (!fs_) throw Error("MailStore needs a VPFS");
  // Recover the id counter from existing folders after a remount.
  for (const std::string& name : fs_->list()) {
    if (name.rfind("msg/", 0) != 0) continue;
    const std::uint64_t id =
        std::strtoull(name.c_str() + 4, nullptr, 10);
    next_id_ = std::max(next_id_, id + 1);
  }
}

std::string MailStore::index_path(const std::string& folder) const {
  return "folder/" + folder;
}

std::string MailStore::message_path(const std::string& folder,
                                    std::uint64_t id) const {
  (void)folder;  // messages are stored flat; folders reference them by id
  return "msg/" + std::to_string(id);
}

Status MailStore::create_folder(const std::string& folder) {
  if (folder.empty() || folder.find('/') != std::string::npos)
    return Errc::invalid_argument;
  if (fs_->exists(index_path(folder))) return Errc::invalid_argument;
  return fs_->create(index_path(folder));
}

std::vector<std::string> MailStore::folders() const {
  std::vector<std::string> out;
  for (const std::string& name : fs_->list())
    if (name.rfind("folder/", 0) == 0) out.push_back(name.substr(7));
  return out;
}

Result<std::vector<std::uint64_t>> MailStore::read_index(
    const std::string& folder) const {
  if (!fs_->exists(index_path(folder))) return Errc::invalid_argument;
  auto size = fs_->size(index_path(folder));
  if (!size) return size.error();
  auto raw = fs_->read(index_path(folder), 0, *size);
  if (!raw) return raw.error();
  std::vector<std::uint64_t> ids;
  std::istringstream stream(to_string(*raw));
  std::string line;
  while (std::getline(stream, line))
    if (!line.empty()) ids.push_back(std::strtoull(line.c_str(), nullptr, 10));
  return ids;
}

Status MailStore::write_index(const std::string& folder,
                              const std::vector<std::uint64_t>& ids) {
  std::ostringstream out;
  for (const std::uint64_t id : ids) out << id << "\n";
  const std::string text = out.str();
  // Rewrite from scratch: remove + recreate keeps the file compact.
  if (fs_->exists(index_path(folder)))
    if (const Status s = fs_->remove(index_path(folder)); !s.ok()) return s;
  if (const Status s = fs_->create(index_path(folder)); !s.ok()) return s;
  return fs_->write(index_path(folder), 0, to_bytes(text));
}

Result<std::size_t> MailStore::store(const std::string& folder,
                                     const Message& message) {
  auto ids = read_index(folder);
  if (!ids) return ids.error();
  const std::uint64_t id = next_id_++;
  const std::string path = message_path(folder, id);
  if (const Status s = fs_->create(path); !s.ok()) return s.error();
  if (const Status s = fs_->write(path, 0, to_bytes(message.to_wire()));
      !s.ok())
    return s.error();
  ids->push_back(id);
  if (const Status s = write_index(folder, *ids); !s.ok()) return s.error();
  return ids->size() - 1;
}

Result<Message> MailStore::load(const std::string& folder, std::size_t index) {
  auto ids = read_index(folder);
  if (!ids) return ids.error();
  if (index >= ids->size()) return Errc::invalid_argument;
  const std::string path = message_path(folder, (*ids)[index]);
  auto size = fs_->size(path);
  if (!size) return size.error();
  auto raw = fs_->read(path, 0, *size);
  if (!raw) return raw.error();
  return parse_message(to_string(*raw));
}

Result<std::size_t> MailStore::count(const std::string& folder) const {
  auto ids = read_index(folder);
  if (!ids) return ids.error();
  return ids->size();
}

Status MailStore::remove(const std::string& folder, std::size_t index) {
  auto ids = read_index(folder);
  if (!ids) return ids.error();
  if (index >= ids->size()) return Errc::invalid_argument;
  (void)fs_->remove(message_path(folder, (*ids)[index]));
  ids->erase(ids->begin() + static_cast<long>(index));
  return write_index(folder, *ids);
}

Result<std::vector<std::size_t>> MailStore::search(const std::string& folder,
                                                   const std::string& needle) {
  auto total = count(folder);
  if (!total) return total.error();
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < *total; ++i) {
    auto message = load(folder, i);
    if (!message) return message.error();
    if (message->subject().find(needle) != std::string::npos ||
        message->body.find(needle) != std::string::npos)
      hits.push_back(i);
  }
  return hits;
}

Status MailStore::sync() { return fs_->sync(); }

}  // namespace lateral::mail
