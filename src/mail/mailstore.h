// MailStore — the storage component of the decomposed mail client.
//
// Folders and messages live in a VPFS instance, so the untrusted legacy
// file system below never sees plaintext mail, folder names or message
// counts in the clear, and tampering/rollback is detected (paper §III-D:
// "a mail client needs to store messages in the file system, and organize
// them in folders, search them").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mail/message.h"
#include "util/result.h"
#include "vpfs/vpfs.h"

namespace lateral::mail {

class MailStore {
 public:
  /// Takes ownership of a mounted/just-formatted VPFS.
  explicit MailStore(std::unique_ptr<vpfs::Vpfs> fs);

  Status create_folder(const std::string& folder);
  std::vector<std::string> folders() const;

  /// Store a message; returns its index within the folder.
  Result<std::size_t> store(const std::string& folder, const Message& message);
  Result<Message> load(const std::string& folder, std::size_t index);
  Result<std::size_t> count(const std::string& folder) const;
  Status remove(const std::string& folder, std::size_t index);

  /// Case-sensitive substring search over subjects and bodies of a folder;
  /// returns matching indices.
  Result<std::vector<std::size_t>> search(const std::string& folder,
                                          const std::string& needle);

  /// Commit everything durably.
  Status sync();

 private:
  std::string index_path(const std::string& folder) const;
  std::string message_path(const std::string& folder, std::uint64_t id) const;
  /// The folder index file holds one message-id per line (monotonic ids;
  /// removal rewrites the index but keeps ids stable).
  Result<std::vector<std::uint64_t>> read_index(const std::string& folder) const;
  Status write_index(const std::string& folder,
                     const std::vector<std::uint64_t>& ids);

  std::unique_ptr<vpfs::Vpfs> fs_;
  std::uint64_t next_id_ = 1;
};

}  // namespace lateral::mail
