#include "mail/input_method.h"

#include <algorithm>

namespace lateral::mail {
namespace {

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '\'';
}

std::string lower(std::string s) {
  for (char& c : s)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
  return s;
}

}  // namespace

void InputMethod::learn(const std::string& text) {
  std::string word;
  for (const char c : text) {
    if (is_word_char(c)) {
      word.push_back(c);
    } else if (!word.empty()) {
      dictionary_[lower(word)]++;
      word.clear();
    }
  }
  if (!word.empty()) dictionary_[lower(word)]++;
}

std::vector<std::string> InputMethod::suggest(const std::string& prefix,
                                              std::size_t limit) const {
  const std::string p = lower(prefix);
  std::vector<std::pair<std::string, std::uint64_t>> matches;
  for (auto it = dictionary_.lower_bound(p); it != dictionary_.end(); ++it) {
    if (it->first.rfind(p, 0) != 0) break;
    matches.push_back(*it);
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < matches.size() && i < limit; ++i)
    out.push_back(matches[i].first);
  return out;
}

bool InputMethod::within_edit_distance_one(const std::string& a,
                                           const std::string& b) {
  if (a == b) return true;
  const std::size_t la = a.size(), lb = b.size();
  if (la > lb + 1 || lb > la + 1) return false;
  if (la == lb) {
    int diffs = 0;
    for (std::size_t i = 0; i < la; ++i)
      if (a[i] != b[i] && ++diffs > 1) return false;
    return true;
  }
  // One insertion: iterate the longer, allow one skip.
  const std::string& longer = la > lb ? a : b;
  const std::string& shorter = la > lb ? b : a;
  std::size_t i = 0, j = 0;
  bool skipped = false;
  while (i < longer.size() && j < shorter.size()) {
    if (longer[i] == shorter[j]) {
      ++i;
      ++j;
    } else {
      if (skipped) return false;
      skipped = true;
      ++i;
    }
  }
  return true;
}

std::string InputMethod::autocorrect(const std::string& word) const {
  const std::string w = lower(word);
  if (dictionary_.contains(w)) return w;
  const std::pair<const std::string, std::uint64_t>* best = nullptr;
  for (const auto& entry : dictionary_) {
    if (!within_edit_distance_one(w, entry.first)) continue;
    if (!best || entry.second > best->second) best = &entry;
  }
  return best ? best->first : word;
}

}  // namespace lateral::mail
