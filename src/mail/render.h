// HtmlRenderer — the network-data-facing component of the mail client.
//
// "An application that reads from the network and parses HTML can be
// subverted" (paper §I). This renderer sanitizes HTML-ish mail bodies to
// plain text — and, deliberately, carries a classic parsing bug: an input
// containing the marker sequence `<!--PWNED-->` models a crafted mail that
// exploits a memory-safety hole in the tag parser. Once triggered, the
// renderer is attacker-controlled (is_compromised()) and every later
// render returns attacker output.
//
// The point of the decomposed architecture is that this does NOT matter
// much: the integration tests and the email_client example compromise the
// renderer and watch the substrate confine it.
#pragma once

#include <string>

#include "util/result.h"

namespace lateral::mail {

class HtmlRenderer {
 public:
  /// Strip tags, decode the three common entities, collapse whitespace.
  /// After a successful exploit, returns attacker-chosen output instead.
  std::string render(const std::string& html);

  bool is_compromised() const { return compromised_; }

  /// The marker a crafted mail uses to trigger the bug.
  static constexpr const char* kExploitMarker = "<!--PWNED-->";

 private:
  bool compromised_ = false;
};

}  // namespace lateral::mail
