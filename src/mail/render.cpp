#include "mail/render.h"

namespace lateral::mail {

std::string HtmlRenderer::render(const std::string& html) {
  // The "vulnerability": a crafted comment takes over the component.
  if (html.find(kExploitMarker) != std::string::npos) compromised_ = true;
  if (compromised_) return "[renderer owned by attacker]";

  std::string out;
  out.reserve(html.size());
  bool in_tag = false;
  for (std::size_t i = 0; i < html.size(); ++i) {
    const char c = html[i];
    if (c == '<') {
      in_tag = true;
      continue;
    }
    if (c == '>') {
      in_tag = false;
      continue;
    }
    if (in_tag) continue;

    if (c == '&') {
      if (html.compare(i, 4, "&lt;") == 0) {
        out += '<';
        i += 3;
        continue;
      }
      if (html.compare(i, 4, "&gt;") == 0) {
        out += '>';
        i += 3;
        continue;
      }
      if (html.compare(i, 5, "&amp;") == 0) {
        out += '&';
        i += 4;
        continue;
      }
    }
    // Collapse whitespace runs.
    if (c == '\n' || c == '\t' || c == ' ') {
      if (!out.empty() && out.back() != ' ') out += ' ';
      continue;
    }
    out += c;
  }
  // Trim.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  std::size_t begin = 0;
  while (begin < out.size() && out[begin] == ' ') ++begin;
  return out.substr(begin);
}

}  // namespace lateral::mail
