// IMAP-ish mailbox protocol: a line-based server (the remote mail service)
// and a client engine (the component that speaks the "complex protocols
// such as IMAP" the paper's mail client must understand).
//
// Commands (one per request, text):
//   LOGIN <user> <token>      -> OK | NO
//   SELECT <folder>           -> OK <count>
//   LIST                      -> OK <folder,folder,...>
//   FETCH <n>                 -> OK <message wire format...>
//   APPEND <folder> <wire...> -> OK <n>
//   EXPUNGE <n>               -> OK
//   LOGOUT                    -> OK
// Replies start with "OK" or "NO <reason>".
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mail/message.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::mail {

/// The remote mailbox service (runs at the provider; untrusted from the
/// client's perspective).
class ImapServer {
 public:
  ImapServer(std::string user, std::string token);

  /// Process one command line (without trailing newline).
  std::string handle(const std::string& request);

  /// Provider-side management: deliver a new message into a folder.
  Status deliver(const std::string& folder, const Message& message);

  bool logged_in() const { return logged_in_; }

 private:
  std::string expected_user_;
  std::string expected_token_;
  bool logged_in_ = false;
  std::string selected_;
  std::map<std::string, std::vector<Message>> folders_;
};

/// The client-side protocol engine. Stateless about transport: the caller
/// supplies `exchange`, a function that sends one request line and returns
/// the reply (typically across a SecureChannel).
class ImapClient {
 public:
  using Exchange = std::function<Result<std::string>(const std::string&)>;

  explicit ImapClient(Exchange exchange);

  Status login(const std::string& user, const std::string& token);
  Result<std::size_t> select(const std::string& folder);
  Result<std::vector<std::string>> list_folders();
  Result<Message> fetch(std::size_t index);
  Result<std::size_t> append(const std::string& folder,
                             const Message& message);
  Status expunge(std::size_t index);
  Status logout();

 private:
  Result<std::string> ok_payload(const std::string& request);
  Exchange exchange_;
};

}  // namespace lateral::mail
