#include "mail/message.h"

#include <algorithm>
#include <sstream>

namespace lateral::mail {
namespace {

std::string lower(std::string s) {
  for (char& c : s)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
  return s;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0, end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r'))
    --end;
  return s.substr(begin, end - begin);
}

}  // namespace

std::optional<std::string> Message::header(const std::string& name) const {
  const std::string needle = lower(name);
  for (const auto& [key, value] : headers)
    if (key == needle) return value;
  return std::nullopt;
}

std::string Message::to_wire() const {
  std::ostringstream out;
  for (const auto& [key, value] : headers) out << key << ": " << value << "\n";
  out << "\n" << body;
  return out.str();
}

Result<Message> parse_message(std::string_view wire) {
  Message message;
  std::istringstream stream{std::string(wire)};
  std::string line;
  bool in_headers = true;

  while (in_headers && std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      in_headers = false;
      break;
    }
    if (line[0] == ' ' || line[0] == '\t') {
      // Folded continuation of the previous header.
      if (message.headers.empty()) return Errc::invalid_argument;
      message.headers.back().second += " " + trim(line);
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0)
      return Errc::invalid_argument;
    message.headers.emplace_back(lower(trim(line.substr(0, colon))),
                                 trim(line.substr(colon + 1)));
  }

  // The rest is the body, verbatim.
  std::string body;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    body += line;
    body += '\n';
  }
  if (!body.empty() && wire.size() > 0 && wire.back() != '\n')
    body.pop_back();  // getline added a newline the input did not have
  message.body = std::move(body);
  return message;
}

Message make_message(const std::string& from, const std::string& to,
                     const std::string& subject, const std::string& body) {
  Message message;
  message.headers = {{"from", from}, {"to", to}, {"subject", subject}};
  message.body = body;
  return message;
}

}  // namespace lateral::mail
