#include "mail/imap.h"

#include <cstdlib>
#include <sstream>

namespace lateral::mail {
namespace {

/// Split "COMMAND arg1 arg2" -> tokens; the remainder after the first
/// newline (if any) is returned separately as the payload.
struct Parsed {
  std::vector<std::string> tokens;
  std::string payload;
};

Parsed parse_request(const std::string& request) {
  Parsed out;
  const std::size_t newline = request.find('\n');
  const std::string command_line =
      newline == std::string::npos ? request : request.substr(0, newline);
  if (newline != std::string::npos) out.payload = request.substr(newline + 1);
  std::istringstream stream(command_line);
  std::string token;
  while (stream >> token) out.tokens.push_back(token);
  return out;
}

}  // namespace

ImapServer::ImapServer(std::string user, std::string token)
    : expected_user_(std::move(user)), expected_token_(std::move(token)) {
  folders_["INBOX"];  // every account has an inbox
}

Status ImapServer::deliver(const std::string& folder, const Message& message) {
  folders_[folder].push_back(message);
  return Status::success();
}

std::string ImapServer::handle(const std::string& request) {
  const Parsed parsed = parse_request(request);
  if (parsed.tokens.empty()) return "NO empty request";
  const std::string& command = parsed.tokens[0];

  if (command == "LOGIN") {
    if (parsed.tokens.size() != 3) return "NO syntax";
    if (parsed.tokens[1] != expected_user_ ||
        parsed.tokens[2] != expected_token_)
      return "NO bad credentials";
    logged_in_ = true;
    return "OK";
  }
  if (!logged_in_) return "NO not logged in";

  if (command == "LIST") {
    std::string names;
    for (const auto& [name, messages] : folders_) {
      if (!names.empty()) names += ",";
      names += name;
    }
    return "OK " + names;
  }
  if (command == "SELECT") {
    if (parsed.tokens.size() != 2) return "NO syntax";
    const auto it = folders_.find(parsed.tokens[1]);
    if (it == folders_.end()) return "NO no such folder";
    selected_ = parsed.tokens[1];
    return "OK " + std::to_string(it->second.size());
  }
  if (command == "FETCH") {
    if (parsed.tokens.size() != 2 || selected_.empty()) return "NO syntax";
    const std::size_t index = std::strtoull(parsed.tokens[1].c_str(), nullptr, 10);
    const auto& messages = folders_[selected_];
    if (index >= messages.size()) return "NO no such message";
    return "OK\n" + messages[index].to_wire();
  }
  if (command == "APPEND") {
    if (parsed.tokens.size() != 2) return "NO syntax";
    auto message = parse_message(parsed.payload);
    if (!message) return "NO unparseable message";
    folders_[parsed.tokens[1]].push_back(*message);
    return "OK " + std::to_string(folders_[parsed.tokens[1]].size() - 1);
  }
  if (command == "EXPUNGE") {
    if (parsed.tokens.size() != 2 || selected_.empty()) return "NO syntax";
    const std::size_t index = std::strtoull(parsed.tokens[1].c_str(), nullptr, 10);
    auto& messages = folders_[selected_];
    if (index >= messages.size()) return "NO no such message";
    messages.erase(messages.begin() + static_cast<long>(index));
    return "OK";
  }
  if (command == "LOGOUT") {
    logged_in_ = false;
    selected_.clear();
    return "OK";
  }
  return "NO unknown command";
}

ImapClient::ImapClient(Exchange exchange) : exchange_(std::move(exchange)) {
  if (!exchange_) throw Error("ImapClient needs an exchange function");
}

Result<std::string> ImapClient::ok_payload(const std::string& request) {
  auto reply = exchange_(request);
  if (!reply) return reply.error();
  if (reply->rfind("OK", 0) != 0) return Errc::io_error;  // server said NO
  // Payload follows "OK " on the same line, or after "OK\n".
  if (reply->size() <= 2) return std::string{};
  if ((*reply)[2] == '\n') return reply->substr(3);
  return reply->substr(3);
}

Status ImapClient::login(const std::string& user, const std::string& token) {
  auto payload = ok_payload("LOGIN " + user + " " + token);
  return payload ? Status::success() : Status(payload.error());
}

Result<std::size_t> ImapClient::select(const std::string& folder) {
  auto payload = ok_payload("SELECT " + folder);
  if (!payload) return payload.error();
  return static_cast<std::size_t>(std::strtoull(payload->c_str(), nullptr, 10));
}

Result<std::vector<std::string>> ImapClient::list_folders() {
  auto payload = ok_payload("LIST");
  if (!payload) return payload.error();
  std::vector<std::string> folders;
  std::istringstream stream(*payload);
  std::string name;
  while (std::getline(stream, name, ',')) folders.push_back(name);
  return folders;
}

Result<Message> ImapClient::fetch(std::size_t index) {
  auto payload = ok_payload("FETCH " + std::to_string(index));
  if (!payload) return payload.error();
  // The component must vet server data: a malformed message is an error
  // reported to the caller, never blindly passed on.
  return parse_message(*payload);
}

Result<std::size_t> ImapClient::append(const std::string& folder,
                                       const Message& message) {
  auto payload = ok_payload("APPEND " + folder + "\n" + message.to_wire());
  if (!payload) return payload.error();
  return static_cast<std::size_t>(std::strtoull(payload->c_str(), nullptr, 10));
}

Status ImapClient::expunge(std::size_t index) {
  auto payload = ok_payload("EXPUNGE " + std::to_string(index));
  return payload ? Status::success() : Status(payload.error());
}

Status ImapClient::logout() {
  auto payload = ok_payload("LOGOUT");
  return payload ? Status::success() : Status(payload.error());
}

}  // namespace lateral::mail
