// MailClient — the fully decomposed mail application of paper §III-C,
// assembled on one isolation substrate.
//
//   ui ── imap ── tls ──(exclusive NIC)── remote ImapServer
//    ├─── render          (HTML sanitizer; exploitable by crafted mail)
//    ├─── addressbook     (contacts + completion)
//    └─── storage         (MailStore on VPFS over an untrusted disk)
//
// Every box is a substrate domain; every edge is a manifest-declared
// channel; everything else is refused by POLA. The UI component drives the
// others through substrate invocations only — exactly the "horizontal
// aggregate of communicating components" of Fig. 1.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/composer.h"
#include "legacy/filesystem.h"
#include "mail/addressbook.h"
#include "mail/imap.h"
#include "mail/input_method.h"
#include "mail/mailstore.h"
#include "mail/render.h"
#include "runtime/metrics.h"
#include "substrate/substrate.h"

namespace lateral::mail {

struct MailClientConfig {
  substrate::IsolationSubstrate* substrate = nullptr;
  /// The untrusted local disk the storage component wraps with VPFS.
  legacy::LegacyFilesystem* disk = nullptr;
  /// The provider's mailbox service; only the tls component can reach it
  /// (it "has exclusive access to the device driver of the network card").
  ImapServer* server = nullptr;
  Bytes vpfs_seed;
};

class MailClient {
 public:
  static Result<std::unique_ptr<MailClient>> create(MailClientConfig config);

  // --- User-facing operations (all routed through the ui component) -------
  Status login(const std::string& user, const std::string& token);
  /// Fetch all inbox messages from the server into local storage; returns
  /// how many are stored locally afterwards.
  Result<std::size_t> sync_inbox();
  /// Render a locally stored inbox message for display.
  Result<std::string> read_mail(std::size_t index);
  Status add_contact(const std::string& name, const std::string& address);
  Result<std::vector<std::string>> complete_recipient(
      const std::string& prefix);
  /// Compose to a contact (addressbook lookup), send (APPEND to the
  /// server's Sent folder), store a local copy, and feed the text to the
  /// input method's dictionary ("auto correction based on phrases
  /// previously used").
  Status compose(const std::string& contact, const std::string& subject,
                 const std::string& body);
  /// Search local mail bodies/subjects.
  Result<std::vector<std::size_t>> search(const std::string& needle);
  /// Word suggestions from the input-method component's dictionary.
  Result<std::vector<std::string>> suggest_word(const std::string& prefix);
  /// Autocorrect one word against the dictionary.
  Result<std::string> autocorrect(const std::string& word);

  // --- Introspection for experiments ---------------------------------------
  core::Assembly& assembly() { return *assembly_; }
  /// Per-wire runtime counters ("ui->imap", "ui->storage") filled by the
  /// batched sync_inbox path.
  runtime::MetricsHub& runtime_metrics() { return runtime_metrics_; }
  bool renderer_compromised() const { return renderer_.is_compromised(); }
  /// Ask the substrate to flag the renderer domain (after an exploit).
  Status flag_renderer_compromised();

 private:
  MailClient() = default;

  MailClientConfig config_;
  std::unique_ptr<core::Assembly> assembly_;
  // Component engines (the "code" running inside each domain).
  std::unique_ptr<ImapClient> imap_engine_;
  HtmlRenderer renderer_;
  AddressBook addressbook_;
  InputMethod input_method_;
  std::unique_ptr<MailStore> store_;
  runtime::MetricsHub runtime_metrics_;
};

}  // namespace lateral::mail
