// InputMethod — typing assistance with a personal dictionary.
//
// Paper §III-C: "Any of these input methods can greatly benefit from highly
// personal data such as user dictionaries for spell checking, training
// datasets for voice recognition, or auto correction based on phrases and
// names previously used. ... Access to such data should be restricted to
// the input method code only." In the decomposed client this engine runs in
// its own domain; only the ui channel reaches it, so a compromised renderer
// can't slurp the dictionary (which reveals everything the user ever typed).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace lateral::mail {

class InputMethod {
 public:
  /// Learn every word of a typed text (frequency-weighted).
  void learn(const std::string& text);

  /// Words starting with `prefix`, most frequent first (ties: lexicographic).
  std::vector<std::string> suggest(const std::string& prefix,
                                   std::size_t limit = 3) const;

  /// Autocorrect: returns the exact word if known, else the most frequent
  /// dictionary word within edit distance 1, else the input unchanged.
  std::string autocorrect(const std::string& word) const;

  std::size_t vocabulary() const { return dictionary_.size(); }

 private:
  static bool within_edit_distance_one(const std::string& a,
                                       const std::string& b);
  std::map<std::string, std::uint64_t> dictionary_;  // word -> frequency
};

}  // namespace lateral::mail
