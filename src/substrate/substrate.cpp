#include "substrate/substrate.h"

#include <algorithm>

#include "crypto/hmac.h"

namespace lateral::substrate {

IsolationSubstrate::IsolationSubstrate(hw::Machine& machine,
                                       SubstrateConfig config)
    : machine_(machine), config_(std::move(config)) {
  if (config_.launch_policy == LaunchPolicy::secure_boot && !config_.owner_key)
    throw Error("secure_boot requires an owner code-signing key");
}

Cycles IsolationSubstrate::serialized_share(Cycles direction) const {
  switch (concurrency_law()) {
    case ConcurrencyLaw::parallel:
      return 0;
    case ConcurrencyLaw::transition_serialized:
      // The fixed transition (EENTER/EEXIT world state) holds the gate;
      // data-dependent EPC work proceeds on the entering core.
      return std::min(direction, message_cost(0));
    case ConcurrencyLaw::monitor_serialized:
    case ConcurrencyLaw::device_serialized:
      return direction;
  }
  return direction;
}

void IsolationSubstrate::charge_crossing(Cycles direction) {
  // Single core: bit-exact with the old single-clock machine — the gate
  // logic must not perturb committed FIG9/11/12 numbers.
  if (machine_.core_count() < 2) {
    machine_.advance(direction);
    return;
  }
  const Cycles serial = serialized_share(direction);
  if (serial == 0) {
    machine_.advance(direction);
    return;
  }
  const Cycles arrive = machine_.core(machine_.active_core());
  if (arrive < serial_free_) {
    ++serial_stalls_;
    serial_stall_cycles_ += serial_free_ - arrive;
    machine_.stall_until(serial_free_);
  }
  machine_.advance(serial);
  serial_free_ = machine_.core(machine_.active_core());
  machine_.advance(direction - serial);
}

namespace {
// Disjoint key spaces for the machine's shared-access contention tracker.
constexpr std::uint64_t kChannelKeyTag = 0x8000'0000'0000'0000ull;
constexpr std::uint64_t kRegionKeyTag = 0x4000'0000'0000'0000ull;
}  // namespace

void IsolationSubstrate::note_channel_touch(ChannelId id) {
  machine_.note_shared_access(kChannelKeyTag | id);
}

void IsolationSubstrate::note_region_touch(RegionId id, std::uint64_t offset) {
  const std::uint64_t line = offset / machine_.costs().cache_line_bytes;
  machine_.note_shared_access(kRegionKeyTag | (id << 24) | (line & 0xFFFFFF));
}

IsolationSubstrate::DomainRecord* IsolationSubstrate::find_domain(DomainId id) {
  const auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : &it->second;
}

const IsolationSubstrate::DomainRecord* IsolationSubstrate::find_domain(
    DomainId id) const {
  const auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : &it->second;
}

IsolationSubstrate::ChannelRecord* IsolationSubstrate::find_channel(
    ChannelId id) {
  const auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}

const IsolationSubstrate::ChannelRecord* IsolationSubstrate::find_channel(
    ChannelId id) const {
  const auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}

IsolationSubstrate::RegionRecord* IsolationSubstrate::find_region(RegionId id) {
  const auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : &it->second;
}

const IsolationSubstrate::RegionRecord* IsolationSubstrate::find_region(
    RegionId id) const {
  const auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : &it->second;
}

Status IsolationSubstrate::check_live(DomainId id) const {
  const DomainRecord* record = find_domain(id);
  if (!record) return Errc::no_such_domain;
  if (record->dead) return Errc::domain_dead;
  return Status::success();
}

Status IsolationSubstrate::set_trace_capture(DomainId domain, bool capture) {
  if (const Status s = check_live(domain); !s.ok()) return s;
  find_domain(domain)->trace_capture = capture;
  return Status::success();
}

bool IsolationSubstrate::trace_capture(DomainId domain) const {
  const DomainRecord* record = find_domain(domain);
  return record && record->trace_capture;
}

Cycles IsolationSubstrate::trace_crossing_cost() const {
  // The context's 16 wire bytes at this substrate's own marginal rate, plus
  // the recorder stamp. Deliberately *excludes* the fixed crossing cost:
  // the context piggybacks on a crossing that happens anyway.
  return message_cost(trace::kTraceContextWireBytes) - message_cost(0) +
         machine_.costs().trace_stamp;
}

void IsolationSubstrate::stamp_span(DomainId domain,
                                    const trace::TraceContext& ctx,
                                    std::uint32_t span_id,
                                    trace::SpanPhase phase, BytesView data,
                                    std::uint64_t size) {
  if (!tracing_active()) return;
  const DomainRecord* record = find_domain(domain);
  trace::SpanEvent event;
  event.trace_id = ctx.trace_id;
  event.span_id = span_id;
  event.parent_span = ctx.parent_span;
  event.phase = phase;
  event.at = machine_.now();
  event.size = size;
  event.note_payload(data, record && record->trace_capture);
  tracer_->recorder(this, domain, record ? record->spec.name : "")
      .record(event);
}

bool IsolationSubstrate::fault_fires(DomainId callee, std::string_view op) {
  if (!fault_hook_) return false;
  if (!fault_hook_(callee, op)) return false;
  (void)kill_domain(callee);
  return true;
}

Result<DomainId> IsolationSubstrate::create_domain(const DomainSpec& spec) {
  if (spec.name.empty() || spec.image.code.empty())
    return Errc::invalid_argument;

  // Launch policy first: the trust anchor refuses unsigned code (secure
  // boot) before any resources are committed, or records what it launches
  // (authenticated boot).
  if (config_.launch_policy == LaunchPolicy::secure_boot) {
    if (const Status s = crypto::rsa_verify(*config_.owner_key,
                                            spec.image.code,
                                            spec.image_signature);
        !s.ok())
      return Errc::verification_failed;
  }
  if (const Status s = admit_domain(spec); !s.ok()) return s.error();

  const DomainId id = next_domain_++;
  DomainRecord record;
  record.spec = spec;
  record.measurement = spec.image.measurement();
  if (const Status s = attach_memory(id, record); !s.ok()) return s.error();

  if (config_.launch_policy == LaunchPolicy::authenticated_boot)
    boot_log_.push_back(record.measurement);

  domains_.emplace(id, std::move(record));
  return id;
}

Status IsolationSubstrate::destroy_domain(DomainId domain) {
  const auto it = domains_.find(domain);
  if (it == domains_.end()) return Errc::no_such_domain;
  // A corpse's memory was already released at kill time; destroying it is
  // the reap step and must not release twice.
  if (!it->second.dead) release_memory(domain, it->second);
  // Tear down every channel the domain participates in; POLA means no
  // dangling rights survive the domain.
  for (auto chan_it = channels_.begin(); chan_it != channels_.end();) {
    if (chan_it->second.a == domain || chan_it->second.b == domain)
      chan_it = channels_.erase(chan_it);
    else
      ++chan_it;
  }
  // Same for grant regions: the reap removes the shared memory entirely.
  for (auto reg_it = regions_.begin(); reg_it != regions_.end();) {
    if (reg_it->second.a == domain || reg_it->second.b == domain) {
      if (!reg_it->second.revoked)
        release_region(reg_it->first, reg_it->second);
      reg_it = regions_.erase(reg_it);
    } else {
      ++reg_it;
    }
  }
  domains_.erase(it);
  return Status::success();
}

Status IsolationSubstrate::kill_domain(DomainId domain) {
  DomainRecord* record = find_domain(domain);
  if (!record) return Errc::no_such_domain;
  if (record->dead) return Errc::domain_dead;  // cannot die twice
  // The crash is the flight recorder's reason to exist: stamp it as the
  // corpse's final ring entry (under the active trace if one is running,
  // else trace id 0 — the timeline matters even without a sampled trace).
  if (tracing_active())
    stamp_span(domain, trace::current_context(), tracer_->next_span(),
               trace::SpanPhase::killed, {}, 0);
  release_memory(domain, *record);
  record->handler = nullptr;
  record->dead = true;
  // In-flight messages of the old life are gone with the crash: both
  // directions, on every channel the corpse participates in. The channels
  // themselves survive (as does their identity) so a supervisor can rebind
  // them to a reincarnation with a bumped epoch.
  for (auto& [id, chan] : channels_) {
    if (chan.a != domain && chan.b != domain) continue;
    chan.to_a.clear();
    chan.to_b.clear();
  }
  // Grant regions touching the corpse are revoked immediately: mappings
  // drop, the epoch bumps (fencing every outstanding descriptor), and the
  // shared bytes are scrubbed — a crash must not leak the old life's data
  // through memory the survivor can still read. The record survives for
  // rebind_region, mirroring channel corpse semantics.
  for (auto& [id, region] : regions_) {
    if (region.a != domain && region.b != domain) continue;
    region.mapped_a = false;
    region.mapped_b = false;
    ++region.epoch;
    std::fill(region.backing.begin(), region.backing.end(), std::uint8_t{0});
  }
  return Status::success();
}

bool IsolationSubstrate::is_dead(DomainId domain) const {
  const DomainRecord* record = find_domain(domain);
  return record && record->dead;
}

std::vector<DomainId> IsolationSubstrate::domains() const {
  std::vector<DomainId> out;
  out.reserve(domains_.size());
  for (const auto& [id, record] : domains_)
    if (!record.dead) out.push_back(id);
  return out;
}

Result<DomainSpec> IsolationSubstrate::domain_spec(DomainId domain) const {
  if (const Status s = check_live(domain); !s.ok()) return s.error();
  return find_domain(domain)->spec;
}

Result<ChannelId> IsolationSubstrate::create_channel(DomainId a, DomainId b,
                                                     const ChannelSpec& spec) {
  if (const Status s = check_live(a); !s.ok()) return s.error();
  if (const Status s = check_live(b); !s.ok()) return s.error();
  if (a == b) return Errc::invalid_argument;
  const ChannelId id = next_channel_++;
  ChannelRecord record;
  record.a = a;
  record.b = b;
  record.badge_a = next_badge_++;
  record.badge_b = next_badge_++;
  record.spec = spec;
  channels_.emplace(id, std::move(record));
  return id;
}

Result<std::uint64_t> IsolationSubstrate::endpoint_badge(
    ChannelId channel, DomainId endpoint) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return Errc::no_such_channel;
  if (endpoint == it->second.a) return it->second.badge_a;
  if (endpoint == it->second.b) return it->second.badge_b;
  return Errc::access_denied;
}

Result<std::uint64_t> IsolationSubstrate::channel_epoch(
    ChannelId channel) const {
  const ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  return chan->epoch;
}

Status IsolationSubstrate::bump_channel_epoch(ChannelId channel) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  ++chan->epoch;
  chan->to_a.clear();
  chan->to_b.clear();
  return Status::success();
}

Status IsolationSubstrate::rebind_channel(ChannelId channel, DomainId from,
                                          DomainId to) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (chan->a != from && chan->b != from) return Errc::access_denied;
  if (const Status s = check_live(to); !s.ok()) return s.error();
  const DomainId other = (chan->a == from) ? chan->b : chan->a;
  if (to == other) return Errc::invalid_argument;  // both ends one domain
  // Fresh badge for the rebound side: the reincarnation is a new principal
  // on this channel; nobody who recorded the old badge may confuse the two.
  if (chan->a == from) {
    chan->a = to;
    chan->badge_a = next_badge_++;
  } else {
    chan->b = to;
    chan->badge_b = next_badge_++;
  }
  ++chan->epoch;
  chan->to_a.clear();
  chan->to_b.clear();
  return Status::success();
}

Status IsolationSubstrate::set_handler(DomainId domain, Handler handler) {
  if (const Status s = check_live(domain); !s.ok()) return s;
  find_domain(domain)->handler = std::move(handler);
  return Status::success();
}

Status IsolationSubstrate::send(DomainId actor, ChannelId channel,
                                BytesView data) {
  // The view cannot be adopted; this is the path's one unavoidable copy.
  return send(actor, channel, Bytes(data.begin(), data.end()));
}

Status IsolationSubstrate::send(DomainId actor, ChannelId channel,
                                Bytes&& data) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (actor != chan->a && actor != chan->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s;
  if (const Status s = check_live(actor == chan->a ? chan->b : chan->a);
      !s.ok())
    return s;
  if (data.size() > chan->spec.max_message_bytes)
    return Errc::invalid_argument;

  note_channel_touch(channel);
  const bool profiled = profiling_active() && profiler_->should_sample();
  const Cycles cost = message_cost(data.size()) +
                      (profiled ? machine_.costs().profile_stamp : Cycles{0});
  charge_crossing(cost);
  const bool from_a = (actor == chan->a);
  if (profiled) {
    // Attribute the enqueue to the destination: that is whose inbound load
    // the flamegraph should show.
    const DomainId peer = from_a ? chan->b : chan->a;
    profiler_->sample(this, peer, find_domain(peer)->spec.name,
                      health::ProfilePhase::send, cost, machine_.now());
  }
  Message msg;
  msg.badge = from_a ? chan->badge_a : chan->badge_b;
  msg.data = std::move(data);
  (from_a ? chan->to_b : chan->to_a).push_back(std::move(msg));
  return Status::success();
}

Result<Message> IsolationSubstrate::receive(DomainId actor, ChannelId channel) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (actor != chan->a && actor != chan->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  // A dead peer can never send again, and its queued messages died with it:
  // fail fast instead of reporting would_block forever.
  if (const Status s = check_live(actor == chan->a ? chan->b : chan->a);
      !s.ok())
    return s.error();
  auto& queue = (actor == chan->a) ? chan->to_a : chan->to_b;
  if (queue.empty()) return Errc::would_block;
  Message msg = std::move(queue.front());
  queue.pop_front();  // O(1) on the deque; erase() on a vector was O(n)
  note_channel_touch(channel);
  const bool profiled = profiling_active() && profiler_->should_sample();
  const Cycles cost = message_cost(msg.data.size()) +
                      (profiled ? machine_.costs().profile_stamp : Cycles{0});
  charge_crossing(cost);
  if (profiled)
    profiler_->sample(this, actor, find_domain(actor)->spec.name,
                      health::ProfilePhase::receive, cost, machine_.now());
  return msg;
}

Result<Bytes> IsolationSubstrate::call(DomainId actor, ChannelId channel,
                                       BytesView data) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (actor != chan->a && actor != chan->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  if (data.size() > chan->spec.max_message_bytes)
    return Errc::invalid_argument;
  const DomainId callee = (actor == chan->a) ? chan->b : chan->a;
  if (const Status s = check_live(callee); !s.ok()) return s.error();
  if (fault_fires(callee, "call")) return Errc::domain_dead;
  DomainRecord* callee_record = find_domain(callee);
  if (!callee_record->handler) return Errc::would_block;
  if (const Status s = pre_call(actor, callee); !s.ok()) return s.error();

  const trace::TraceContext& ctx = trace::current_context();
  const bool traced = tracing_active() && ctx.sampled();
  const Cycles trace_cost = traced ? trace_crossing_cost() : Cycles{0};

  // One sampling decision covers both directions of this crossing, so a
  // sampled call records exactly one request/reply pair.
  const bool profiled = profiling_active() && profiler_->should_sample();
  const Cycles profile_cost =
      profiled ? machine_.costs().profile_stamp : Cycles{0};
  // The handler may destroy the callee; keep the label for the reply sample.
  const std::string profile_label =
      profiled ? callee_record->spec.name : std::string();

  // Request transfer: a traced crossing additionally carries the 16-byte
  // context. The reply carries nothing extra (the caller correlates by
  // span id), so only the request direction pays trace_cost (and a sampled
  // one the profiler's ring store).
  note_channel_touch(channel);
  const Cycles request_cost = message_cost(data.size()) + trace_cost +
                              profile_cost;
  charge_crossing(request_cost);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::request, request_cost,
                      machine_.now());
  Invocation invocation;
  invocation.channel = channel;
  invocation.badge = (actor == chan->a) ? chan->badge_a : chan->badge_b;
  invocation.data = data;
  Result<Bytes> reply = Errc::would_block;  // placeholder, always overwritten
  if (traced) {
    const std::uint32_t span = tracer_->next_span();
    stamp_span(callee, ctx, span, trace::SpanPhase::dispatch, data,
               data.size());
    invocation.trace = {ctx.trace_id, span, ctx.flags};
    // The handler runs under the dispatch span, so crossings it makes in
    // turn (imap -> tls) chain under this one automatically.
    trace::TraceScope scope(invocation.trace);
    reply = callee_record->handler(invocation);
    stamp_span(callee, ctx, span, trace::SpanPhase::complete,
               reply.ok() ? BytesView(reply.value()) : BytesView{},
               reply.ok() ? reply.value().size() : 0);
  } else {
    reply = callee_record->handler(invocation);
  }
  const Cycles reply_cost =
      message_cost(reply.ok() ? reply.value().size() : 0);
  charge_crossing(reply_cost);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::reply, reply_cost,
                      machine_.now());
  return reply;
}

Result<BatchReply> IsolationSubstrate::call_batch(
    DomainId actor, ChannelId channel, const std::vector<Bytes>& requests) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (actor != chan->a && actor != chan->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  for (const Bytes& request : requests)
    if (request.size() > chan->spec.max_message_bytes)
      return Errc::invalid_argument;
  const DomainId callee = (actor == chan->a) ? chan->b : chan->a;
  if (const Status s = check_live(callee); !s.ok()) return s.error();
  if (fault_fires(callee, "call_batch")) return Errc::domain_dead;
  DomainRecord* callee_record = find_domain(callee);
  if (!callee_record->handler) return Errc::would_block;
  // One serialization gate for the whole batch: a batch is a single
  // session with the callee (the TPM's late-launch switch happens once).
  if (const Status s = pre_call(actor, callee); !s.ok()) return s.error();

  BatchReply out;
  if (requests.empty()) return out;

  // One TraceContext rides the whole batch (the flush direction is a single
  // crossing); each delivered request still gets its own dispatch/complete
  // span, which is precisely how batching amortization becomes visible per
  // request.
  const trace::TraceContext& ctx = trace::current_context();
  const bool traced = tracing_active() && ctx.sampled();
  const Cycles trace_cost = traced ? trace_crossing_cost() : Cycles{0};

  // A batch is one crossing, so it makes one sampling decision — which is
  // exactly why profiling (like tracing) amortizes with batching.
  const bool profiled = profiling_active() && profiler_->should_sample();
  const Cycles profile_cost =
      profiled ? machine_.costs().profile_stamp : Cycles{0};
  const std::string profile_label =
      profiled ? callee_record->spec.name : std::string();

  // Request direction: one fixed boundary crossing, then per-byte copy
  // cost for every queued request. message_cost(0) is exactly the fixed
  // part of a substrate's message cost, so the marginal cost of the 2nd..
  // Nth request is copy-only.
  const Cycles fixed = message_cost(0);
  Cycles crossing = fixed + trace_cost + profile_cost;
  for (const Bytes& request : requests)
    crossing += message_cost(request.size()) - fixed;
  note_channel_touch(channel);
  charge_crossing(crossing);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::request, crossing,
                      machine_.now());

  const std::uint64_t badge =
      (actor == chan->a) ? chan->badge_a : chan->badge_b;
  out.replies.reserve(requests.size());
  for (const Bytes& request : requests) {
    Invocation invocation;
    invocation.channel = channel;
    invocation.badge = badge;
    invocation.data = request;
    if (traced) {
      const std::uint32_t span = tracer_->next_span();
      stamp_span(callee, ctx, span, trace::SpanPhase::dispatch, request,
                 request.size());
      invocation.trace = {ctx.trace_id, span, ctx.flags};
      trace::TraceScope scope(invocation.trace);
      out.replies.push_back(callee_record->handler(invocation));
      const Result<Bytes>& reply = out.replies.back();
      stamp_span(callee, ctx, span, trace::SpanPhase::complete,
                 reply.ok() ? BytesView(reply.value()) : BytesView{},
                 reply.ok() ? reply.value().size() : 0);
    } else {
      out.replies.push_back(callee_record->handler(invocation));
    }
  }

  // Reply direction: same amortization; no trace charge (the context
  // travels caller -> callee only).
  Cycles reply_crossing = fixed;
  for (const Result<Bytes>& reply : out.replies)
    reply_crossing += message_cost(reply.ok() ? reply->size() : 0) - fixed;
  charge_crossing(reply_crossing);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::reply, reply_crossing,
                      machine_.now());
  out.crossing_cycles = crossing + reply_crossing;
  return out;
}

Result<Bytes> IsolationSubstrate::call_sg(
    DomainId actor, ChannelId channel, BytesView header,
    std::span<const RegionDescriptor> segments) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (actor != chan->a && actor != chan->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  const std::size_t wire =
      header.size() + kDescriptorWireBytes * segments.size();
  if (wire > chan->spec.max_message_bytes) return Errc::invalid_argument;
  const DomainId callee = (actor == chan->a) ? chan->b : chan->a;
  if (const Status s = check_live(callee); !s.ok()) return s.error();
  // Every descriptor must pass the reference monitor *before* delivery:
  // endpoints, mapping, bounds, and epoch. Crucially the region's endpoints
  // must be exactly {actor, callee} — a descriptor naming a region the
  // caller shares with some third domain is a confused-deputy attempt and
  // is refused, not forwarded.
  for (const RegionDescriptor& desc : segments) {
    if (const Status s = check_descriptor(actor, desc); !s.ok())
      return s.error();
    const RegionRecord* region = find_region(desc.region);
    if (!(region->a == actor && region->b == callee) &&
        !(region->a == callee && region->b == actor))
      return Errc::access_denied;
  }
  if (fault_fires(callee, "call_sg")) return Errc::domain_dead;
  DomainRecord* callee_record = find_domain(callee);
  if (!callee_record->handler) return Errc::would_block;
  if (const Status s = pre_call(actor, callee); !s.ok()) return s.error();

  const trace::TraceContext& ctx = trace::current_context();
  const bool traced = tracing_active() && ctx.sampled();
  const Cycles trace_cost = traced ? trace_crossing_cost() : Cycles{0};

  const bool profiled = profiling_active() && profiler_->should_sample();
  const Cycles profile_cost =
      profiled ? machine_.costs().profile_stamp : Cycles{0};
  const std::string profile_label =
      profiled ? callee_record->spec.name : std::string();

  // The crossing carries the header plus 16 bytes per descriptor — never
  // the payload. This is the whole economics of the plane.
  note_channel_touch(channel);
  const Cycles request_cost = message_cost(wire) + trace_cost + profile_cost;
  charge_crossing(request_cost);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::request, request_cost,
                      machine_.now());
  Invocation invocation;
  invocation.channel = channel;
  invocation.badge = (actor == chan->a) ? chan->badge_a : chan->badge_b;
  invocation.data = header;
  invocation.segments = segments;
  Result<Bytes> reply = Errc::would_block;  // placeholder, always overwritten
  if (traced) {
    const std::uint32_t span = tracer_->next_span();
    std::uint64_t bulk = header.size();
    for (const RegionDescriptor& desc : segments) bulk += desc.length;
    stamp_span(callee, ctx, span, trace::SpanPhase::dispatch, header, bulk);
    invocation.trace = {ctx.trace_id, span, ctx.flags};
    trace::TraceScope scope(invocation.trace);
    reply = callee_record->handler(invocation);
    stamp_span(callee, ctx, span, trace::SpanPhase::complete,
               reply.ok() ? BytesView(reply.value()) : BytesView{},
               reply.ok() ? reply.value().size() : 0);
  } else {
    reply = callee_record->handler(invocation);
  }
  const Cycles reply_cost =
      message_cost(reply.ok() ? reply.value().size() : 0);
  charge_crossing(reply_cost);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::reply, reply_cost,
                      machine_.now());
  return reply;
}

Result<BatchReply> IsolationSubstrate::call_batch_sg(
    DomainId actor, ChannelId channel, const std::vector<SgRequest>& requests) {
  ChannelRecord* chan = find_channel(channel);
  if (!chan) return Errc::no_such_channel;
  if (actor != chan->a && actor != chan->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  for (const SgRequest& request : requests)
    if (request.header.size() +
            kDescriptorWireBytes * request.segments.size() >
        chan->spec.max_message_bytes)
      return Errc::invalid_argument;
  const DomainId callee = (actor == chan->a) ? chan->b : chan->a;
  if (const Status s = check_live(callee); !s.ok()) return s.error();
  if (fault_fires(callee, "call_batch_sg")) return Errc::domain_dead;
  DomainRecord* callee_record = find_domain(callee);
  if (!callee_record->handler) return Errc::would_block;
  if (const Status s = pre_call(actor, callee); !s.ok()) return s.error();

  BatchReply out;
  if (requests.empty()) return out;
  out.replies.reserve(requests.size());

  // Per-request descriptor validation happens up front; a bad descriptor
  // fails *its* request (the error travels in replies[i]) without sinking
  // the batch, and a refused request is not charged a crossing share.
  std::vector<Errc> veto(requests.size(), Errc::ok);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (const RegionDescriptor& desc : requests[i].segments) {
      Status s = check_descriptor(actor, desc);
      if (s.ok()) {
        const RegionRecord* region = find_region(desc.region);
        if (!(region->a == actor && region->b == callee) &&
            !(region->a == callee && region->b == actor))
          s = Errc::access_denied;
      }
      if (!s.ok()) {
        veto[i] = s.error();
        break;
      }
    }
  }

  const trace::TraceContext& ctx = trace::current_context();
  const bool traced = tracing_active() && ctx.sampled();
  const Cycles trace_cost = traced ? trace_crossing_cost() : Cycles{0};

  const bool profiled = profiling_active() && profiler_->should_sample();
  const Cycles profile_cost =
      profiled ? machine_.costs().profile_stamp : Cycles{0};
  const std::string profile_label =
      profiled ? callee_record->spec.name : std::string();

  // One fixed crossing per direction for the whole batch; each request's
  // marginal wire cost is its header + descriptors, O(1) in payload bytes.
  const Cycles fixed = message_cost(0);
  Cycles crossing = fixed + trace_cost + profile_cost;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (veto[i] != Errc::ok) continue;
    crossing += message_cost(requests[i].header.size() +
                             kDescriptorWireBytes *
                                 requests[i].segments.size()) -
                fixed;
  }
  note_channel_touch(channel);
  charge_crossing(crossing);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::request, crossing,
                      machine_.now());

  const std::uint64_t badge =
      (actor == chan->a) ? chan->badge_a : chan->badge_b;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (veto[i] != Errc::ok) {
      out.replies.push_back(veto[i]);
      continue;
    }
    Invocation invocation;
    invocation.channel = channel;
    invocation.badge = badge;
    invocation.data = requests[i].header;
    invocation.segments = requests[i].segments;
    if (traced) {
      const std::uint32_t span = tracer_->next_span();
      std::uint64_t bulk = requests[i].header.size();
      for (const RegionDescriptor& desc : requests[i].segments)
        bulk += desc.length;
      stamp_span(callee, ctx, span, trace::SpanPhase::dispatch,
                 requests[i].header, bulk);
      invocation.trace = {ctx.trace_id, span, ctx.flags};
      trace::TraceScope scope(invocation.trace);
      out.replies.push_back(callee_record->handler(invocation));
      const Result<Bytes>& reply = out.replies.back();
      stamp_span(callee, ctx, span, trace::SpanPhase::complete,
                 reply.ok() ? BytesView(reply.value()) : BytesView{},
                 reply.ok() ? reply.value().size() : 0);
    } else {
      out.replies.push_back(callee_record->handler(invocation));
    }
  }

  Cycles reply_crossing = fixed;
  for (const Result<Bytes>& reply : out.replies)
    reply_crossing += message_cost(reply.ok() ? reply->size() : 0) - fixed;
  charge_crossing(reply_crossing);
  if (profiled)
    profiler_->sample(this, callee, profile_label,
                      health::ProfilePhase::reply, reply_crossing,
                      machine_.now());
  out.crossing_cycles = crossing + reply_crossing;
  return out;
}

// --- Grant regions ----------------------------------------------------------

namespace {
constexpr std::size_t kRegionPageBytes = 4096;

std::size_t region_pages(std::size_t size) {
  return (size + kRegionPageBytes - 1) / kRegionPageBytes;
}
}  // namespace

Result<RegionId> IsolationSubstrate::create_region(DomainId a, DomainId b,
                                                   std::size_t size,
                                                   RegionPerms perms) {
  if (!supports_regions()) return Errc::no_region_support;
  if (const Status s = check_live(a); !s.ok()) return s.error();
  if (const Status s = check_live(b); !s.ok()) return s.error();
  if (a == b || size == 0) return Errc::invalid_argument;
  const RegionId id = next_region_++;
  RegionRecord record;
  record.a = a;
  record.b = b;
  record.perms = perms;
  record.backing.resize(size, 0);
  if (const Status s = attach_region(id, record); !s.ok()) return s.error();
  regions_.emplace(id, std::move(record));
  return id;
}

Status IsolationSubstrate::map_region(DomainId actor, RegionId region) {
  RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  // POLA: only the two granted endpoints may ever map. This is the check
  // the conformance suite drives with a third, undeclared domain.
  if (actor != record->a && actor != record->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s;
  if (record->revoked) return Errc::stale_epoch;
  bool& mapped = (actor == record->a) ? record->mapped_a : record->mapped_b;
  if (mapped) return Status::success();  // idempotent; no double charge
  machine_.advance(region_map_cost(region_pages(record->backing.size())));
  mapped = true;
  return Status::success();
}

Status IsolationSubstrate::unmap_region(DomainId actor, RegionId region) {
  RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (actor != record->a && actor != record->b) return Errc::access_denied;
  bool& mapped = (actor == record->a) ? record->mapped_a : record->mapped_b;
  if (!mapped) return Errc::invalid_argument;
  machine_.advance(machine_.costs().page_table_update *
                   region_pages(record->backing.size()));
  mapped = false;
  return Status::success();
}

Status IsolationSubstrate::revoke_region(RegionId region) {
  RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (record->revoked) return Errc::stale_epoch;
  record->mapped_a = false;
  record->mapped_b = false;
  ++record->epoch;
  record->revoked = true;
  std::fill(record->backing.begin(), record->backing.end(), std::uint8_t{0});
  release_region(region, *record);
  machine_.advance(machine_.costs().page_table_update *
                   region_pages(record->backing.size()));
  return Status::success();
}

Status IsolationSubstrate::rebind_region(RegionId region, DomainId from,
                                         DomainId to) {
  RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (record->revoked) return Errc::stale_epoch;
  if (record->a != from && record->b != from) return Errc::access_denied;
  if (const Status s = check_live(to); !s.ok()) return s;
  const DomainId other = (record->a == from) ? record->b : record->a;
  if (to == other) return Errc::invalid_argument;
  if (record->a == from)
    record->a = to;
  else
    record->b = to;
  // Fresh life: both sides must re-map, every old descriptor is fenced,
  // and the reincarnation must not inherit the predecessor's bytes.
  record->mapped_a = false;
  record->mapped_b = false;
  ++record->epoch;
  std::fill(record->backing.begin(), record->backing.end(), std::uint8_t{0});
  return Status::success();
}

Result<std::uint64_t> IsolationSubstrate::region_epoch(RegionId region) const {
  const RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  return record->epoch;
}

Result<std::size_t> IsolationSubstrate::region_size(RegionId region) const {
  const RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (record->revoked) return Errc::stale_epoch;
  return record->backing.size();
}

std::vector<RegionId> IsolationSubstrate::regions() const {
  std::vector<RegionId> out;
  out.reserve(regions_.size());
  for (const auto& [id, record] : regions_)
    if (!record.revoked) out.push_back(id);
  return out;
}

Result<RegionDescriptor> IsolationSubstrate::make_descriptor(
    DomainId actor, RegionId region, std::uint64_t offset,
    std::uint64_t len) const {
  const RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (actor != record->a && actor != record->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  if (record->revoked) return Errc::stale_epoch;
  const bool mapped = (actor == record->a) ? record->mapped_a
                                           : record->mapped_b;
  if (!mapped) return Errc::access_denied;
  // Overflow-safe bounds check: `offset + len` would wrap for offsets near
  // 2^64 and let a forged range pass, so compare against the remainder.
  if (len == 0 || len > record->backing.size() ||
      offset > record->backing.size() - len)
    return Errc::invalid_argument;
  RegionDescriptor desc;
  desc.region = region;
  desc.offset = offset;
  desc.length = len;
  desc.epoch = record->epoch;
  return desc;
}

Status IsolationSubstrate::check_descriptor(
    DomainId actor, const RegionDescriptor& desc) const {
  const RegionRecord* record = find_region(desc.region);
  if (!record) return Errc::invalid_argument;
  if (actor != record->a && actor != record->b) return Errc::access_denied;
  // A dead endpoint is reported as such before the epoch check: "your peer
  // crashed" is more diagnosable than "your descriptor is stale".
  if (const Status s = check_live(record->a); !s.ok()) return s;
  if (const Status s = check_live(record->b); !s.ok()) return s;
  if (record->revoked || desc.epoch != record->epoch)
    return Errc::stale_epoch;
  const bool mapped = (actor == record->a) ? record->mapped_a
                                           : record->mapped_b;
  if (!mapped) return Errc::access_denied;
  if (desc.length == 0 || desc.length > record->backing.size() ||
      desc.offset > record->backing.size() - desc.length)
    return Errc::invalid_argument;
  return Status::success();
}

Status IsolationSubstrate::region_write(DomainId actor, RegionId region,
                                        std::uint64_t offset, BytesView data) {
  RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (actor != record->a && actor != record->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s;
  if (record->revoked) return Errc::stale_epoch;
  const bool mapped = (actor == record->a) ? record->mapped_a
                                           : record->mapped_b;
  if (!mapped) return Errc::access_denied;
  if (record->perms == RegionPerms::read_only && actor != record->a)
    return Errc::access_denied;
  if (data.size() > record->backing.size() ||
      offset > record->backing.size() - data.size())
    return Errc::invalid_argument;
  // The producer's single copy — no crossing. What one byte costs depends
  // on where the backing lives relative to the actor (region_copy_cost);
  // every other stage of the zero-copy path is O(1).
  note_region_touch(region, offset);
  machine_.advance(region_copy_cost(*record, actor, data.size()));
  std::copy(data.begin(), data.end(), record->backing.begin() + offset);
  return Status::success();
}

Result<Bytes> IsolationSubstrate::region_read(DomainId actor, RegionId region,
                                              std::uint64_t offset,
                                              std::size_t len) {
  RegionRecord* record = find_region(region);
  if (!record) return Errc::invalid_argument;
  if (actor != record->a && actor != record->b) return Errc::access_denied;
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  if (record->revoked) return Errc::stale_epoch;
  const bool mapped = (actor == record->a) ? record->mapped_a
                                           : record->mapped_b;
  if (!mapped) return Errc::access_denied;
  if (len > record->backing.size() || offset > record->backing.size() - len)
    return Errc::invalid_argument;
  note_region_touch(region, offset);
  machine_.advance(region_copy_cost(*record, actor, len));
  return Bytes(record->backing.begin() + offset,
               record->backing.begin() + offset + len);
}

Result<BytesView> IsolationSubstrate::region_view(
    DomainId actor, const RegionDescriptor& desc) {
  if (const Status s = check_descriptor(actor, desc); !s.ok())
    return s.error();
  const RegionRecord* record = find_region(desc.region);
  // In-place access: constant cost per descriptor, zero bytes moved.
  note_region_touch(desc.region, desc.offset);
  machine_.advance(region_access_cost(*record, actor));
  return BytesView(record->backing.data() + desc.offset, desc.length);
}

Cycles IsolationSubstrate::region_map_cost(std::size_t pages) const {
  const hw::CostModel& c = machine_.costs();
  return c.syscall + c.page_table_update * pages;
}

Cycles IsolationSubstrate::region_access_cost() const {
  return machine_.costs().region_access;
}

Cycles IsolationSubstrate::region_copy_cost(const RegionRecord& record,
                                            DomainId actor,
                                            std::size_t len) const {
  // Flat model: shared memory is equally close to both endpoints.
  (void)record;
  (void)actor;
  return machine_.costs().memcpy_per_16_bytes * Cycles((len + 15) / 16);
}

Cycles IsolationSubstrate::region_access_cost(const RegionRecord& record,
                                              DomainId actor) const {
  (void)record;
  (void)actor;
  return region_access_cost();
}

Status IsolationSubstrate::attach_region(RegionId id, RegionRecord& record) {
  (void)id;
  (void)record;
  return Status::success();
}

void IsolationSubstrate::release_region(RegionId id, RegionRecord& record) {
  (void)id;
  (void)record;
}

Status IsolationSubstrate::pre_call(DomainId actor, DomainId callee) {
  (void)actor;
  (void)callee;
  return Status::success();
}

Result<crypto::Digest> IsolationSubstrate::measurement(DomainId domain) const {
  if (const Status s = check_live(domain); !s.ok()) return s.error();
  return find_domain(domain)->measurement;
}

Result<Quote> IsolationSubstrate::attest(DomainId actor, BytesView user_data) {
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  const DomainRecord* record = find_domain(actor);
  if (!has_feature(info().features, Feature::attestation))
    return Errc::not_supported;
  machine_.advance(attest_cost() + machine_.costs().sw_rsa_sign);
  return make_quote(info().name, record->measurement, user_data,
                    machine_.fuses().endorsement_key(),
                    machine_.fuses().endorsement_cert());
}

crypto::Aead IsolationSubstrate::sealing_aead(
    const crypto::Digest& measurement) const {
  // Sealing key = HKDF(device fuse key, code measurement). Same code on the
  // same device derives the same key; anything else cannot.
  Bytes ikm(machine_.fuses().device_key().begin(),
            machine_.fuses().device_key().end());
  const Bytes key_material =
      crypto::hkdf(crypto::digest_bytes(measurement), ikm,
                   to_bytes("lateral.seal.v1"), 32);
  return crypto::Aead(key_material);
}

Result<Bytes> IsolationSubstrate::seal(DomainId actor, BytesView plaintext) {
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  const DomainRecord* record = find_domain(actor);
  if (!has_feature(info().features, Feature::sealed_storage))
    return Errc::not_supported;
  machine_.charge(0, machine_.costs().sw_aes_per_16_bytes, plaintext.size());

  const crypto::Aead aead = sealing_aead(record->measurement);
  const crypto::SealedBox box = aead.seal(seal_nonce_++, {}, plaintext);
  Bytes out;
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(box.nonce >> (8 * i)));
  out.insert(out.end(), box.tag.begin(), box.tag.end());
  out.insert(out.end(), box.ciphertext.begin(), box.ciphertext.end());
  return out;
}

Result<Bytes> IsolationSubstrate::unseal(DomainId actor, BytesView sealed) {
  if (const Status s = check_live(actor); !s.ok()) return s.error();
  const DomainRecord* record = find_domain(actor);
  if (!has_feature(info().features, Feature::sealed_storage))
    return Errc::not_supported;
  if (sealed.size() < 24) return Errc::invalid_argument;
  machine_.charge(0, machine_.costs().sw_aes_per_16_bytes, sealed.size());

  crypto::SealedBox box;
  for (int i = 0; i < 8; ++i) box.nonce = (box.nonce << 8) | sealed[i];
  std::copy(sealed.begin() + 8, sealed.begin() + 24, box.tag.begin());
  box.ciphertext.assign(sealed.begin() + 24, sealed.end());

  const crypto::Aead aead = sealing_aead(record->measurement);
  auto plain = aead.open(box, {});
  if (!plain) return Errc::verification_failed;
  return std::move(*plain);
}

Status IsolationSubstrate::mark_compromised(DomainId domain) {
  if (const Status s = check_live(domain); !s.ok()) return s;
  find_domain(domain)->compromised = true;
  return Status::success();
}

bool IsolationSubstrate::is_compromised(DomainId domain) const {
  const DomainRecord* record = find_domain(domain);
  return record && record->compromised;
}

std::string features_to_string(Features set) {
  struct Named {
    Feature f;
    const char* name;
  };
  static constexpr Named kNames[] = {
      {Feature::spatial_isolation, "spatial"},
      {Feature::temporal_isolation, "temporal"},
      {Feature::covert_channel_mitigation, "covert-mitig"},
      {Feature::concurrent_domains, "concurrent"},
      {Feature::legacy_hosting, "legacy-os"},
      {Feature::memory_encryption, "mem-enc"},
      {Feature::sealed_storage, "seal"},
      {Feature::attestation, "attest"},
      {Feature::late_launch, "late-launch"},
      {Feature::io_isolation, "iommu"},
  };
  std::string out;
  for (const auto& [f, name] : kNames) {
    if (!has_feature(set, f)) continue;
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? "none" : out;
}

}  // namespace lateral::substrate
