#include "substrate/registry.h"

namespace lateral::substrate {

Status SubstrateRegistry::register_factory(const std::string& name,
                                           Factory factory) {
  if (name.empty() || !factory) return Errc::invalid_argument;
  const auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Result<std::unique_ptr<IsolationSubstrate>> SubstrateRegistry::create(
    const std::string& name, hw::Machine& machine,
    const SubstrateConfig& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return Errc::invalid_argument;
  return it->second(machine, config);
}

std::vector<std::string> SubstrateRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

bool SubstrateRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

}  // namespace lateral::substrate
