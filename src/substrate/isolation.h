// Vocabulary types of the unified isolation interface (paper §II-D, §III-A).
//
// The paper's central abstraction: different isolation technologies
// (microkernel, TrustZone, SGX, TPM, SEP) are "instances of a common
// pattern" that differ in which hardware features they provide and which
// attacker models they defend against. These enums make those differences
// explicit and machine-checkable (core::PolicyChecker).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"
#include "trace/trace.h"
#include "util/types.h"

namespace lateral::substrate {

/// Attacker models in increasing strength (paper §II-D "Summary").
enum class AttackerModel : std::uint8_t {
  remote_network,      // exploits reachable over the network only
  local_software,      // controls other (legacy) software on the machine
  physical_bus,        // probes/alters off-chip wires and DRAM
  physical_intrusion,  // additionally manipulates boot code before launch
};

constexpr std::string_view attacker_model_name(AttackerModel m) {
  switch (m) {
    case AttackerModel::remote_network: return "remote_network";
    case AttackerModel::local_software: return "local_software";
    case AttackerModel::physical_bus: return "physical_bus";
    case AttackerModel::physical_intrusion: return "physical_intrusion";
  }
  return "unknown";
}

/// Launch policies implemented by a trust anchor (paper §II-D "Secure
/// Launch"): secure boot *rejects* unsigned code; authenticated boot *logs*
/// measurements for later attestation; late launch does either after the
/// system is already running.
enum class LaunchPolicy : std::uint8_t {
  none,
  secure_boot,
  authenticated_boot,
};

constexpr std::string_view launch_policy_name(LaunchPolicy p) {
  switch (p) {
    case LaunchPolicy::none: return "none";
    case LaunchPolicy::secure_boot: return "secure_boot";
    case LaunchPolicy::authenticated_boot: return "authenticated_boot";
  }
  return "unknown";
}

/// Isolation-substrate feature flags (paper §II-B/§II-D).
enum class Feature : std::uint32_t {
  spatial_isolation = 1u << 0,        // basic access control to memory
  temporal_isolation = 1u << 1,       // starvation prevention / budgets
  covert_channel_mitigation = 1u << 2,// interference-free scheduling
  concurrent_domains = 1u << 3,       // >2 isolated domains at once
  legacy_hosting = 1u << 4,           // can run an entire legacy OS
  memory_encryption = 1u << 5,        // data leaves the die encrypted
  sealed_storage = 1u << 6,           // bind secrets to code identity
  attestation = 1u << 7,              // prove code identity to a remote party
  late_launch = 1u << 8,              // launch trusted code after boot
  io_isolation = 1u << 9,             // IOMMU-filtered device DMA
};

using Features = std::uint32_t;

constexpr Features operator|(Feature a, Feature b) {
  return static_cast<Features>(a) | static_cast<Features>(b);
}
constexpr Features operator|(Features a, Feature b) {
  return a | static_cast<Features>(b);
}
constexpr bool has_feature(Features set, Feature f) {
  return (set & static_cast<Features>(f)) != 0;
}

std::string features_to_string(Features set);

/// How a substrate's crossings compose across cores (paper §II-B: the
/// architecture, not the workload, caps scalability). Pinned per backend by
/// the conformance suite and measured by the FIG13 scaling curve.
enum class ConcurrencyLaw : std::uint8_t {
  /// Crossings on different cores proceed independently (microkernel IPC,
  /// NoC tiles, CHERI in-address-space domain switches).
  parallel,
  /// The enclave transition (EENTER/EEXIT world state) serializes, but the
  /// data-dependent EPC work proceeds per-core (SGX).
  transition_serialized,
  /// Every crossing funnels through one secure-world monitor/secure OS
  /// (TrustZone SMC path; fTPM commands dispatched into the secure world).
  monitor_serialized,
  /// A single-threaded device processes one command at a time end to end
  /// (discrete TPM on its bus, SEP mailbox).
  device_serialized,
};

constexpr std::string_view concurrency_law_name(ConcurrencyLaw law) {
  switch (law) {
    case ConcurrencyLaw::parallel: return "parallel";
    case ConcurrencyLaw::transition_serialized: return "transition_serialized";
    case ConcurrencyLaw::monitor_serialized: return "monitor_serialized";
    case ConcurrencyLaw::device_serialized: return "device_serialized";
  }
  return "unknown";
}

/// Static description of a substrate implementation.
struct SubstrateInfo {
  std::string name;
  Features features = 0;
  /// TCB size estimate in lines of code — the hardware+software a trusted
  /// component must rely on. Values follow the magnitudes the literature
  /// reports (seL4 ~10 kLoC, TrustZone secure OS tens of kLoC, SGX
  /// microcode "thousands", TPM firmware, SEP kernel). Used by TAB1/TAB2.
  std::uint64_t tcb_loc = 0;
  std::vector<AttackerModel> defends_against;

  bool defends(AttackerModel m) const {
    for (const AttackerModel d : defends_against)
      if (d == m) return true;
    return false;
  }
};

/// Domain identity within one substrate instance.
using DomainId = std::uint64_t;
/// Communication channel between two domains.
using ChannelId = std::uint64_t;

constexpr DomainId kInvalidDomain = 0;

enum class DomainKind : std::uint8_t {
  trusted_component,
  legacy,  // assumed-compromised monolithic codebase / entire OS
};

/// Executable image of a domain. The measurement (code identity) is the
/// SHA-256 of the image bytes — the simulation analogue of MRENCLAVE /
/// PCR extension / secure-world image hashing.
struct Image {
  std::string name;
  Bytes code;

  crypto::Digest measurement() const { return crypto::Sha256::hash(code); }
};

struct DomainSpec {
  std::string name;
  DomainKind kind = DomainKind::trusted_component;
  Image image;
  std::size_t memory_pages = 4;
  /// Scheduling share in permille for substrates with temporal isolation.
  std::uint32_t time_share_permille = 100;
  /// Code signature (by the platform owner key) — required by secure_boot.
  Bytes image_signature;
};

struct ChannelSpec {
  std::size_t max_message_bytes = 4096;
};

/// Shared grant region between exactly two domains (the zero-copy data
/// plane). A region is the memory analogue of a channel: created only by
/// the composer from a manifest declaration, bound to two endpoints, and
/// epoch-fenced across crash recovery exactly like channel endpoints.
using RegionId = std::uint64_t;

enum class RegionPerms : std::uint8_t {
  read_only,   // grantee (b) may only read; owner (a) writes
  read_write,  // both endpoints may write
};

constexpr std::string_view region_perms_name(RegionPerms p) {
  switch (p) {
    case RegionPerms::read_only: return "ro";
    case RegionPerms::read_write: return "rw";
  }
  return "unknown";
}

/// Scatter-gather descriptor: names bytes *inside* an established region
/// instead of carrying them. Crossing the boundary costs O(descriptor),
/// never O(payload). The epoch is stamped at mint time so descriptors
/// outlive neither a revoke_region nor a crash-recovery rebind — a stale
/// descriptor fails closed with Errc::stale_epoch.
struct RegionDescriptor {
  RegionId region = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t epoch = 0;
};

/// Wire footprint of one descriptor on a crossing (region+offset+length
/// packed; the epoch travels in the substrate's metadata, not the payload).
constexpr std::size_t kDescriptorWireBytes = 16;

/// One request in a scatter-gather batch: a small inline header (opcode,
/// framing) plus descriptors naming the bulk payload in place.
struct SgRequest {
  Bytes header;
  std::vector<RegionDescriptor> segments;
};

/// A queued message as seen by the receiver. `badge` is minted by the
/// substrate at channel-creation time and identifies the sending endpoint
/// unforgeably — the capability-design answer to the confused deputy
/// (paper §III-D "Confused Deputy").
struct Message {
  std::uint64_t badge = 0;
  Bytes data;
};

/// A synchronous invocation delivered to a domain's handler. `data` is the
/// inline payload (or the scatter-gather header); `segments` is non-empty
/// only on the zero-copy path and names bulk bytes the handler may read in
/// place via IsolationSubstrate::region_view.
struct Invocation {
  ChannelId channel = 0;
  std::uint64_t badge = 0;
  BytesView data;
  std::span<const RegionDescriptor> segments;
  /// Trace identity the request crossed the boundary with (zero context on
  /// untraced crossings). parent_span is the dispatch span the substrate
  /// minted for this delivery, so crossings nested inside the handler chain
  /// under it automatically (the substrate installs it as a TraceScope).
  trace::TraceContext trace;
};

}  // namespace lateral::substrate
