#include "substrate/quote.h"

namespace lateral::substrate {
namespace {

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_blob(Bytes& out, BytesView blob) {
  append_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

Result<Bytes> read_blob(BytesView wire, std::size_t& offset) {
  if (offset + 4 > wire.size()) return Errc::invalid_argument;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | wire[offset++];
  if (offset + len > wire.size()) return Errc::invalid_argument;
  Bytes out(wire.begin() + static_cast<long>(offset),
            wire.begin() + static_cast<long>(offset + len));
  offset += len;
  return out;
}

}  // namespace

Bytes Quote::signed_body() const {
  Bytes body;
  append_blob(body, to_bytes(substrate_name));
  append_blob(body, crypto::digest_view(measurement));
  append_blob(body, user_data);
  return body;
}

Bytes Quote::serialize() const {
  Bytes out;
  append_blob(out, to_bytes(substrate_name));
  append_blob(out, crypto::digest_view(measurement));
  append_blob(out, user_data);
  append_blob(out, ek_pub.serialize());
  append_blob(out, ek_cert);
  append_blob(out, signature);
  return out;
}

Result<Quote> Quote::deserialize(BytesView wire) {
  std::size_t offset = 0;
  Quote q;
  auto name = read_blob(wire, offset);
  if (!name) return name.error();
  q.substrate_name = to_string(*name);

  auto meas = read_blob(wire, offset);
  if (!meas) return meas.error();
  if (meas->size() != q.measurement.size()) return Errc::invalid_argument;
  std::copy(meas->begin(), meas->end(), q.measurement.begin());

  auto user = read_blob(wire, offset);
  if (!user) return user.error();
  q.user_data = std::move(*user);

  auto ek_wire = read_blob(wire, offset);
  if (!ek_wire) return ek_wire.error();
  auto ek = crypto::RsaPublicKey::deserialize(*ek_wire);
  if (!ek) return ek.error();
  q.ek_pub = std::move(*ek);

  auto cert = read_blob(wire, offset);
  if (!cert) return cert.error();
  q.ek_cert = std::move(*cert);

  auto sig = read_blob(wire, offset);
  if (!sig) return sig.error();
  q.signature = std::move(*sig);

  if (offset != wire.size()) return Errc::invalid_argument;
  return q;
}

Status Quote::verify(const crypto::RsaPublicKey& vendor_root) const {
  if (const Status s =
          crypto::rsa_verify(vendor_root, ek_pub.serialize(), ek_cert);
      !s.ok())
    return Errc::verification_failed;
  if (const Status s = crypto::rsa_verify(ek_pub, signed_body(), signature);
      !s.ok())
    return Errc::verification_failed;
  return Status::success();
}

Quote make_quote(const std::string& substrate_name,
                 const crypto::Digest& measurement, BytesView user_data,
                 const crypto::RsaKeyPair& ek, BytesView ek_cert) {
  Quote q;
  q.substrate_name = substrate_name;
  q.measurement = measurement;
  q.user_data.assign(user_data.begin(), user_data.end());
  q.ek_pub = ek.pub;
  q.ek_cert.assign(ek_cert.begin(), ek_cert.end());
  q.signature = crypto::rsa_sign(ek, q.signed_body());
  return q;
}

}  // namespace lateral::substrate
