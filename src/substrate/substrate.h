// IsolationSubstrate — the unified interface to isolation technologies.
//
// This is the paper's §III-A proposal made concrete: "This interface should
// do for isolation mechanisms what POSIX did for the UNIX system call
// interface: allow application code to be independent of the underlying
// implementation." Application code (core::SystemComposer, the examples)
// programs against this interface; the five backends (microkernel,
// trustzone, sgx, tpm, sep) implement it with their technology's
// capabilities, costs and restrictions.
//
// Every operation names the *acting* domain. The substrate is the reference
// monitor: it verifies that the actor holds the right to perform the
// operation, which is exactly what keeps a compromised component confined.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes.h"
#include "crypto/rsa.h"
#include "health/profiler.h"
#include "hw/machine.h"
#include "substrate/isolation.h"
#include "substrate/quote.h"
#include "trace/trace.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::substrate {

/// Result of a batched synchronous invocation (call_batch). `replies[i]`
/// corresponds to `requests[i]`; `crossing_cycles` is what the substrate
/// charged for moving the whole batch across the boundary (both
/// directions), so callers can account amortization honestly.
struct BatchReply {
  std::vector<Result<Bytes>> replies;
  Cycles crossing_cycles = 0;
};

/// Configuration common to all substrate instances.
struct SubstrateConfig {
  LaunchPolicy launch_policy = LaunchPolicy::none;
  /// Platform-owner code-signing key; required when launch_policy is
  /// secure_boot (images must carry a signature by this key).
  std::optional<crypto::RsaPublicKey> owner_key;
};

class IsolationSubstrate {
 public:
  /// The behaviour of a domain when synchronously invoked. Handlers model
  /// the component's code; returning an Errc models a refused request.
  using Handler = std::function<Result<Bytes>(const Invocation&)>;

  virtual ~IsolationSubstrate() = default;

  IsolationSubstrate(const IsolationSubstrate&) = delete;
  IsolationSubstrate& operator=(const IsolationSubstrate&) = delete;

  virtual const SubstrateInfo& info() const = 0;
  hw::Machine& machine() { return machine_; }
  const hw::Machine& machine() const { return machine_; }
  LaunchPolicy launch_policy() const { return config_.launch_policy; }

  // --- Domain lifecycle -------------------------------------------------
  virtual Result<DomainId> create_domain(const DomainSpec& spec);
  virtual Status destroy_domain(DomainId domain);
  /// Abrupt death, distinct from destroy_domain: the domain's memory and
  /// handler are gone immediately (a crash reclaims nothing gracefully),
  /// but the record stays behind as a corpse so that every later operation
  /// naming the domain fails with Errc::domain_dead — a diagnosable crash,
  /// not a recycled id. destroy_domain() on the corpse reaps it (and any
  /// channels still referencing it) once a supervisor has rewired around it.
  Status kill_domain(DomainId domain);
  /// True only for a known corpse (killed, not yet reaped).
  bool is_dead(DomainId domain) const;
  std::vector<DomainId> domains() const;
  Result<DomainSpec> domain_spec(DomainId domain) const;

  // --- Tracing (lateral::trace) -------------------------------------------
  /// Attach a tracer: every crossing on this substrate reads the calling
  /// thread's TraceContext (trace::current_context()) and, when sampled,
  /// stamps span events into the acting domains' flight recorders. The
  /// tracer outlives domains — a corpse's ring stays readable after
  /// kill_domain until the supervisor scrubs it. Pass nullptr to detach.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }
  /// Opt `domain` into span payload capture (manifest `trace` stanza with
  /// `payload`). Off by default: redaction-by-default means spans carry only
  /// sizes, opcodes and cycle stamps unless the component consented.
  Status set_trace_capture(DomainId domain, bool capture);
  bool trace_capture(DomainId domain) const;
  /// Marginal cycle cost a traced crossing is charged: the 16-byte
  /// TraceContext at this substrate's own per-byte rate, plus the recorder
  /// stamp. Charged once per crossing, on the request direction only (the
  /// reply carries no context — correlation is by span id) — batched
  /// requests share it, so tracing amortizes exactly like the crossing.
  Cycles trace_crossing_cost() const;
  /// True when a tracer is attached and enabled (the disabled path must be
  /// a couple of loads — bench_fig12's near-zero column).
  bool tracing_active() const { return tracer_ && tracer_->enabled(); }
  /// Stamp one span event into `domain`'s flight recorder (no-op without an
  /// enabled tracer). Payload capture obeys the domain's trace_capture
  /// consent; `data` supplies the opcode (first 4 bytes) either way. Public
  /// because the layers above the crossing stamp their own lifecycle points
  /// into the same rings: BatchChannel (submit/flush), the supervisor
  /// (detected/relaunch/attested/recovered).
  void stamp_span(DomainId domain, const trace::TraceContext& ctx,
                  std::uint32_t span_id, trace::SpanPhase phase,
                  BytesView data, std::uint64_t size);

  // --- Cycle profiling (lateral::health) ----------------------------------
  /// Attach a sampling cycle-profiler: every crossing makes one sampling
  /// decision (1 in sample_every) and, when sampled, attributes its cycle
  /// charge to the *callee* domain per crossing phase. Like the tracer, the
  /// profiler owns the rings, so a profile survives kill_domain. Pass
  /// nullptr to detach. A sampled crossing is charged
  /// CostModel::profile_stamp, folded into the request-direction crossing
  /// charge like the trace stamp; disabled costs exactly zero cycles
  /// (conformance-pinned, bench_fig16's zero-when-off column).
  void set_profiler(health::CycleProfiler* profiler) { profiler_ = profiler; }
  health::CycleProfiler* profiler() const { return profiler_; }
  bool profiling_active() const { return profiler_ && profiler_->enabled(); }

  // --- Fault injection (experiment hook) ---------------------------------
  /// Consulted at every synchronous delivery (call / call_batch) with the
  /// callee and the operation name. Returning true crashes the callee at
  /// that instant — kill_domain() runs and the invocation fails with
  /// Errc::domain_dead, exactly what a caller of a component that died
  /// mid-request observes. Supervision tests and bench_fig10 script crashes
  /// through this without reaching into substrate internals.
  using FaultHook = std::function<bool(DomainId callee, std::string_view op)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // --- Communication (POLA: only explicitly created channels exist) ------
  virtual Result<ChannelId> create_channel(DomainId a, DomainId b,
                                           const ChannelSpec& spec = {});
  Status set_handler(DomainId domain, Handler handler);
  /// Asynchronous message to the peer endpoint.
  Status send(DomainId actor, ChannelId channel, BytesView data);
  /// Move-in overload: the payload buffer is adopted into the queued
  /// Message instead of being copied (satellite of the zero-copy work —
  /// even the copy path should copy at most once).
  Status send(DomainId actor, ChannelId channel, Bytes&& data);
  /// Dequeue the next message for `actor` on `channel`; would_block if none.
  Result<Message> receive(DomainId actor, ChannelId channel);
  /// Synchronous invocation of the peer's handler (service invocation in the
  /// structural template of Fig. 2).
  Result<Bytes> call(DomainId actor, ChannelId channel, BytesView data);
  /// Batched invocation: deliver every request to the peer's handler while
  /// crossing the isolation boundary once per direction for the whole
  /// batch. The fixed crossing cost (message_cost(0)) is charged once; only
  /// the per-byte copy cost scales with the batch. Per-request failures
  /// come back inside BatchReply::replies; a batch-level refusal (bad
  /// channel, no handler, pre_call veto) fails the whole call.
  virtual Result<BatchReply> call_batch(DomainId actor, ChannelId channel,
                                        const std::vector<Bytes>& requests);
  /// Scatter-gather invocation: `header` crosses inline, `segments` name
  /// payload bytes already resident in a shared grant region. The crossing
  /// is charged for header + kDescriptorWireBytes per segment — O(1) in the
  /// payload size. Descriptors are validated against the region table
  /// (endpoints, bounds, epoch) before delivery; a stale descriptor fails
  /// the request with Errc::stale_epoch, a foreign one with access_denied.
  Result<Bytes> call_sg(DomainId actor, ChannelId channel, BytesView header,
                        std::span<const RegionDescriptor> segments);
  /// Batched scatter-gather: one crossing per direction for the whole
  /// batch, each request O(descriptors) on the wire. Per-request descriptor
  /// failures come back inside BatchReply::replies.
  Result<BatchReply> call_batch_sg(DomainId actor, ChannelId channel,
                                   const std::vector<SgRequest>& requests);
  /// The badge minted for `endpoint`'s end of the channel — what the peer
  /// sees when `endpoint` sends. Composition code uses this to configure
  /// badge-based access-control lists (SessionDemux).
  Result<std::uint64_t> endpoint_badge(ChannelId channel,
                                       DomainId endpoint) const;

  // --- Channel epochs (crash recovery) -----------------------------------
  /// Every channel carries an epoch, starting at 1. A restart bumps it;
  /// endpoint objects minted against an older epoch must fail fast with
  /// Errc::stale_epoch instead of silently driving the reincarnated
  /// channel (core::Endpoint performs that check).
  Result<std::uint64_t> channel_epoch(ChannelId channel) const;
  /// Invalidate every outstanding endpoint of the channel: epoch++, queued
  /// messages of both directions dropped (they belong to the old life).
  Status bump_channel_epoch(ChannelId channel);
  /// Replace endpoint `from` (live or corpse) with live domain `to`: the
  /// relaunched component inherits its predecessor's channel under a fresh
  /// badge and a bumped epoch. This is the substrate half of a supervised
  /// restart — the channel id stays stable so composition-level wiring
  /// survives, while stale holders are fenced off by the epoch.
  Status rebind_channel(ChannelId channel, DomainId from, DomainId to);

  // --- Grant regions (zero-copy data plane) ------------------------------
  /// Whether this substrate can realize shared grant regions at all. The
  /// discrete/firmware TPMs cannot — there is no memory both sides can
  /// address — so they report false and callers fall back to the copy path
  /// (create_region returns Errc::no_region_support).
  virtual bool supports_regions() const { return true; }
  /// Establish a shared region of `size` bytes between domains `a` (owner)
  /// and `b` (grantee). Like channels, regions exist only by explicit
  /// creation (POLA); SystemComposer is the only caller in composed systems,
  /// driven by the manifest `region` stanza. The region starts unmapped:
  /// each endpoint must map_region before any access.
  virtual Result<RegionId> create_region(DomainId a, DomainId b,
                                         std::size_t size,
                                         RegionPerms perms =
                                             RegionPerms::read_write);
  /// Map the region into `actor`'s address space. Reference-monitor check:
  /// any domain that is not one of the region's two endpoints is refused
  /// with Errc::access_denied. Charges the backend's one-time map cost
  /// (page-table writes, SMC, EENTER/EEXIT, DMA window programming, ...).
  Status map_region(DomainId actor, RegionId region);
  /// Drop `actor`'s mapping without tearing the region down.
  Status unmap_region(DomainId actor, RegionId region);
  /// Tear the region down: both mappings are removed and the epoch is
  /// bumped so every outstanding descriptor fails with stale_epoch. The
  /// record stays (like a channel) so the id remains diagnosable.
  Status revoke_region(RegionId region);
  /// Replace endpoint `from` (live or corpse) with live domain `to` —
  /// the region half of a supervised restart. Epoch++, both mappings
  /// dropped, backing bytes cleared (the new life must not inherit the old
  /// life's data).
  Status rebind_region(RegionId region, DomainId from, DomainId to);
  Result<std::uint64_t> region_epoch(RegionId region) const;
  /// Size in bytes of a live region — the single source of truth for pool
  /// sizing, so callers never restate the manifest's `region` byte count.
  Result<std::size_t> region_size(RegionId region) const;
  std::vector<RegionId> regions() const;

  /// Mint a descriptor naming [offset, offset+len) of the region, stamped
  /// with the current epoch. `actor` must be a mapped endpoint.
  Result<RegionDescriptor> make_descriptor(DomainId actor, RegionId region,
                                           std::uint64_t offset,
                                           std::uint64_t len) const;
  /// Produce bytes into the region (the producer's single copy; charged
  /// per byte like any memcpy). Write permission required.
  Status region_write(DomainId actor, RegionId region, std::uint64_t offset,
                      BytesView data);
  /// Copy bytes out of the region (per-byte; for consumers that genuinely
  /// need an owned buffer). Prefer region_view.
  Result<Bytes> region_read(DomainId actor, RegionId region,
                            std::uint64_t offset, std::size_t len);
  /// Access descriptor bytes *in place*: no copy, constant per-access cost
  /// (hw::CostModel::region_access). This is what makes the zero-copy path
  /// O(1) in payload size. The view is invalidated by revoke/rebind — but
  /// those bump the epoch first, so validation fails closed before any
  /// dangling access.
  Result<BytesView> region_view(DomainId actor, const RegionDescriptor& desc);
  /// Validate a descriptor on behalf of `actor` (endpoint? mapped? bounds?
  /// epoch current? peer alive?). Exposed so composition layers can
  /// pre-flight descriptors with the same reference-monitor logic the
  /// delivery path uses.
  Status check_descriptor(DomainId actor, const RegionDescriptor& desc) const;

  // --- Memory -----------------------------------------------------------
  /// Access target memory as `actor`. The reference-monitor check is the
  /// heart of spatial isolation: actor != target is denied on every
  /// substrate (unless the substrate's model permits it, e.g. TrustZone's
  /// secure world reading the normal world).
  virtual Result<Bytes> read_memory(DomainId actor, DomainId target,
                                    std::uint64_t offset, std::size_t len) = 0;
  virtual Status write_memory(DomainId actor, DomainId target,
                              std::uint64_t offset, BytesView data) = 0;

  // --- Code identity, attestation, sealing -------------------------------
  Result<crypto::Digest> measurement(DomainId domain) const;
  /// Quote binding (measurement, user_data) to the device endorsement key.
  virtual Result<Quote> attest(DomainId actor, BytesView user_data);
  /// Encrypt data such that only the same code identity on the same device
  /// can recover it.
  virtual Result<Bytes> seal(DomainId actor, BytesView plaintext);
  virtual Result<Bytes> unseal(DomainId actor, BytesView sealed);

  // --- Authenticated-boot log --------------------------------------------
  /// Measurement log of every domain launched (authenticated_boot policy).
  const std::vector<crypto::Digest>& boot_log() const { return boot_log_; }

  /// Cycle cost of a one-way message of `len` bytes on this substrate
  /// (public so composition layers can charge bridged channels honestly).
  virtual Cycles message_cost(std::size_t len) const = 0;

  // --- Concurrency law (multi-core composition, FIG13) --------------------
  /// How crossings on *different cores* compose: independently, or queued
  /// behind a shared serialization point (enclave transition hardware, the
  /// secure-world monitor, a single-threaded device). Pinned per backend by
  /// the conformance suite; measured by bench_fig13_scaling.
  virtual ConcurrencyLaw concurrency_law() const {
    return ConcurrencyLaw::parallel;
  }
  /// The cycles of a `direction`-cost crossing that must hold the shared
  /// serialization point: none (parallel), the fixed transition
  /// (transition_serialized — per-byte EPC work proceeds per-core), or the
  /// whole direction (monitor/device serialized).
  Cycles serialized_share(Cycles direction) const;
  /// Cross-core crossings that arrived while the serialization point was
  /// held, and the total cycles they spent stalled on it. Always zero on a
  /// single-core machine.
  std::uint64_t serial_stalls() const { return serial_stalls_; }
  Cycles serial_stall_cycles() const { return serial_stall_cycles_; }

  // --- Experiment hooks ---------------------------------------------------
  /// Flag a domain as attacker-controlled. The substrate keeps enforcing
  /// its isolation; the flag drives containment analysis and lets tests
  /// swap in attacker behaviour.
  Status mark_compromised(DomainId domain);
  bool is_compromised(DomainId domain) const;

 protected:
  IsolationSubstrate(hw::Machine& machine, SubstrateConfig config);

  struct DomainRecord {
    DomainSpec spec;
    crypto::Digest measurement{};
    Handler handler;
    bool compromised = false;
    /// Corpse flag: killed, memory released, awaiting reap. Every operation
    /// naming a dead domain returns Errc::domain_dead.
    bool dead = false;
    /// Manifest-granted consent to span payload capture (redaction is the
    /// default; see set_trace_capture).
    bool trace_capture = false;
    /// Backend-specific memory handle (frame base, enclave tag, ...).
    std::uint64_t backend_cookie = 0;
  };

  struct ChannelRecord {
    DomainId a = kInvalidDomain;
    DomainId b = kInvalidDomain;
    std::uint64_t badge_a = 0;  // identifies endpoint a when it sends
    std::uint64_t badge_b = 0;
    /// Bumped on every restart/rebind; stale endpoints fail fast.
    std::uint64_t epoch = 1;
    ChannelSpec spec;
    // std::deque: receive() pops from the front in O(1). (A vector here
    // made every dequeue O(n) — measured as a real hotspot under bursts.)
    std::deque<Message> to_a;  // queue of messages awaiting a
    std::deque<Message> to_b;
  };

  struct RegionRecord {
    DomainId a = kInvalidDomain;  // owner
    DomainId b = kInvalidDomain;  // grantee
    RegionPerms perms = RegionPerms::read_write;
    /// Bumped by revoke_region / rebind_region / kill_domain so that every
    /// descriptor minted against an earlier life fails with stale_epoch.
    std::uint64_t epoch = 1;
    bool mapped_a = false;
    bool mapped_b = false;
    bool revoked = false;
    Bytes backing;  // the shared bytes themselves
    /// Backend-specific handle (grant list index, DTU slot, NS-buffer tag).
    std::uint64_t backend_cookie = 0;
  };

  // Backend hooks -----------------------------------------------------------
  /// Validate substrate-specific restrictions (e.g. TrustZone hosts exactly
  /// one legacy world; the TPM never hosts a legacy OS).
  virtual Status admit_domain(const DomainSpec& spec) const = 0;
  /// Allocate backing memory; set record.backend_cookie. Called after
  /// admit_domain and launch-policy checks passed.
  virtual Status attach_memory(DomainId id, DomainRecord& record) = 0;
  virtual void release_memory(DomainId id, DomainRecord& record) = 0;
  /// Extra cost charged by attest() on top of the signature itself.
  virtual Cycles attest_cost() const = 0;
  /// Invoked before a synchronous call is delivered; lets a backend impose
  /// serialization semantics (the TPM's Flicker-style late launch switches
  /// the single active session here). Default: allow.
  virtual Status pre_call(DomainId actor, DomainId callee);
  /// One-time cost of mapping `pages` 4 KiB pages of shared memory into an
  /// endpoint (charged by map_region). Backends price their own mechanism:
  /// page-table grants, world-shared buffer setup, EADD of untrusted pages,
  /// DMA window programming, capability derivation, DTU endpoint config.
  virtual Cycles region_map_cost(std::size_t pages) const;
  /// Constant cost of one in-place descriptor access (region_view).
  virtual Cycles region_access_cost() const;
  /// Per-actor data-plane pricing. The flat costs above assume the backing
  /// is equally close to both endpoints — true for MMU-style substrates,
  /// where a shared mapping is just memory. Tiled substrates override:
  /// the backing physically lives on ONE endpoint's tile (the host, chosen
  /// at attach_region) and the peer pays the interconnect per copy/view.
  /// Defaults delegate to the flat model above.
  virtual Cycles region_copy_cost(const RegionRecord& record, DomainId actor,
                                  std::size_t len) const;
  virtual Cycles region_access_cost(const RegionRecord& record,
                                    DomainId actor) const;
  /// Backend admission/teardown hooks for regions (e.g. the NoC DTU has a
  /// bounded endpoint table; it accounts slots here). Defaults: allow/no-op.
  virtual Status attach_region(RegionId id, RegionRecord& record);
  virtual void release_region(RegionId id, RegionRecord& record);

  // Shared helpers ------------------------------------------------------------
  DomainRecord* find_domain(DomainId id);
  const DomainRecord* find_domain(DomainId id) const;
  ChannelRecord* find_channel(ChannelId id);
  const ChannelRecord* find_channel(ChannelId id) const;
  RegionRecord* find_region(RegionId id);
  const RegionRecord* find_region(RegionId id) const;
  /// Errc::domain_dead for a corpse, Errc::no_such_domain for an unknown
  /// id; success for a live domain. Backends call this at the top of their
  /// memory paths so a dead domain is reported as dead, not merely unknown.
  Status check_live(DomainId id) const;
  /// Consult the fault hook for `callee`; on a scripted crash, kill the
  /// domain and report true (the caller must then fail with domain_dead).
  bool fault_fires(DomainId callee, std::string_view op);
  /// Charge one crossing direction on the machine's active core, applying
  /// this substrate's concurrency law: the serialized share of the cost
  /// queues behind the shared gate (stalling the core until the gate frees),
  /// the rest proceeds per-core. Exactly machine_.advance(direction) on a
  /// single-core machine. Every crossing site must use this, never a bare
  /// advance, or the conformance suite's law pins fail.
  void charge_crossing(Cycles direction);
  /// Contention-model touch of a channel / a region cache line (see
  /// hw::Machine::note_shared_access). Key spaces are disjoint.
  void note_channel_touch(ChannelId id);
  void note_region_touch(RegionId id, std::uint64_t offset);
  /// Sealing key bound to device + code identity.
  crypto::Aead sealing_aead(const crypto::Digest& measurement) const;

  hw::Machine& machine_;
  SubstrateConfig config_;
  std::map<DomainId, DomainRecord> domains_;
  std::map<ChannelId, ChannelRecord> channels_;
  std::map<RegionId, RegionRecord> regions_;
  std::vector<crypto::Digest> boot_log_;
  DomainId next_domain_ = 1;
  ChannelId next_channel_ = 1;
  RegionId next_region_ = 1;
  std::uint64_t next_badge_ = 0x1000;
  std::uint64_t seal_nonce_ = 1;
  FaultHook fault_hook_;
  trace::Tracer* tracer_ = nullptr;
  health::CycleProfiler* profiler_ = nullptr;
  /// Cycle stamp at which the shared serialization point frees (the gate a
  /// serialized crossing's core must stall to before holding it).
  Cycles serial_free_ = 0;
  std::uint64_t serial_stalls_ = 0;
  Cycles serial_stall_cycles_ = 0;
};

}  // namespace lateral::substrate
