// Substrate registry: name -> factory.
//
// Lets composition code (core::SystemComposer, the conformance test suite)
// pick an isolation technology by name — the paper's "developers hand-pick
// an isolation mechanism ... based on the required attacker model".
// Backends register themselves via register_factory(); core provides
// make_standard_registry() with all five built-in technologies.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "substrate/substrate.h"
#include "util/result.h"

namespace lateral::substrate {

class SubstrateRegistry {
 public:
  using Factory = std::function<std::unique_ptr<IsolationSubstrate>(
      hw::Machine&, const SubstrateConfig&)>;

  /// Errc::invalid_argument when the name is already taken.
  Status register_factory(const std::string& name, Factory factory);

  /// Instantiate a substrate by name on the given machine.
  Result<std::unique_ptr<IsolationSubstrate>> create(
      const std::string& name, hw::Machine& machine,
      const SubstrateConfig& config = {}) const;

  std::vector<std::string> names() const;
  bool contains(const std::string& name) const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace lateral::substrate
