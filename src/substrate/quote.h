// Attestation quotes (paper §II-D "Attestation").
//
// A quote cryptographically binds a domain's code identity (measurement) and
// caller-chosen user data (e.g. the hash of a DH public key) to a device
// secret whose public half is endorsed by the hardware vendor. Verification
// therefore establishes the chain:
//     vendor root key -> device endorsement key -> (measurement, user_data)
#pragma once

#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "substrate/isolation.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::substrate {

struct Quote {
  std::string substrate_name;     // which technology produced it
  crypto::Digest measurement{};   // code identity of the attested domain
  Bytes user_data;                // caller-bound payload (nonce, key hash...)
  crypto::RsaPublicKey ek_pub;    // device endorsement public key
  Bytes ek_cert;                  // vendor root signature over ek_pub
  Bytes signature;                // EK signature over the quote body

  /// The byte string the EK signs.
  Bytes signed_body() const;

  Bytes serialize() const;
  static Result<Quote> deserialize(BytesView wire);

  /// Verify the full chain against a vendor root key. Checks:
  ///  1. vendor root signed ek_pub (endorsement certificate),
  ///  2. ek signed (substrate_name || measurement || user_data).
  Status verify(const crypto::RsaPublicKey& vendor_root) const;
};

/// Produce a quote with the given device endorsement key. Substrates call
/// this; applications only verify.
Quote make_quote(const std::string& substrate_name,
                 const crypto::Digest& measurement, BytesView user_data,
                 const crypto::RsaKeyPair& ek, BytesView ek_cert);

}  // namespace lateral::substrate
