#include "toolbox/authenticator.h"

#include "substrate/quote.h"

namespace lateral::toolbox {
namespace {

constexpr char kLoginContext[] = "lateral.toolbox.login.v1";

}  // namespace

PasswordlessAuthenticator::PasswordlessAuthenticator(
    core::AttestationVerifier& verifier, std::string expected_component,
    BytesView token_key_seed)
    : verifier_(verifier),
      expected_component_(std::move(expected_component)),
      token_key_(crypto::hkdf(to_bytes("toolbox.auth.v1"), token_key_seed,
                              to_bytes("token-mac"), 32)) {}

Bytes PasswordlessAuthenticator::begin() { return verifier_.make_challenge(); }

crypto::Digest PasswordlessAuthenticator::token_mac(
    std::uint64_t serial, const crypto::Digest& device) const {
  crypto::Hmac mac(token_key_);
  std::uint8_t serial_be[8];
  for (int i = 0; i < 8; ++i)
    serial_be[i] = static_cast<std::uint8_t>(serial >> (56 - 8 * i));
  mac.update(BytesView(serial_be, 8));
  mac.update(crypto::digest_view(device));
  return mac.finish();
}

Result<SessionToken> PasswordlessAuthenticator::complete(BytesView quote_wire,
                                                         BytesView nonce) {
  if (const Status s = verifier_.verify(expected_component_, quote_wire,
                                        nonce, to_bytes(kLoginContext));
      !s.ok())
    return Errc::verification_failed;

  auto quote = substrate::Quote::deserialize(quote_wire);
  if (!quote) return Errc::invalid_argument;
  const crypto::Digest device = quote->ek_pub.fingerprint();

  const std::uint64_t serial = next_serial_++;
  active_.emplace(serial, device);

  // Token = serial || HMAC(key, serial || device-fingerprint).
  SessionToken token;
  token.serial = serial;
  for (int i = 7; i >= 0; --i)
    token.token.push_back(static_cast<std::uint8_t>(serial >> (8 * i)));
  const crypto::Digest mac = token_mac(serial, device);
  token.token.insert(token.token.end(), mac.begin(), mac.end());
  return token;
}

Status PasswordlessAuthenticator::validate(BytesView token) const {
  if (token.size() != 8 + 32) return Errc::verification_failed;
  std::uint64_t serial = 0;
  for (int i = 0; i < 8; ++i) serial = (serial << 8) | token[i];
  const auto it = active_.find(serial);
  if (it == active_.end()) return Errc::verification_failed;  // revoked/unknown
  const crypto::Digest expected = token_mac(serial, it->second);
  if (!ct_equal(BytesView(token.data() + 8, 32),
                crypto::digest_view(expected)))
    return Errc::verification_failed;
  return Status::success();
}

Status PasswordlessAuthenticator::revoke(std::uint64_t serial) {
  return active_.erase(serial) ? Status::success()
                               : Status(Errc::invalid_argument);
}

}  // namespace lateral::toolbox
