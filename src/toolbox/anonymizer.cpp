#include "toolbox/anonymizer.h"

namespace lateral::toolbox {
namespace {

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64(BytesView wire, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | wire[offset + i];
  return v;
}

}  // namespace

Bytes encode_reading(const Reading& reading) {
  Bytes out;
  out.reserve(kReadingWireBytes);
  append_u64(out, reading.household);
  append_u64(out, reading.bucket);
  // Milli-kWh resolution: enough for any meter, and integer on the wire so
  // the codec round-trips bit-exactly across platforms.
  append_u64(out, static_cast<std::uint64_t>(reading.kwh * 1000.0 + 0.5));
  return out;
}

Result<Reading> decode_reading(BytesView wire) {
  if (wire.size() != kReadingWireBytes) return Errc::invalid_argument;
  Reading reading;
  reading.household = read_u64(wire, 0);
  reading.bucket = read_u64(wire, 8);
  reading.kwh = static_cast<double>(read_u64(wire, 16)) / 1000.0;
  return reading;
}

Anonymizer::Anonymizer(std::size_t k) : k_(k) {
  if (k == 0) throw Error("Anonymizer: k must be at least 1");
}

Status Anonymizer::ingest(const Reading& reading) {
  if (reading.kwh < 0) return Errc::invalid_argument;
  per_household_[reading.household] += reading.kwh;
  Bucket& bucket = buckets_[reading.bucket];
  bucket.households.insert(reading.household);
  bucket.total_kwh += reading.kwh;
  ++ingested_;
  return Status::success();
}

Result<double> Anonymizer::billing_total(std::uint64_t household) const {
  const auto it = per_household_.find(household);
  if (it == per_household_.end()) return Errc::invalid_argument;
  return it->second;
}

Result<Aggregate> Anonymizer::aggregate(std::uint64_t bucket_id) const {
  const auto it = buckets_.find(bucket_id);
  if (it == buckets_.end()) return Errc::invalid_argument;
  const Bucket& bucket = it->second;
  // The k-anonymity gate: with fewer than k contributors the aggregate
  // would identify households; the component refuses by construction.
  if (bucket.households.size() < k_) return Errc::access_denied;
  Aggregate out;
  out.bucket = bucket_id;
  out.contributors = bucket.households.size();
  out.total_kwh = bucket.total_kwh;
  out.mean_kwh = bucket.total_kwh / static_cast<double>(out.contributors);
  return out;
}

std::vector<Aggregate> Anonymizer::releasable_aggregates() const {
  std::vector<Aggregate> out;
  for (const auto& [id, bucket] : buckets_) {
    if (bucket.households.size() < k_) continue;
    auto agg = aggregate(id);
    if (agg) out.push_back(*agg);
  }
  return out;
}

Status Anonymizer::analyst_query_household_curve(std::uint64_t) const {
  // No code path exists that returns per-household time series; POLA at
  // the API level. (Billing is totals-only and is the declared purpose.)
  return Errc::access_denied;
}

void Anonymizer::retain_only_aggregates() {
  retained_ = releasable_aggregates();
  per_household_.clear();
  buckets_.clear();
}

}  // namespace lateral::toolbox
