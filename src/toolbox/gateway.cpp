#include "toolbox/gateway.h"

namespace lateral::toolbox {

Gateway::Gateway(GatewayPolicy policy) : policy_(std::move(policy)) {}

Status Gateway::admit(std::uint64_t badge, const std::string& host,
                      std::size_t bytes, Cycles now) {
  if (!policy_.allowed_hosts.contains(host)) {
    stats_.blocked_host++;
    return Errc::access_denied;
  }

  ClientBucket& bucket = buckets_[badge];
  if (!bucket.initialized) {
    bucket.tokens = policy_.bucket_capacity_bytes;
    bucket.last_refill = now;
    bucket.initialized = true;
  }
  if (now > bucket.last_refill) {
    const Cycles elapsed = now - bucket.last_refill;
    const std::uint64_t refill =
        elapsed / 1'000'000 * policy_.refill_bytes_per_megacycle;
    if (refill > 0) {
      bucket.tokens =
          std::min(policy_.bucket_capacity_bytes, bucket.tokens + refill);
      bucket.last_refill = now;
    }
  }
  if (bucket.tokens < bytes) {
    stats_.throttled++;
    return Errc::exhausted;
  }
  bucket.tokens -= bytes;
  stats_.forwarded++;
  return Status::success();
}

}  // namespace lateral::toolbox
