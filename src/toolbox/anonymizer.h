// Anonymizer — the reusable trusted component of the smart-meter scenario
// (paper §III-C: "the smart meter component wants to ensure the server will
// only use the data for billing purposes and afterwards stores only
// anonymized aggregates for long-term analysis. ... the utility provider
// could open the source code of the anonymizer for third-party auditing").
//
// This is that open-source component: it ingests per-household readings,
// answers *billing* queries for individual accounts (its one legitimate
// per-household purpose), and releases analytics only as k-anonymous
// aggregates — a bucket is published only once at least k distinct
// households contributed to it. Anything finer is refused by code, not by
// promise: "users can rely on engineered privacy instead of blind belief."
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace lateral::toolbox {

struct Reading {
  std::uint64_t household = 0;
  std::uint64_t bucket = 0;  // e.g. hour-of-day or billing period
  double kwh = 0.0;
};

/// Fixed 24-byte wire form of a Reading (big-endian u64 household | u64
/// bucket | u64 milli-kWh). This is what a fleet of meters ships over
/// attested channels: fixed-size, self-delimiting, no parser state —
/// exactly what an ingest path handling untrusted input wants.
constexpr std::size_t kReadingWireBytes = 24;
Bytes encode_reading(const Reading& reading);
Result<Reading> decode_reading(BytesView wire);

struct Aggregate {
  std::uint64_t bucket = 0;
  std::size_t contributors = 0;
  double total_kwh = 0.0;
  double mean_kwh = 0.0;
};

class Anonymizer {
 public:
  /// k = minimum distinct households per published aggregate.
  explicit Anonymizer(std::size_t k);

  std::size_t k() const { return k_; }

  Status ingest(const Reading& reading);
  std::size_t readings_ingested() const { return ingested_; }

  /// Billing total for one household (the purpose the data was sent for).
  Result<double> billing_total(std::uint64_t household) const;

  /// Aggregate for a bucket; Errc::access_denied while fewer than k
  /// distinct households contributed (the k-anonymity gate).
  Result<Aggregate> aggregate(std::uint64_t bucket) const;

  /// All buckets currently releasable under the k-anonymity policy.
  std::vector<Aggregate> releasable_aggregates() const;

  /// Per-household analytics access does not exist: the only per-household
  /// API is billing_total. This probe models a curious analyst asking for a
  /// single household's load curve and is always refused.
  Status analyst_query_household_curve(std::uint64_t household) const;

  /// End-of-period retention: drop per-household detail, keep only the
  /// releasable aggregates ("afterwards stores only anonymized aggregates
  /// for long-term analysis"). Unreleasable buckets are discarded entirely.
  void retain_only_aggregates();
  bool has_per_household_data() const { return !per_household_.empty(); }
  const std::vector<Aggregate>& retained() const { return retained_; }

 private:
  struct Bucket {
    std::set<std::uint64_t> households;
    double total_kwh = 0.0;
  };

  std::size_t k_;
  std::size_t ingested_ = 0;
  std::map<std::uint64_t, double> per_household_;  // household -> kWh total
  std::map<std::uint64_t, Bucket> buckets_;
  std::vector<Aggregate> retained_;
};

}  // namespace lateral::toolbox
