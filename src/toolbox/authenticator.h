// Password-less authenticator (paper §III-C: "The smart meter example also
// demonstrates password-less authentication: The user is not entering a
// password ... but the appliance is authenticating itself using a secret
// hardware key. Because the user does not need to remember a credential,
// the system is resilient against phishing attacks.").
//
// Server side of that flow: challenge the device, verify the quote chain
// and code identity, then mint an HMAC-authenticated session token bound to
// the device's endorsement-key fingerprint. No credential ever exists that
// a phisher could trick the user into typing.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/attestation.h"
#include "crypto/hmac.h"
#include "substrate/substrate.h"
#include "util/result.h"

namespace lateral::toolbox {

struct SessionToken {
  Bytes token;           // opaque to the client
  std::uint64_t serial;  // server-side bookkeeping
};

class PasswordlessAuthenticator {
 public:
  /// `verifier` must already know the vendor roots and the expected device
  /// component measurement under `expected_component`.
  PasswordlessAuthenticator(core::AttestationVerifier& verifier,
                            std::string expected_component,
                            BytesView token_key_seed);

  /// Step 1: server issues a challenge nonce.
  Bytes begin();

  /// Step 2: device answered with a quote (over the nonce and context
  /// "login"); on success mint a session token bound to the device's EK
  /// fingerprint.
  Result<SessionToken> complete(BytesView quote_wire, BytesView nonce);

  /// Validate a presented token. Errc::verification_failed for forged,
  /// tampered or revoked tokens.
  Status validate(BytesView token) const;

  Status revoke(std::uint64_t serial);
  std::size_t active_sessions() const { return active_.size(); }

 private:
  crypto::Digest token_mac(std::uint64_t serial,
                           const crypto::Digest& device) const;

  core::AttestationVerifier& verifier_;
  std::string expected_component_;
  Bytes token_key_;
  std::uint64_t next_serial_ = 1;
  std::map<std::uint64_t, crypto::Digest> active_;  // serial -> device fp
};

}  // namespace lateral::toolbox
