#include "toolbox/trusted_wrapper.h"

namespace lateral::toolbox {
namespace {

Bytes kv_put_request(const std::string& key, BytesView value) {
  Bytes out = to_bytes(key);
  out.push_back(0x00);
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

}  // namespace

TrustedStore::TrustedStore(legacy::LegacyOs& os, BytesView key_material)
    : os_(os), aead_(key_material) {}

Status TrustedStore::register_backend(legacy::LegacyOs& os) {
  auto& fs = os.filesystem();
  Status put_status = os.register_service(
      "kv-put", [&fs](BytesView request) -> Result<Bytes> {
        const auto separator =
            std::find(request.begin(), request.end(), std::uint8_t{0});
        if (separator == request.end()) return Errc::invalid_argument;
        const std::string path =
            "/kv/" + std::string(request.begin(), separator);
        const BytesView value(&*(separator + 1),
                              static_cast<std::size_t>(request.end() -
                                                       (separator + 1)));
        if (!fs.exists(path)) (void)fs.create(path);
        (void)fs.truncate(path, 0);
        return fs.write(path, 0, value).ok() ? Result<Bytes>(Bytes{})
                                             : Result<Bytes>(Errc::io_error);
      });
  Status get_status = os.register_service(
      "kv-get", [&fs](BytesView request) -> Result<Bytes> {
        const std::string path =
            "/kv/" + std::string(request.begin(), request.end());
        auto size = fs.size(path);
        if (!size) return Errc::io_error;
        return fs.read(path, 0, *size);
      });
  if (!put_status.ok() || !get_status.ok()) return Errc::invalid_argument;
  return Status::success();
}

Status TrustedStore::put(const std::string& key, BytesView value) {
  stats_.puts++;
  const std::uint64_t nonce = nonce_++;
  // AAD binds the ciphertext to its key: the legacy side cannot serve the
  // (authentic) value of key A for a request about key B.
  const crypto::SealedBox box = aead_.seal(nonce, to_bytes(key), value);

  Bytes stored;
  for (int i = 7; i >= 0; --i)
    stored.push_back(static_cast<std::uint8_t>(box.nonce >> (8 * i)));
  stored.insert(stored.end(), box.tag.begin(), box.tag.end());
  stored.insert(stored.end(), box.ciphertext.begin(), box.ciphertext.end());

  auto reply = os_.call_service("kv-put", kv_put_request(key, stored));
  if (!reply) return Errc::io_error;
  latest_nonce_[key] = nonce;
  return Status::success();
}

Result<Bytes> TrustedStore::get(const std::string& key) {
  stats_.gets++;
  auto reply = os_.call_service("kv-get", to_bytes(key));
  if (!reply) return Errc::io_error;
  if (reply->size() < 24) {
    stats_.vetoed_replies++;
    return Errc::tamper_detected;
  }

  crypto::SealedBox box;
  for (int i = 0; i < 8; ++i) box.nonce = (box.nonce << 8) | (*reply)[i];
  std::copy(reply->begin() + 8, reply->begin() + 24, box.tag.begin());
  box.ciphertext.assign(reply->begin() + 24, reply->end());

  // Freshness: only the newest stored version of this key is acceptable.
  const auto latest = latest_nonce_.find(key);
  if (latest == latest_nonce_.end() || box.nonce != latest->second) {
    stats_.vetoed_replies++;
    return Errc::tamper_detected;
  }
  auto plain = aead_.open(box, to_bytes(key));
  if (!plain) {
    stats_.vetoed_replies++;
    return Errc::tamper_detected;
  }
  return std::move(*plain);
}

}  // namespace lateral::toolbox
