// Generic trusted wrapper for legacy service reuse (paper §II-A
// "Communication": "the trusted component must be considerate not to leak
// information and must carefully vet the reply. Cryptography may help to
// satisfy these requirements." and §III-D "Trusted Reuse": "Such an
// interface must be protected by a trusted wrapper").
//
// VPFS is the file-system-shaped instance of this idea; TrustedStore is the
// minimal key-value-shaped one: a put/get store over an untrusted
// legacy::LegacyOs service where every value is encrypted and MACed before
// it crosses the trust boundary, and every reply is vetted on the way back.
#pragma once

#include <string>

#include "crypto/aes.h"
#include "legacy/legacy_os.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::toolbox {

struct WrapperStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t vetoed_replies = 0;  // tampered/forged replies rejected
};

class TrustedStore {
 public:
  /// `os` must offer a "kv-put" service (request: key || 0x00 || value,
  /// reply: empty) and a "kv-get" service (request: key, reply: value).
  /// Both services are untrusted; register_backend() installs an honest
  /// in-memory implementation for convenience.
  TrustedStore(legacy::LegacyOs& os, BytesView key_material);

  /// Install honest kv services backed by the OS's filesystem.
  static Status register_backend(legacy::LegacyOs& os);

  Status put(const std::string& key, BytesView value);

  /// Errc::tamper_detected when the legacy side served a modified, stale
  /// or forged value.
  Result<Bytes> get(const std::string& key);

  const WrapperStats& stats() const { return stats_; }

 private:
  legacy::LegacyOs& os_;
  crypto::Aead aead_;
  std::uint64_t nonce_ = 1;
  /// Anti-rollback: remember the latest nonce stored per key; a stale but
  /// authentic ciphertext is still refused.
  std::map<std::string, std::uint64_t> latest_nonce_;
  WrapperStats stats_;
};

}  // namespace lateral::toolbox
