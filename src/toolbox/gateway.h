// Network gateway component (paper §III-C: "Network access of the Android
// subsystem can be filtered by an isolated gateway component. If this
// gateway has exclusive access to the network hardware, it can reliably
// enforce domain whitelists and bandwidth policies to prevent the smart
// meter appliance from participating in distributed denial-of-service
// attacks — an unfortunate reality with today's IoT devices.").
//
// Per-client accounting keys on the substrate badge (confused-deputy safe);
// bandwidth is a token bucket refilled on simulated time.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "util/result.h"
#include "util/types.h"

namespace lateral::toolbox {

struct GatewayPolicy {
  std::set<std::string> allowed_hosts;
  /// Token bucket: capacity and refill rate per simulated megacycle.
  std::uint64_t bucket_capacity_bytes = 4096;
  std::uint64_t refill_bytes_per_megacycle = 4096;
};

struct GatewayStats {
  std::uint64_t forwarded = 0;
  std::uint64_t blocked_host = 0;
  std::uint64_t throttled = 0;
};

class Gateway {
 public:
  explicit Gateway(GatewayPolicy policy);

  /// Decide about one outbound packet from the client identified by
  /// `badge` at simulated time `now`. Success = forward;
  /// access_denied = host not whitelisted; exhausted = over budget.
  Status admit(std::uint64_t badge, const std::string& host,
               std::size_t bytes, Cycles now);

  const GatewayStats& stats() const { return stats_; }
  const GatewayPolicy& policy() const { return policy_; }

  /// Runtime policy updates (e.g. utility pushes a new host list).
  void set_policy(GatewayPolicy policy) { policy_ = std::move(policy); }

 private:
  struct ClientBucket {
    std::uint64_t tokens = 0;
    Cycles last_refill = 0;
    bool initialized = false;
  };

  GatewayPolicy policy_;
  std::map<std::uint64_t, ClientBucket> buckets_;
  GatewayStats stats_;
};

}  // namespace lateral::toolbox
