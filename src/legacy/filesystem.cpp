#include "legacy/filesystem.h"

#include <algorithm>

namespace lateral::legacy {

LegacyFilesystem::File* LegacyFilesystem::find(const std::string& path) {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

const LegacyFilesystem::File* LegacyFilesystem::find(
    const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

Status LegacyFilesystem::create(const std::string& path) {
  if (path.empty()) return Errc::invalid_argument;
  const auto [it, inserted] = files_.emplace(path, File{});
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

bool LegacyFilesystem::exists(const std::string& path) const {
  return files_.contains(path);
}

Result<std::size_t> LegacyFilesystem::size(const std::string& path) const {
  const File* file = find(path);
  if (!file) return Errc::io_error;
  return file->size;
}

Status LegacyFilesystem::remove(const std::string& path) {
  return files_.erase(path) ? Status::success() : Status(Errc::io_error);
}

Status LegacyFilesystem::rename(const std::string& from,
                                const std::string& to) {
  const auto it = files_.find(from);
  if (it == files_.end()) return Errc::io_error;
  if (files_.contains(to)) return Errc::invalid_argument;
  files_.emplace(to, std::move(it->second));
  files_.erase(it);
  return Status::success();
}

Status LegacyFilesystem::truncate(const std::string& path,
                                  std::size_t new_size) {
  File* file = find(path);
  if (!file) return Errc::io_error;
  file->size = new_size;
  const std::size_t blocks_needed = (new_size + kBlockSize - 1) / kBlockSize;
  file->blocks.resize(blocks_needed);
  for (auto& block : file->blocks)
    if (block.size() != kBlockSize) block.resize(kBlockSize, 0);
  return Status::success();
}

std::vector<std::string> LegacyFilesystem::list(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, file] : files_)
    if (path.starts_with(prefix)) out.push_back(path);
  return out;
}

Status LegacyFilesystem::write(const std::string& path, std::size_t offset,
                               BytesView data) {
  File* file = find(path);
  if (!file) return Errc::io_error;
  stats_.writes++;
  stats_.bytes_written += data.size();
  if (drop_writes_) return Status::success();  // lies about durability

  const std::size_t end = offset + data.size();
  if (end > file->size) {
    file->size = end;
    const std::size_t blocks_needed = (end + kBlockSize - 1) / kBlockSize;
    while (file->blocks.size() < blocks_needed)
      file->blocks.emplace_back(kBlockSize, 0);
  }
  std::size_t cursor = offset;
  while (!data.empty()) {
    const std::size_t block = cursor / kBlockSize;
    const std::size_t in_block = cursor % kBlockSize;
    const std::size_t n = std::min(data.size(), kBlockSize - in_block);
    std::copy(data.begin(), data.begin() + static_cast<long>(n),
              file->blocks[block].begin() + static_cast<long>(in_block));
    data = data.subspan(n);
    cursor += n;
  }
  return Status::success();
}

Result<Bytes> LegacyFilesystem::read(const std::string& path,
                                     std::size_t offset,
                                     std::size_t len) const {
  const File* file = find(path);
  if (!file) return Errc::io_error;
  if (fail_reads_) return Errc::io_error;
  stats_.reads++;
  if (offset >= file->size) return Bytes{};
  len = std::min(len, file->size - offset);
  stats_.bytes_read += len;

  Bytes out;
  out.reserve(len);
  std::size_t cursor = offset;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t block = cursor / kBlockSize;
    const std::size_t in_block = cursor % kBlockSize;
    const std::size_t n = std::min(remaining, kBlockSize - in_block);
    const Bytes& b = file->blocks[block];
    out.insert(out.end(), b.begin() + static_cast<long>(in_block),
               b.begin() + static_cast<long>(in_block + n));
    cursor += n;
    remaining -= n;
  }
  return out;
}

Status LegacyFilesystem::corrupt_random_bit(const std::string& path,
                                            util::Xoshiro& rng) {
  File* file = find(path);
  if (!file || file->size == 0) return Errc::io_error;
  const std::size_t byte_index = rng.below(file->size);
  const std::size_t block = byte_index / kBlockSize;
  const std::size_t in_block = byte_index % kBlockSize;
  file->blocks[block][in_block] ^= static_cast<std::uint8_t>(1u << rng.below(8));
  return Status::success();
}

Status LegacyFilesystem::tamper_block(const std::string& path,
                                      std::size_t block_index,
                                      BytesView content) {
  File* file = find(path);
  if (!file || block_index >= file->blocks.size()) return Errc::io_error;
  Bytes& block = file->blocks[block_index];
  const std::size_t n = std::min(content.size(), block.size());
  std::copy(content.begin(), content.begin() + static_cast<long>(n),
            block.begin());
  return Status::success();
}

Status LegacyFilesystem::snapshot(const std::string& path) {
  const File* file = find(path);
  if (!file) return Errc::io_error;
  snapshots_[path] = *file;
  return Status::success();
}

Status LegacyFilesystem::rollback(const std::string& path) {
  const auto it = snapshots_.find(path);
  if (it == snapshots_.end()) return Errc::io_error;
  files_[path] = it->second;
  return Status::success();
}

Result<Bytes> LegacyFilesystem::snoop(const std::string& path) const {
  const File* file = find(path);
  if (!file) return Errc::io_error;
  Bytes out;
  out.reserve(file->size);
  std::size_t remaining = file->size;
  for (const Bytes& block : file->blocks) {
    const std::size_t n = std::min(remaining, block.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<long>(n));
    remaining -= n;
  }
  return out;
}

}  // namespace lateral::legacy
