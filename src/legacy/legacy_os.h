// Simulated legacy operating system / monolithic codebase.
//
// Paper §II-A: "legacy code is considered not trustworthy and assumed to be
// compromised." A LegacyOs bundles the services a trusted component might
// want to reuse (file system, name service, arbitrary registered services)
// behind one dispatch surface, plus an explicit compromise switch. Once
// compromised, every service misbehaves according to the selected mode —
// exactly the adversary VPFS-style trusted wrappers must survive.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "legacy/filesystem.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::legacy {

/// How a compromised legacy OS misbehaves.
enum class MaliciousMode : std::uint8_t {
  honest,          // not compromised
  tamper_replies,  // flips bytes in every service reply
  leak_requests,   // records all request payloads for the attacker
  refuse_service,  // denial of service
};

class LegacyOs {
 public:
  using Service = std::function<Result<Bytes>(BytesView request)>;

  explicit LegacyOs(std::string name);

  const std::string& name() const { return name_; }

  /// The (untrusted) file system stack this OS offers.
  LegacyFilesystem& filesystem() { return fs_; }
  const LegacyFilesystem& filesystem() const { return fs_; }

  /// Register a named service (e.g. "dns", "time", "render").
  Status register_service(const std::string& service, Service handler);

  /// Invoke a service. Replies pass through the compromise filter: callers
  /// that don't vet replies inherit whatever the attacker injected.
  Result<Bytes> call_service(const std::string& service, BytesView request);

  // --- Compromise model ----------------------------------------------------
  void compromise(MaliciousMode mode) { mode_ = mode; }
  bool is_compromised() const { return mode_ != MaliciousMode::honest; }
  MaliciousMode mode() const { return mode_; }

  /// Everything a leak_requests attacker has captured so far.
  const std::vector<Bytes>& attacker_log() const { return attacker_log_; }

 private:
  std::string name_;
  LegacyFilesystem fs_;
  std::map<std::string, Service> services_;
  MaliciousMode mode_ = MaliciousMode::honest;
  std::vector<Bytes> attacker_log_;
};

}  // namespace lateral::legacy
