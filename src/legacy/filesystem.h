// Simulated legacy file system stack.
//
// The paper (§III-D "Trusted Reuse"): file system stacks "comprise in the
// order of tens of thousands of lines of code and are therefore likely to
// contain exploitable weaknesses. Thus, trusted components should not rely
// on file system code to maintain data integrity or confidentiality."
//
// This class IS that untrusted stack: a block-oriented in-memory filesystem
// that works correctly until an experiment injects misbehaviour — silent
// bit corruption, block-level tampering, replay of stale content, dropped
// writes, or plain snooping. vpfs::Vpfs wraps it so none of that matters.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"
#include "util/types.h"

namespace lateral::legacy {

constexpr std::size_t kBlockSize = 4096;

struct FsStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class LegacyFilesystem {
 public:
  LegacyFilesystem() = default;

  // --- Normal interface ---------------------------------------------------
  Status create(const std::string& path);
  bool exists(const std::string& path) const;
  Result<std::size_t> size(const std::string& path) const;
  Status remove(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Status truncate(const std::string& path, std::size_t new_size);
  std::vector<std::string> list(const std::string& prefix) const;

  /// Write extends the file as needed.
  Status write(const std::string& path, std::size_t offset, BytesView data);
  Result<Bytes> read(const std::string& path, std::size_t offset,
                     std::size_t len) const;

  const FsStats& stats() const { return stats_; }

  // --- Misbehaviour injection (the "assumed compromised" part) -------------
  /// Flip one random bit inside the file (silent media corruption).
  Status corrupt_random_bit(const std::string& path, util::Xoshiro& rng);
  /// Overwrite a whole block with attacker-chosen bytes.
  Status tamper_block(const std::string& path, std::size_t block_index,
                      BytesView content);
  /// Capture current content to later serve stale data (rollback attack).
  Status snapshot(const std::string& path);
  Status rollback(const std::string& path);
  /// When set, write() claims success but changes nothing.
  void set_drop_writes(bool drop) { drop_writes_ = drop; }
  /// When set, every read() fails with io_error.
  void set_fail_reads(bool fail) { fail_reads_ = fail; }
  /// Raw peek at stored bytes — what a compromised FS stack can exfiltrate.
  Result<Bytes> snoop(const std::string& path) const;

 private:
  struct File {
    std::vector<Bytes> blocks;  // each kBlockSize except possibly the last
    std::size_t size = 0;
  };

  File* find(const std::string& path);
  const File* find(const std::string& path) const;

  std::map<std::string, File> files_;
  std::map<std::string, File> snapshots_;
  mutable FsStats stats_;
  bool drop_writes_ = false;
  bool fail_reads_ = false;
};

}  // namespace lateral::legacy
