#include "legacy/legacy_os.h"

namespace lateral::legacy {

LegacyOs::LegacyOs(std::string name) : name_(std::move(name)) {}

Status LegacyOs::register_service(const std::string& service,
                                  Service handler) {
  if (service.empty() || !handler) return Errc::invalid_argument;
  const auto [it, inserted] = services_.emplace(service, std::move(handler));
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Result<Bytes> LegacyOs::call_service(const std::string& service,
                                     BytesView request) {
  const auto it = services_.find(service);
  if (it == services_.end()) return Errc::invalid_argument;

  if (mode_ == MaliciousMode::refuse_service) return Errc::io_error;
  if (mode_ == MaliciousMode::leak_requests)
    attacker_log_.emplace_back(request.begin(), request.end());

  Result<Bytes> reply = it->second(request);
  if (!reply) return reply;

  if (mode_ == MaliciousMode::tamper_replies && !reply->empty()) {
    // Deterministic corruption: flip a bit in the middle of the reply. A
    // caller without a trusted wrapper will happily consume this.
    (*reply)[reply->size() / 2] ^= 0x40;
  }
  return reply;
}

}  // namespace lateral::legacy
