#include "health/profiler.h"

#include <map>
#include <sstream>

namespace lateral::health {

std::string CycleProfiler::collapsed_stacks() const {
  // Aggregate (stack -> estimated cycles) across every ring, then emit in
  // deterministic (sorted) order — the format flamegraph.pl expects.
  std::map<std::string, std::uint64_t> stacks;
  for (const RingRef& ref : rings()) {
    std::string component =
        ref.label.empty() ? "domain#" + std::to_string(ref.domain) : ref.label;
    // A shard name "imap#2" becomes two frames ("imap;shard#2") so every
    // shard of a hot component folds under one flame root.
    std::string shard_frame;
    if (const std::size_t hash = component.find('#');
        hash != std::string::npos && hash > 0) {
      shard_frame = "shard" + component.substr(hash);
      component.resize(hash);
    }
    for (const ProfileSample& sample : ref.ring->snapshot()) {
      std::string stack = component;
      if (!shard_frame.empty()) stack += ";" + shard_frame;
      stack += ";";
      stack += profile_phase_name(sample.phase);
      stacks[stack] += sample.cycles * config_.sample_every;
    }
  }
  std::ostringstream out;
  for (const auto& [stack, cycles] : stacks)
    out << stack << " " << cycles << "\n";
  return out.str();
}

}  // namespace lateral::health
