// Sampling cycle-profiler (lateral::health, FIG16).
//
// The trace layer answers "what happened to THIS request"; the profiler
// answers "where do the cycles GO" — continuously, in production, at a cost
// the hot path can afford. It piggybacks on the simulated machine's per-core
// clocks: every crossing already computes the cycles it is about to charge,
// so attributing them to (domain, crossing-phase, shard) is two stores —
// and only on sampled crossings (1 in sample_every), which is what makes the
// always-on claim honest.
//
//   - Samples land in fixed-size per-domain rings owned by the profiler,
//     NOT the domain: like the trace FlightRecorder, a profile survives
//     kill_domain, so a post-mortem includes where the corpse spent its
//     final cycles.
//   - The off path is a relaxed atomic load and a branch — conformance-
//     pinned to charge exactly zero simulated cycles (bench_fig16's
//     zero-when-off column). A *taken* sample charges CostModel::
//     profile_stamp, folded into the crossing charge like the trace stamp.
//   - Export is collapsed-stack text ("comp;shard#k;phase cycles"), the
//     flamegraph.pl / speedscope input format, emitted next to the Chrome
//     trace export. Retained-sample cycles are scaled by sample_every, the
//     standard sampling-profiler estimate.
//
// Layering: util only (like trace/trace.h), so the substrate layer can hold
// a CycleProfiler* without dependency cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.h"

namespace lateral::health {

/// Which side of a crossing the cycles belong to. Coarser than SpanPhase on
/// purpose: the profiler aggregates, it does not narrate.
enum class ProfilePhase : std::uint8_t {
  request,  // caller -> callee direction (flush for batches)
  reply,    // callee -> caller direction (drain for batches)
  send,     // async enqueue crossing
  receive,  // async dequeue crossing
};

constexpr std::string_view profile_phase_name(ProfilePhase p) {
  switch (p) {
    case ProfilePhase::request: return "request";
    case ProfilePhase::reply: return "reply";
    case ProfilePhase::send: return "send";
    case ProfilePhase::receive: return "receive";
  }
  return "unknown";
}

/// One attributed sample: `cycles` of crossing cost observed at machine
/// clock `at`, in phase `phase`. The owning ring supplies domain identity.
struct ProfileSample {
  ProfilePhase phase = ProfilePhase::request;
  Cycles cycles = 0;
  Cycles at = 0;
};

/// Fixed-size overwrite ring of the most recent samples of one domain.
/// Mutex-guarded, not a seqlock: samples arrive at 1/sample_every the rate
/// of crossings, so the lock is cold by construction; what matters is that
/// the storage outlives the domain (kill_domain leaves it readable).
class ProfileRing {
 public:
  explicit ProfileRing(std::size_t capacity)
      : slots_(capacity ? capacity : 1) {}

  ProfileRing(const ProfileRing&) = delete;
  ProfileRing& operator=(const ProfileRing&) = delete;

  void record(const ProfileSample& sample) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[recorded_ % slots_.size()] = sample;
    ++recorded_;
  }

  /// Retained samples, oldest first.
  std::vector<ProfileSample> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ProfileSample> out;
    const std::size_t retained =
        recorded_ < slots_.size() ? recorded_ : slots_.size();
    out.reserve(retained);
    for (std::size_t i = 0; i < retained; ++i)
      out.push_back(slots_[(recorded_ - retained + i) % slots_.size()]);
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    recorded_ = 0;
  }

  std::size_t capacity() const { return slots_.size(); }
  /// Total samples ever recorded (monotonic; survives wraparound).
  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ProfileSample> slots_;
  std::uint64_t recorded_ = 0;
};

/// Owns the per-domain sample rings, the sampling counter and the master
/// switch. Mirrors trace::Tracer: rings are keyed by (substrate instance,
/// domain id), labelled with the domain name, created on first sample, and
/// survive until scrub().
class CycleProfiler {
 public:
  struct Config {
    /// Samples retained per domain.
    std::size_t ring_capacity = 256;
    /// Sample 1 in N crossings (1 = every crossing; the bench's exact-cost
    /// pin uses 1, production uses a larger stride).
    std::uint64_t sample_every = 8;
  };

  CycleProfiler() : CycleProfiler(Config{}) {}
  explicit CycleProfiler(Config config)
      : config_{config.ring_capacity ? config.ring_capacity : 1,
                config.sample_every ? config.sample_every : 1} {}

  /// Master switch; attaching to a substrate is the compile-in, this is the
  /// runtime toggle whose off position must cost zero simulated cycles.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::uint64_t sample_every() const { return config_.sample_every; }

  /// The sampling decision: true for 1 in sample_every calls. Callers make
  /// exactly one decision per crossing (both directions share it) so the
  /// charged profile_stamp matches one recorded crossing.
  bool should_sample() {
    return tick_.fetch_add(1, std::memory_order_relaxed) %
               config_.sample_every ==
           0;
  }

  /// Attribute `cycles` to (owner, domain) in `phase`. `label` names the
  /// ring on first use (the domain's component name, "imap#2" for shards).
  void sample(const void* owner, std::uint64_t domain, std::string_view label,
              ProfilePhase phase, Cycles cycles, Cycles at) {
    ring(owner, domain, label).record(ProfileSample{phase, cycles, at});
    samples_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot of one domain's samples; empty when it never sampled.
  std::vector<ProfileSample> snapshot(const void* owner,
                                      std::uint64_t domain) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = rings_.find({owner, domain});
    return it == rings_.end() ? std::vector<ProfileSample>{}
                              : it->second.ring->snapshot();
  }

  /// Forget one domain's profile (after a supervisor reaped the corpse).
  void scrub(const void* owner, std::uint64_t domain) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = rings_.find({owner, domain});
    if (it == rings_.end()) return;
    it->second.ring->clear();
    it->second.label.clear();
  }

  struct RingRef {
    const void* owner = nullptr;
    std::uint64_t domain = 0;
    std::string label;
    const ProfileRing* ring = nullptr;
  };
  std::vector<RingRef> rings() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RingRef> out;
    out.reserve(rings_.size());
    for (const auto& [key, entry] : rings_)
      out.push_back(RingRef{key.first, key.second, entry.label,
                            entry.ring.get()});
    return out;
  }

  /// Total samples taken across all rings (monotonic).
  std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Collapsed-stack (flamegraph) text over every ring's retained samples:
  /// one "frame1;frame2;... cycles" line per distinct stack, cycles scaled
  /// by sample_every (the sampling estimate of the true total). Shards
  /// ("imap#2") split into a component frame plus a shard frame, so a flame
  /// view groups a sharded hot domain under one root.
  std::string collapsed_stacks() const;

 private:
  struct Entry {
    std::string label;
    std::unique_ptr<ProfileRing> ring;
  };

  ProfileRing& ring(const void* owner, std::uint64_t domain,
                    std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = rings_[{owner, domain}];
    if (!entry.ring)
      entry.ring = std::make_unique<ProfileRing>(config_.ring_capacity);
    if (entry.label.empty() && !label.empty()) entry.label = label;
    return *entry.ring;
  }

  Config config_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> samples_{0};
  mutable std::mutex mu_;  // guards rings_ (the map, not ring contents)
  std::map<std::pair<const void*, std::uint64_t>, Entry> rings_;
};

}  // namespace lateral::health
