#include "health/slo.h"

#include <utility>

namespace lateral::health {
namespace {

/// Windowed delta between two counter snapshots (newer - older). Counters
/// are monotonic, so field-wise subtraction is exact.
struct Delta {
  std::uint64_t offered = 0;  // submitted + rejected (denominator)
  std::uint64_t errors = 0;   // rejected + timed_out + cancelled
  std::uint64_t latency_count = 0;
  std::array<std::uint64_t, 32> latency_histogram{};
};

Delta delta_between(const runtime::InvocationCounters& newer,
                    const runtime::InvocationCounters& older) {
  Delta d;
  d.offered = (newer.submitted - older.submitted) +
              (newer.rejected - older.rejected);
  d.errors = (newer.rejected - older.rejected) +
             (newer.timed_out - older.timed_out) +
             (newer.cancelled - older.cancelled);
  d.latency_count = newer.latency_count - older.latency_count;
  for (std::size_t i = 0; i < d.latency_histogram.size(); ++i)
    d.latency_histogram[i] =
        newer.latency_histogram[i] - older.latency_histogram[i];
  return d;
}

/// p99 over a delta histogram — same conservative bucket-upper-bound
/// estimate as InvocationCounters::latency_percentile, but windowed.
Cycles delta_p99(const Delta& d) {
  if (d.latency_count == 0) return 0;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      0.99 * static_cast<double>(d.latency_count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < d.latency_histogram.size(); ++i) {
    seen += d.latency_histogram[i];
    if (seen > rank) return (Cycles{2} << i) - 1;
  }
  return 0;
}

std::uint64_t delta_error_permille(const Delta& d) {
  return d.offered == 0 ? 0 : d.errors * 1000 / d.offered;
}

}  // namespace

HealthMonitor::HealthMonitor(Config config) : config_(config) {
  stats_ = config_.hub ? config_.hub->health(config_.label)
                       : runtime::MetricsHub::HealthRef(&own_stats_);
}

void HealthMonitor::watch(std::string component, core::SloPolicy policy,
                          std::string metrics_label) {
  Watch watch;
  watch.component = std::move(component);
  watch.label = metrics_label.empty() ? watch.component
                                      : std::move(metrics_label);
  watch.policy = policy;
  watches_.push_back(std::move(watch));
}

void HealthMonitor::watch_all(const core::Assembly& assembly) {
  for (const core::Manifest& manifest : assembly.manifests())
    if (manifest.slo) watch(manifest.name, *manifest.slo);
}

std::vector<HealthEvent> HealthMonitor::tick() {
  std::vector<HealthEvent> events;
  const Cycles now = config_.clock ? config_.clock->now() : Cycles{0};
  for (Watch& watch : watches_) {
    stats_->evaluations++;
    evaluate(watch, now, events);
  }
  return events;
}

void HealthMonitor::evaluate(Watch& watch, Cycles now,
                             std::vector<HealthEvent>& events) {
  if (!config_.hub) return;
  const core::SloPolicy& policy = watch.policy;
  watch.history.push_back(
      Checkpoint{now, config_.hub->counters(watch.label).snapshot()});

  const Cycles long_window = policy.window_cycles * policy.burn_windows;
  // Keep the newest checkpoint older than the long window and drop the
  // rest: one baseline per window bound is all evaluation ever reads.
  while (watch.history.size() >= 2 &&
         now - watch.history[1].at >= long_window)
    watch.history.pop_front();

  // Baseline for a window = the newest checkpoint at least that old. While
  // the window is still filling there is no verdict — a watchdog that
  // alarms off a half-empty window would fire on every cold start.
  const runtime::InvocationCounters* short_base = nullptr;
  const runtime::InvocationCounters* long_base = nullptr;
  for (const Checkpoint& cp : watch.history) {
    if (now - cp.at >= long_window) long_base = &cp.counters;
    if (now - cp.at >= policy.window_cycles) short_base = &cp.counters;
  }
  if (!short_base || !long_base) return;

  const runtime::InvocationCounters& current = watch.history.back().counters;
  const Delta short_delta = delta_between(current, *short_base);
  const Delta long_delta = delta_between(current, *long_base);

  bool breached = false;

  if (policy.p99_cycles > 0) {
    const Cycles short_p99 = delta_p99(short_delta);
    const bool short_bad = short_p99 > policy.p99_cycles;
    if (short_bad && watch.p99_onset == 0) watch.p99_onset = now;
    if (!short_bad) watch.p99_onset = 0;
    if (short_bad && delta_p99(long_delta) > policy.p99_cycles) {
      stats_->p99_breaches++;
      stats_->record_detection(now - watch.p99_onset);
      events.push_back(HealthEvent{HealthEvent::Kind::p99_breach,
                                   watch.component, now, short_p99,
                                   policy.p99_cycles});
      if (config_.audit)
        config_.audit->append(AuditKind::slo_breach, watch.component,
                              Errc::ok, "p99_breach");
      breached = true;
    }
  }

  if (policy.error_permille < 1000) {
    const std::uint64_t short_rate = delta_error_permille(short_delta);
    const bool short_bad = short_delta.offered > 0 &&
                           short_rate > policy.error_permille;
    if (short_bad && watch.error_onset == 0) watch.error_onset = now;
    if (!short_bad) watch.error_onset = 0;
    if (short_bad &&
        delta_error_permille(long_delta) > policy.error_permille) {
      stats_->error_breaches++;
      stats_->record_detection(now - watch.error_onset);
      events.push_back(HealthEvent{HealthEvent::Kind::error_rate_breach,
                                   watch.component, now, short_rate,
                                   policy.error_permille});
      if (config_.audit)
        config_.audit->append(AuditKind::slo_breach, watch.component,
                              Errc::ok, "error_rate_breach");
      breached = true;
    }
  }

  if (breached && policy.restart && config_.assembly &&
      now >= watch.cooled_until)
    escalate(watch, now, events);
}

void HealthMonitor::escalate(Watch& watch, Cycles now,
                             std::vector<HealthEvent>& events) {
  // The kill is the entire escalation: the Supervisor's heartbeat detects
  // the corpse and runs the component's own restart/backoff/re-attestation
  // plan. Ignore the (already-dead etc.) status — the heartbeat owns truth.
  (void)config_.assembly->kill_component(watch.component);
  stats_->escalations++;
  events.push_back(HealthEvent{HealthEvent::Kind::escalated, watch.component,
                               now, 0, 0});
  if (config_.audit)
    config_.audit->append(AuditKind::escalation, watch.component,
                          Errc::policy_violation, "slo_restart");
  // The relaunched incarnation starts from a clean slate: stale history
  // would re-confirm the old incarnation's breach and kill-loop it.
  watch.history.clear();
  watch.p99_onset = 0;
  watch.error_onset = 0;
  watch.cooled_until =
      now + watch.policy.window_cycles * watch.policy.burn_windows;
}

}  // namespace lateral::health
