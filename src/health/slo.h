// SLO watchdogs (lateral::health, FIG16).
//
// The manifest's `slo { p99 N / error_rate R / window W }` stanza turns the
// MetricsHub's passive counters into an *objective*: a HealthMonitor ticks
// alongside the Supervisor, snapshots each watched component's
// InvocationCounters, and evaluates windowed deltas — not lifetime
// aggregates, which average incidents away — against the declared limits.
//
// Breaches are confirmed with the standard multi-window burn-rate rule:
// both the short window (W) and the long window (W * burn_windows) must be
// over the objective before an event fires. A transient spike burns the
// short window only and stays quiet; a sustained regression trips both,
// within roughly one short window of onset (the detection latency
// bench_fig16 measures).
//
// A confirmed breach emits a typed HealthEvent, lands in the audit log, and
// — when the stanza says `slo ... restart` — escalates into the recovery
// machinery the component's `restart` stanza already owns: the monitor
// kills the domain and the Supervisor's heartbeat/backoff/re-attestation
// state machine takes it from there. The watchdog pulls triggers; it does
// not grow its own restart logic.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "core/composer.h"
#include "core/manifest.h"
#include "health/audit.h"
#include "hw/machine.h"
#include "runtime/metrics.h"
#include "util/types.h"

namespace lateral::health {

/// One confirmed observation from a watchdog tick.
struct HealthEvent {
  enum class Kind : std::uint8_t {
    p99_breach,         // tail latency over objective in both windows
    error_rate_breach,  // error permille over objective in both windows
    escalated,          // breach forwarded into the supervisor's machinery
  };

  Kind kind = Kind::p99_breach;
  std::string component;
  Cycles at = 0;        // machine clock when confirmed
  std::uint64_t observed = 0;  // short-window p99 cycles / error permille
  std::uint64_t limit = 0;     // the objective it broke
};

constexpr std::string_view health_event_name(HealthEvent::Kind k) {
  switch (k) {
    case HealthEvent::Kind::p99_breach: return "p99_breach";
    case HealthEvent::Kind::error_rate_breach: return "error_rate_breach";
    case HealthEvent::Kind::escalated: return "escalated";
  }
  return "unknown";
}

class HealthMonitor {
 public:
  struct Config {
    /// Where the watched components publish their InvocationCounters.
    runtime::MetricsHub* hub = nullptr;
    /// Clock the windows are measured against (the assembly's machine).
    const hw::Machine* clock = nullptr;
    /// Escalation target: `slo ... restart` breaches call
    /// assembly->kill_component() here. Null = observe-only.
    core::Assembly* assembly = nullptr;
    /// Confirmed breaches and escalations are appended here (optional).
    AuditLog* audit = nullptr;
    /// HealthStats label in the hub ("health" shows up in snapshots).
    std::string label = "health";
  };

  explicit HealthMonitor(Config config);

  /// Watch one component. `metrics_label` names its counter block in the
  /// hub; empty = the component name (the composer's convention).
  void watch(std::string component, core::SloPolicy policy,
             std::string metrics_label = {});

  /// Watch every component whose manifest carries an `slo` stanza.
  void watch_all(const core::Assembly& assembly);

  /// Evaluate every watch against the current counters; returns the events
  /// confirmed this tick (possibly none). Call at supervisor-tick cadence.
  std::vector<HealthEvent> tick();

  std::size_t watched() const { return watches_.size(); }
  runtime::HealthStats stats() const { return stats_.snapshot(); }

 private:
  struct Checkpoint {
    Cycles at = 0;
    runtime::InvocationCounters counters;
  };

  struct Watch {
    std::string component;
    std::string label;
    core::SloPolicy policy;
    std::deque<Checkpoint> history;
    /// Machine clock when the short window first went over each objective
    /// (0 = currently healthy); confirmed-breach detection latency is
    /// `now - onset`, the FIG16 metric.
    Cycles p99_onset = 0;
    Cycles error_onset = 0;
    /// No re-escalation before this clock: the restarted incarnation gets a
    /// full long window to prove itself.
    Cycles cooled_until = 0;
  };

  void evaluate(Watch& watch, Cycles now, std::vector<HealthEvent>& events);
  void escalate(Watch& watch, Cycles now, std::vector<HealthEvent>& events);

  Config config_;
  std::vector<Watch> watches_;
  runtime::MetricsHub::HealthSlot own_stats_;  // fallback when no hub
  runtime::MetricsHub::HealthRef stats_;
};

}  // namespace lateral::health
