#include "health/audit.h"

#include <utility>

namespace lateral::health {
namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_bytes(Bytes& out, BytesView v) {
  out.insert(out.end(), v.begin(), v.end());
}

bool get_u64(BytesView wire, std::size_t* offset, std::uint64_t* v) {
  if (*offset > wire.size() || wire.size() - *offset < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v = (*v << 8) | wire[*offset + i];
  *offset += 8;
  return true;
}

bool get_u16(BytesView wire, std::size_t* offset, std::uint16_t* v) {
  if (*offset > wire.size() || wire.size() - *offset < 2) return false;
  *v = static_cast<std::uint16_t>((wire[*offset] << 8) | wire[*offset + 1]);
  *offset += 2;
  return true;
}

bool get_string(BytesView wire, std::size_t* offset, std::string* s) {
  std::uint16_t len = 0;
  if (!get_u16(wire, offset, &len)) return false;
  if (wire.size() - *offset < len) return false;
  s->assign(reinterpret_cast<const char*>(wire.data() + *offset), len);
  *offset += len;
  return true;
}

bool get_digest(BytesView wire, std::size_t* offset, crypto::Digest* d) {
  if (wire.size() - *offset < d->size()) return false;
  std::copy_n(wire.begin() + static_cast<std::ptrdiff_t>(*offset), d->size(),
              d->begin());
  *offset += d->size();
  return true;
}

constexpr crypto::Digest kGenesis{};  // head before the first record

}  // namespace

// --- Wire formats ---------------------------------------------------------

Bytes AuditRecord::encode() const {
  Bytes out;
  out.reserve(20 + component.size() + detail.size());
  put_u64(out, seq);
  put_u64(out, at);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(static_cast<std::uint8_t>(errc));
  put_u16(out, static_cast<std::uint16_t>(component.size()));
  put_bytes(out, to_bytes(component));
  put_u16(out, static_cast<std::uint16_t>(detail.size()));
  put_bytes(out, to_bytes(detail));
  return out;
}

Result<AuditRecord> AuditRecord::decode(BytesView wire, std::size_t* offset) {
  AuditRecord rec;
  if (!get_u64(wire, offset, &rec.seq)) return Errc::invalid_argument;
  std::uint64_t at = 0;
  if (!get_u64(wire, offset, &at)) return Errc::invalid_argument;
  rec.at = at;
  if (wire.size() - *offset < 2) return Errc::invalid_argument;
  rec.kind = static_cast<AuditKind>(wire[*offset]);
  rec.errc = static_cast<Errc>(wire[*offset + 1]);
  *offset += 2;
  if (!get_string(wire, offset, &rec.component)) return Errc::invalid_argument;
  if (!get_string(wire, offset, &rec.detail)) return Errc::invalid_argument;
  return rec;
}

Bytes AuditSeal::encode() const {
  Bytes out;
  out.reserve(24 + head.size());
  put_u64(out, epoch);
  put_u64(out, first_seq);
  put_u64(out, last_seq);
  put_bytes(out, crypto::digest_view(head));
  return out;
}

Result<AuditSeal> AuditSeal::decode(BytesView wire) {
  AuditSeal seal;
  std::size_t offset = 0;
  if (!get_u64(wire, &offset, &seal.epoch) ||
      !get_u64(wire, &offset, &seal.first_seq) ||
      !get_u64(wire, &offset, &seal.last_seq) ||
      !get_digest(wire, &offset, &seal.head) || offset != wire.size())
    return Errc::invalid_argument;
  return seal;
}

Bytes AuditSegment::serialize() const {
  Bytes out;
  put_bytes(out, crypto::digest_view(prev_head));
  put_u64(out, records.size());
  for (const AuditRecord& rec : records) put_bytes(out, rec.encode());
  const Bytes seal_wire = seal.encode();
  put_u64(out, seal_wire.size());
  put_bytes(out, seal_wire);
  const Bytes quote_wire = quote.serialize();
  put_u64(out, quote_wire.size());
  put_bytes(out, quote_wire);
  return out;
}

Result<AuditSegment> AuditSegment::deserialize(BytesView wire) {
  AuditSegment seg;
  std::size_t offset = 0;
  if (!get_digest(wire, &offset, &seg.prev_head))
    return Errc::invalid_argument;
  std::uint64_t count = 0;
  if (!get_u64(wire, &offset, &count)) return Errc::invalid_argument;
  if (count > wire.size()) return Errc::invalid_argument;  // length bomb
  seg.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto rec = AuditRecord::decode(wire, &offset);
    if (!rec) return rec.error();
    seg.records.push_back(*std::move(rec));
  }
  std::uint64_t seal_len = 0;
  if (!get_u64(wire, &offset, &seal_len) || wire.size() - offset < seal_len)
    return Errc::invalid_argument;
  auto seal = AuditSeal::decode(wire.subspan(offset, seal_len));
  if (!seal) return seal.error();
  seg.seal = *seal;
  offset += seal_len;
  std::uint64_t quote_len = 0;
  if (!get_u64(wire, &offset, &quote_len) || wire.size() - offset < quote_len)
    return Errc::invalid_argument;
  auto quote = substrate::Quote::deserialize(wire.subspan(offset, quote_len));
  if (!quote) return quote.error();
  seg.quote = *std::move(quote);
  offset += quote_len;
  if (offset != wire.size()) return Errc::invalid_argument;
  return seg;
}

// --- Verification ---------------------------------------------------------

Status verify_segment(const AuditSegment& segment,
                      const AuditVerifyConfig& config) {
  // 1. Authenticity: the quote chain must hold, name the expected code
  // identity, and bind exactly this seal. Any failure here means the seal
  // was forged, re-signed, or detached from the device — verification_failed,
  // not tamper, because nothing trustworthy was ever established.
  if (Status s = segment.quote.verify(config.vendor_root); !s)
    return Errc::verification_failed;
  if (config.expected_measurement &&
      segment.quote.measurement != *config.expected_measurement)
    return Errc::verification_failed;
  if (segment.quote.user_data != segment.seal.encode())
    return Errc::verification_failed;

  // 2. Freshness: a validly sealed but older log is a replay.
  if (config.min_epoch != 0 && segment.seal.epoch <= config.min_epoch)
    return Errc::tamper_detected;

  // 3. Integrity: the records must continue the verifier's chain densely and
  // hash to exactly the sealed head. Every tamper primitive lands here —
  // truncating the tail moves the recomputed head off the seal, dropping the
  // front breaks expected_first_seq, reordering breaks seq density, and
  // mutating any byte of any record breaks the chain recomputation.
  if (segment.records.empty()) return Errc::tamper_detected;
  if (segment.prev_head != config.expected_prev_head)
    return Errc::tamper_detected;
  if (segment.records.front().seq != config.expected_first_seq)
    return Errc::tamper_detected;
  crypto::Digest head = segment.prev_head;
  for (std::size_t i = 0; i < segment.records.size(); ++i) {
    const AuditRecord& rec = segment.records[i];
    if (rec.seq != config.expected_first_seq + i) return Errc::tamper_detected;
    head = crypto::Sha256::hash2(crypto::digest_view(head), rec.encode());
  }
  if (segment.seal.last_seq != segment.records.back().seq)
    return Errc::tamper_detected;
  if (segment.seal.first_seq > segment.seal.last_seq)
    return Errc::tamper_detected;
  if (head != segment.seal.head) return Errc::tamper_detected;
  return Status::success();
}

// --- Device-side log ------------------------------------------------------

std::uint64_t AuditLog::append(AuditKind kind, std::string_view component,
                               Errc errc, std::string_view detail) {
  std::lock_guard<std::mutex> lock(mu_);
  AuditRecord rec;
  rec.seq = records_.size();
  rec.at = machine_ ? machine_->now() : Cycles{0};
  rec.kind = kind;
  rec.errc = errc;
  rec.component = std::string(component);
  rec.detail = std::string(detail);
  const crypto::Digest& prev = heads_.empty() ? kGenesis : heads_.back();
  heads_.push_back(
      crypto::Sha256::hash2(crypto::digest_view(prev), rec.encode()));
  records_.push_back(std::move(rec));
  return records_.back().seq;
}

std::size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<AuditRecord> AuditLog::records(std::uint64_t from_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from_seq >= records_.size()) return {};
  return std::vector<AuditRecord>(
      records_.begin() + static_cast<std::ptrdiff_t>(from_seq),
      records_.end());
}

crypto::Digest AuditLog::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heads_.empty() ? kGenesis : heads_.back();
}

std::uint64_t AuditLog::next_epoch_locked() {
  return machine_ ? machine_->nv_counter_increment() : ++local_epoch_;
}

Result<AuditSeal> AuditLog::seal_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_through_ >= records_.size()) return Errc::would_block;
  AuditSeal seal;
  seal.epoch = next_epoch_locked();
  seal.first_seq = sealed_through_;
  seal.last_seq = records_.size() - 1;
  seal.head = heads_.back();
  sealed_through_ = records_.size();
  seals_.push_back(seal);
  return seal;
}

Result<AuditSegment> AuditLog::segment(
    std::uint64_t from_seq, substrate::IsolationSubstrate& substrate,
    substrate::DomainId domain) {
  AuditSegment seg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (records_.empty() || from_seq >= records_.size())
      return records_.empty() || from_seq == records_.size()
                 ? Errc::would_block
                 : Errc::invalid_argument;
    // Seal anything unsealed so the pulled range ends on a sealed head.
    if (sealed_through_ < records_.size()) {
      AuditSeal seal;
      seal.epoch = next_epoch_locked();
      seal.first_seq = sealed_through_;
      seal.last_seq = records_.size() - 1;
      seal.head = heads_.back();
      sealed_through_ = records_.size();
      seals_.push_back(seal);
    }
    seg.prev_head = from_seq == 0 ? kGenesis : heads_[from_seq - 1];
    seg.records.assign(
        records_.begin() + static_cast<std::ptrdiff_t>(from_seq),
        records_.end());
    seg.seal = seals_.back();
  }
  // Attest outside the lock: the quote costs simulated cycles and must not
  // serialize against concurrent appends.
  auto quote = substrate.attest(domain, seg.seal.encode());
  if (!quote) return quote.error();
  seg.quote = *std::move(quote);
  return seg;
}

}  // namespace lateral::health
