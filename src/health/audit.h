// Tamper-evident attested audit log (lateral::health, FIG16).
//
// The codebase already refuses the right things — undeclared channels
// (policy_violation), unauthorized trace exports (redaction_denied),
// replayed tickets, rolled-back updates, failed re-attestations — but each
// refusal was a counter bump and a returned Errc: evidence that evaporates.
// This log makes the refusals *evidence*: an append-only hash chain
//
//     head_0 = 0^32,   head_i = SHA256(head_{i-1} || encode(record_i))
//
// sealed per epoch into an AuditSeal (epoch, seq range, chain head) that the
// device binds into an attestation quote (seal bytes = quote user_data). A
// verifier who trusts only the hardware vendor's root key can then detect
// truncation, reordering or mutation of the records — the device's own
// software cannot rewrite history without breaking the chain, and cannot
// re-seal a rewritten chain without the endorsement key it never holds.
// Epochs are drawn from the machine's monotonic NV counter when a machine
// is bound, so replaying an entire older (validly sealed) log is caught by
// arithmetic, exactly like update rollback protection.
//
// Operators fetch AuditSegments over the fleet's sealed sessions
// (FleetServer's audit-pull method) and check them with verify_segment():
// typed rejection — Errc::tamper_detected for chain/sequence damage,
// Errc::verification_failed for a forged or mis-bound seal.
//
// Layering: crypto + substrate (Quote) + hw; everything from core upward
// can hold an AuditLog* without cycles.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"
#include "hw/machine.h"
#include "substrate/quote.h"
#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::health {

/// What class of security-relevant event a record witnesses. The Errc
/// carried alongside preserves the precise refusal (ticket_expired vs
/// ticket_replayed both land in ticket_rejected, distinguished by errc).
enum class AuditKind : std::uint8_t {
  attestation_failed,  // challenge-response / quote verification failed
  policy_violation,    // manifest/POLA check refused an operation
  redaction_denied,    // trace export refused for an unauthorized observer
  ticket_rejected,     // fleet resumption ticket refused
  session_tamper,      // sealed-record authentication failed mid-session
  rollback_refused,    // update version not newer than the NV counter
  update_refused,      // update manifest/image refused (signature, hash)
  slo_breach,          // health watchdog confirmed an SLO breach
  escalation,          // a breach or budget exhaustion escalated
};

constexpr std::string_view audit_kind_name(AuditKind k) {
  switch (k) {
    case AuditKind::attestation_failed: return "attestation_failed";
    case AuditKind::policy_violation: return "policy_violation";
    case AuditKind::redaction_denied: return "redaction_denied";
    case AuditKind::ticket_rejected: return "ticket_rejected";
    case AuditKind::session_tamper: return "session_tamper";
    case AuditKind::rollback_refused: return "rollback_refused";
    case AuditKind::update_refused: return "update_refused";
    case AuditKind::slo_breach: return "slo_breach";
    case AuditKind::escalation: return "escalation";
  }
  return "unknown";
}

/// One audit record. `encode()` is the canonical byte form the hash chain
/// and the wire format both use — any representational drift would be a
/// self-inflicted tamper alarm, so there is exactly one encoding.
struct AuditRecord {
  std::uint64_t seq = 0;    // position in the log, dense from 0
  Cycles at = 0;            // simulated clock when the event was appended
  AuditKind kind = AuditKind::policy_violation;
  Errc errc = Errc::ok;     // the precise refusal, when one exists
  std::string component;    // principal the event is about
  std::string detail;       // free-form context ("ui->storage", peer name)

  Bytes encode() const;
  /// Decode one record from `wire` starting at `*offset`; advances
  /// `*offset` past it. Errc::invalid_argument on malformed input.
  static Result<AuditRecord> decode(BytesView wire, std::size_t* offset);

  friend bool operator==(const AuditRecord&, const AuditRecord&) = default;
};

/// Seal over records [first_seq, last_seq]: the chain head after the last
/// one, stamped with a monotonic epoch. This is the 56-byte-plus-head value
/// a quote binds (user_data = encode()).
struct AuditSeal {
  std::uint64_t epoch = 0;
  std::uint64_t first_seq = 0;  // first record this epoch covers
  std::uint64_t last_seq = 0;   // inclusive; last_seq+1 == log size at seal
  crypto::Digest head{};        // chain head after record last_seq

  Bytes encode() const;
  static Result<AuditSeal> decode(BytesView wire);

  friend bool operator==(const AuditSeal&, const AuditSeal&) = default;
};

/// What an operator pulls: a run of records, the chain state just before
/// them, the covering seal and the quote that binds it to the device.
struct AuditSegment {
  /// Chain head before records.front() (the all-zero genesis for seq 0) —
  /// what lets a verifier resume checking from its last verified head.
  crypto::Digest prev_head{};
  std::vector<AuditRecord> records;
  AuditSeal seal;
  substrate::Quote quote;

  Bytes serialize() const;
  static Result<AuditSegment> deserialize(BytesView wire);
};

/// Verifier-side policy for one segment.
struct AuditVerifyConfig {
  /// Root of the attestation chain (hw::Vendor::root_public_key()).
  crypto::RsaPublicKey vendor_root;
  /// When set, the quote's measurement must match (the attesting domain's
  /// expected code identity).
  std::optional<crypto::Digest> expected_measurement;
  /// Where this segment must start: the next unseen sequence number and the
  /// chain head the verifier recorded last time (genesis defaults for a
  /// first pull).
  std::uint64_t expected_first_seq = 0;
  crypto::Digest expected_prev_head{};
  /// Seal epochs at or below this are replays of history already verified
  /// (0 = no floor). Epochs come from a monotonic counter, so a stale
  /// sealed log cannot satisfy a verifier that tracks the high-water mark.
  std::uint64_t min_epoch = 0;
};

/// Full tamper check of one pulled segment:
///   Errc::verification_failed — quote chain invalid, wrong measurement, or
///     the seal is not the one the quote binds (forged/re-sealed log);
///   Errc::tamper_detected — sequence gap/reorder, chain-head mismatch
///     (mutation), seal range not matching the records (truncation), or a
///     replayed epoch.
Status verify_segment(const AuditSegment& segment,
                      const AuditVerifyConfig& config);

/// The device-side log. Thread-safe; every subsystem that refuses something
/// security-relevant holds an optional AuditLog* and appends through it.
class AuditLog {
 public:
  /// `machine` (optional) supplies append timestamps and monotonic seal
  /// epochs from its NV counter; without one, epochs fall back to a local
  /// counter (still strictly increasing within this log's lifetime).
  explicit AuditLog(hw::Machine* machine = nullptr) : machine_(machine) {}

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Append one record; assigns seq, stamps the clock, extends the chain.
  /// Returns the assigned sequence number.
  std::uint64_t append(AuditKind kind, std::string_view component,
                       Errc errc = Errc::ok, std::string_view detail = {});

  std::size_t size() const;
  /// Copy of the records from `from_seq` on.
  std::vector<AuditRecord> records(std::uint64_t from_seq = 0) const;
  /// Current chain head (genesis zero digest while empty).
  crypto::Digest head() const;
  const std::vector<AuditSeal>& seals() const { return seals_; }

  /// Seal everything appended since the last seal under a fresh monotonic
  /// epoch. Errc::would_block when nothing new to seal.
  Result<AuditSeal> seal_epoch();

  /// One operator pull: records from `from_seq` on, sealed through the end
  /// (reusing the last seal when nothing new arrived) and bound into a
  /// quote by `domain` on `substrate`. Errc::invalid_argument when from_seq
  /// is beyond the log; Errc::would_block when the log is empty.
  Result<AuditSegment> segment(std::uint64_t from_seq,
                               substrate::IsolationSubstrate& substrate,
                               substrate::DomainId domain);

 private:
  std::uint64_t next_epoch_locked();

  hw::Machine* machine_ = nullptr;
  mutable std::mutex mu_;
  std::vector<AuditRecord> records_;
  /// heads_[i] = chain head after records_[i] (so a segment starting at any
  /// seq can state its prev_head without re-hashing the prefix).
  std::vector<crypto::Digest> heads_;
  std::vector<AuditSeal> seals_;
  std::uint64_t sealed_through_ = 0;  // seqs below this are covered by seals_
  std::uint64_t local_epoch_ = 0;     // fallback when no machine is bound
};

}  // namespace lateral::health
