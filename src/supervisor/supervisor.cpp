#include "supervisor/supervisor.h"

#include <algorithm>

namespace lateral::supervisor {

namespace {

Bytes relaunch_context(const std::string& name) {
  return to_bytes("lateral.supervisor.relaunch:" + name);
}

}  // namespace

Supervisor::Supervisor(core::Assembly& assembly, SupervisorConfig config)
    : assembly_(assembly),
      config_(std::move(config)),
      stats_(config_.hub ? config_.hub->recovery(config_.label)
                         : runtime::MetricsHub::RecoveryRef(&own_stats_)) {
  if (config_.confirm_probes == 0) config_.confirm_probes = 1;
}

Supervisor::~Supervisor() {
  // Destroying the probe domains also reaps every heartbeat channel (they
  // all have a probe endpoint); the supervised components are untouched.
  for (const auto& [substrate, domain] : probes_)
    (void)substrate->destroy_domain(domain);
}

Result<substrate::DomainId> Supervisor::probe_domain(
    substrate::IsolationSubstrate& substrate) {
  if (const auto it = probes_.find(&substrate); it != probes_.end())
    return it->second;
  substrate::DomainSpec spec;
  spec.name = "lateral.supervisor.probe";
  spec.kind = substrate::DomainKind::trusted_component;
  spec.image.name = spec.name;
  spec.image.code = to_bytes("lateral.supervisor.probe");
  spec.memory_pages = 1;
  auto domain = substrate.create_domain(spec);
  if (!domain) return domain.error();
  probes_.emplace(&substrate, *domain);
  return *domain;
}

Status Supervisor::establish_heartbeat(Watch& watch) {
  auto component = assembly_.component(watch.ref);
  if (!component) return component.error();
  watch.substrate = (*component)->substrate;
  auto probe = probe_domain(*(*component)->substrate);
  if (probe) {
    auto channel =
        (*component)->substrate->create_channel(*probe, (*component)->domain);
    if (channel) {
      watch.heartbeat = *channel;
      watch.management_probe = false;
      return Status::success();
    }
  }
  // No room for a probe domain (or its channel): fall back to probing via
  // measurement(), which answers domain_dead on a corpse all the same.
  watch.management_probe = true;
  return Status::success();
}

Status Supervisor::watch(const std::string& name,
                         const core::RestartPolicy& policy) {
  if (watches_.contains(name)) return Status::success();
  auto ref = assembly_.ref(name);
  if (!ref) return ref.error();

  Watch watch;
  watch.ref = *ref;
  watch.name = name;
  watch.policy = policy;
  if (const Status s = establish_heartbeat(watch); !s.ok()) return s;

  // Record the known-good identity NOW, while the component is the one the
  // composer measured: every relaunch must attest to this same value.
  if (config_.verifier) {
    auto component = assembly_.component(*ref);
    auto measurement =
        (*component)->substrate->measurement((*component)->domain);
    if (!measurement) return measurement.error();
    config_.verifier->expect_measurement(name, *measurement);
  }

  watches_.emplace(name, std::move(watch));
  return Status::success();
}

Result<std::size_t> Supervisor::watch_all() {
  for (const std::string& name : assembly_.component_names()) {
    auto component = assembly_.component(name);
    if (!component || !(*component)->manifest.restart) continue;
    if (const Status s = watch(name, *(*component)->manifest.restart); !s.ok())
      return s.error();
  }
  return watches_.size();
}

Supervisor::Probe Supervisor::probe(Watch& watch) {
  if (watch.management_probe) {
    auto component = assembly_.component(watch.ref);
    if (!component) return Probe::dead;
    return watch.substrate->measurement((*component)->domain).ok()
               ? Probe::alive
               : Probe::dead;
  }
  // A heartbeat probe is a receive() on the dedicated channel: a live, idle
  // peer answers would_block; a corpse answers domain_dead immediately.
  auto message = watch.substrate->receive(probes_.at(watch.substrate),
                                          watch.heartbeat);
  if (message) return Probe::alive;
  switch (message.error()) {
    case Errc::would_block:
      return Probe::alive;
    case Errc::no_such_channel:
      // The channel went away under us — the component was restarted
      // outside this supervisor (corpse reaped along with our heartbeat).
      // Re-establish against the current incarnation.
      return establish_heartbeat(watch).ok() ? Probe::alive : Probe::dead;
    default:
      // domain_dead, no_such_domain, compromised, ...: not serving.
      return Probe::dead;
  }
}

void Supervisor::confirm_death(Watch& watch, Cycles now, TickReport& report) {
  ++stats_->kills_detected;
  // The corpse's flight recorder outlived the domain (the Tracer, not the
  // domain, owns the ring): stamp the detection, snapshot the final span
  // events into a recovery report, then scrub — the timeline belongs to
  // this incident, not to the reincarnation that will reuse the ring.
  if (trace::Tracer* tracer = watch.substrate->tracer()) {
    if (auto component = assembly_.component(watch.ref)) {
      const substrate::DomainId corpse = (*component)->domain;
      watch.substrate->stamp_span(corpse, trace::current_context(),
                                  tracer->next_span(),
                                  trace::SpanPhase::detected, {}, 0);
      RecoveryReport post_mortem;
      post_mortem.name = watch.name;
      post_mortem.detected_at = watch.detected_at;
      post_mortem.flight_recorder = tracer->snapshot(watch.substrate, corpse);
      tracer->scrub(watch.substrate, corpse);
      watch.open_report = reports_.size();
      reports_.push_back(std::move(post_mortem));
    }
  }
  // A death with no budget left escalates right here: backing off before a
  // relaunch that will never happen only delays the operator signal.
  if (watch.restarts_used >= watch.policy.max_restarts) {
    escalate(watch, report);
    return;
  }
  watch.state = Health::restarting;
  // First relaunch after policy.backoff_cycles, doubling per attempt used.
  const Cycles backoff = watch.policy.backoff_cycles
                         << std::min<std::uint32_t>(watch.restarts_used, 63);
  watch.next_attempt_at = now + backoff;
}

Status Supervisor::verify_relaunch(const Watch& watch) {
  auto component = assembly_.component(watch.ref);
  if (!component) return component.error();
  substrate::IsolationSubstrate* sub = (*component)->substrate;
  const substrate::DomainId domain = (*component)->domain;

  // Re-measure unconditionally: a relaunch whose image does not measure is
  // not a recovery.
  auto measurement = sub->measurement(domain);
  if (!measurement) return measurement.error();

  if (!config_.verifier) return Status::success();
  // Full challenge-response against the identity recorded at watch() time:
  // fresh nonce, quote bound to this relaunch, chain + measurement checked.
  const Bytes nonce = config_.verifier->make_challenge();
  const Bytes context = relaunch_context(watch.name);
  auto quote = core::respond_to_challenge(*sub, domain, nonce, context);
  if (!quote) return quote.error();
  return config_.verifier->verify(watch.name, *quote, nonce, context);
}

void Supervisor::escalate(Watch& watch, TickReport& report) {
  watch.state = watch.policy.escalation ==
                        core::RestartPolicy::Escalation::halted
                    ? Health::halted
                    : Health::degraded;
  if (watch.state == Health::halted) halted_ = true;
  ++stats_->escalations;
  ++report.escalations;
  if (config_.audit)
    config_.audit->append(health::AuditKind::escalation, watch.name,
                          Errc::exhausted,
                          std::string(health_name(watch.state)));
}

void Supervisor::attempt_restart(Watch& watch, TickReport& report) {
  if (watch.restarts_used >= watch.policy.max_restarts) {
    escalate(watch, report);
    return;
  }
  ++watch.restarts_used;

  // A failed attempt consumes budget and re-gates with doubled backoff.
  auto fail = [&] {
    ++stats_->restart_failures;
    const Cycles backoff = watch.policy.backoff_cycles
                           << std::min<std::uint32_t>(watch.restarts_used, 63);
    watch.next_attempt_at = watch.substrate->machine().now() + backoff;
  };
  if (const Status s = assembly_.restart_component(watch.ref); !s.ok()) {
    fail();
    return;  // stays restarting; next tick re-gates on backoff
  }
  // The relaunch reaped the corpse and with it our heartbeat channel;
  // re-establish before declaring recovery (no heartbeat, no supervision).
  if (const Status s = establish_heartbeat(watch); !s.ok()) {
    fail();
    return;
  }
  if (const Status s = verify_relaunch(watch); !s.ok()) {
    // Came back with the wrong identity: treat as still down. The corpse
    // is gone, but the heartbeat now points at the impostor; kill it so
    // the next attempt starts from a clean death.
    if (config_.audit)
      config_.audit->append(health::AuditKind::attestation_failed, watch.name,
                            s.error(), "relaunch");
    (void)assembly_.kill_component(watch.ref);
    fail();
    return;
  }

  const Cycles now = watch.substrate->machine().now();
  stats_->record_recovery(now - watch.detected_at);
  watch.state = Health::running;
  watch.consecutive_dead = 0;
  ++report.restarts;

  auto component = assembly_.component(watch.ref);
  const std::uint32_t incarnation =
      component ? (*component)->incarnation : watch.restarts_used;

  // The reincarnation's ring opens with the recovery milestones, and the
  // incident's report closes with the MTTR endpoint.
  if (trace::Tracer* tracer = watch.substrate->tracer();
      tracer && component) {
    const substrate::DomainId domain = (*component)->domain;
    const trace::TraceContext& ctx = trace::current_context();
    watch.substrate->stamp_span(domain, ctx, tracer->next_span(),
                                trace::SpanPhase::relaunch, {}, 0);
    if (config_.verifier)
      watch.substrate->stamp_span(domain, ctx, tracer->next_span(),
                                  trace::SpanPhase::attested, {}, 0);
    watch.substrate->stamp_span(domain, ctx, tracer->next_span(),
                                trace::SpanPhase::recovered, {}, 0);
  }
  if (watch.open_report != Watch::kNoReport) {
    reports_[watch.open_report].recovered_at = now;
    reports_[watch.open_report].incarnation = incarnation;
    watch.open_report = Watch::kNoReport;
  }

  for (const RestartHook& hook : hooks_) hook(watch.name, incarnation);
}

Supervisor::TickReport Supervisor::tick() {
  TickReport report;
  bool probed_any = false;
  for (auto& [name, watch] : watches_) {
    const Cycles now = watch.substrate->machine().now();
    switch (watch.state) {
      case Health::running:
      case Health::suspect: {
        probed_any = true;
        ++report.probed;
        if (probe(watch) == Probe::alive) {
          watch.state = Health::running;
          watch.consecutive_dead = 0;
          break;
        }
        if (watch.consecutive_dead++ == 0) {
          watch.state = Health::suspect;
          watch.detected_at = now;
        }
        if (watch.consecutive_dead >= config_.confirm_probes) {
          ++report.deaths_detected;
          confirm_death(watch, now, report);
          // An already-elapsed backoff relaunches this very tick: detection
          // latency and MTTR stay one probe apart.
          if (watch.state == Health::restarting &&
              now >= watch.next_attempt_at)
            attempt_restart(watch, report);
        }
        break;
      }
      case Health::restarting:
        if (now >= watch.next_attempt_at) attempt_restart(watch, report);
        break;
      case Health::degraded:
      case Health::halted:
        break;  // terminal; operator intervention territory
    }
  }
  if (probed_any) ++stats_->probe_cycles;
  return report;
}

Result<Health> Supervisor::health(const std::string& name) const {
  const auto it = watches_.find(name);
  if (it == watches_.end()) return Errc::no_such_domain;
  return it->second.state;
}

Result<std::uint32_t> Supervisor::restarts_of(const std::string& name) const {
  const auto it = watches_.find(name);
  if (it == watches_.end()) return Errc::no_such_domain;
  // Only successful recoveries count here; failures are in stats().
  const Watch& watch = it->second;
  auto component = assembly_.component(watch.ref);
  return component ? (*component)->incarnation : watch.restarts_used;
}

}  // namespace lateral::supervisor
