// lateral::supervisor — crash detection and supervised restart.
//
// The paper's horizontal paradigm splits an app into components so a
// compromise is contained; this subsystem makes *crashes* equally
// containable. A Supervisor watches the components whose manifests carry a
// `restart { ... }` stanza and drives each through a small state machine:
//
//   running --dead probe--> suspect --confirmed--> restarting
//   restarting --relaunch ok--> running
//   restarting --budget exhausted--> degraded | halted   (per policy)
//
// Detection is non-intrusive: per supervised component the supervisor keeps
// a dedicated heartbeat channel from its own probe domain and polls it with
// receive(). A live, idle peer answers Errc::would_block; a crashed peer
// answers Errc::domain_dead the instant it dies (the substrate's corpse
// semantics — no timeout tuning, no handler involvement, no queue growth).
// Substrates too small to host a probe domain (SEP's fixed two-domain
// layout) fall back to management-plane probing: measurement() answers
// domain_dead on a corpse just as a heartbeat receive() would.
//
// Recovery goes through the composer path (Assembly::restart_component):
// fresh domain from the same manifest, assembly channels rebound under a
// bumped epoch (stale Endpoints fence off; see core/endpoint.h), corpse
// reaped, recorded behaviour reinstalled. The supervisor then re-measures
// the relaunched domain and — when configured with a verifier — runs the
// full challenge-response attestation before declaring it running again:
// a component that comes back *different* is a failed restart, not a
// recovered one. Restart hooks let higher layers re-establish state bound
// to the dead incarnation (net::SecureChannel sessions, BatchChannel
// attachments).
//
// All policy (attempt budget, exponential backoff, escalation) comes from
// the manifest, so "what happens when this dies" ships with the component
// declaration, same as its channels and its attacker model.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/attestation.h"
#include "core/composer.h"
#include "health/audit.h"
#include "runtime/metrics.h"
#include "substrate/substrate.h"
#include "trace/trace.h"
#include "util/result.h"

namespace lateral::supervisor {

enum class Health : std::uint8_t {
  running,     // heartbeats healthy
  suspect,     // a probe reported death; confirmation pending
  restarting,  // death confirmed; relaunch scheduled (backoff) or in progress
  degraded,    // budget exhausted, policy says: leave it down, carry on
  halted,      // budget exhausted, policy says: the assembly lost a
               // mandatory component (Supervisor::halted() latches)
};

constexpr std::string_view health_name(Health h) {
  switch (h) {
    case Health::running: return "running";
    case Health::suspect: return "suspect";
    case Health::restarting: return "restarting";
    case Health::degraded: return "degraded";
    case Health::halted: return "halted";
  }
  return "unknown";
}

/// Post-mortem of one supervised crash incident. The flight-recorder
/// snapshot is the corpse's final span events — captured between the
/// supervisor confirming the death and scrubbing the ring — so an MTTR
/// number always comes with the timeline that led to it (what the domain
/// was doing when it died, the kill itself, and the detection).
struct RecoveryReport {
  std::string name;
  /// Incarnation that recovered the component; 0 while the incident is
  /// still open (or escalated without recovery).
  std::uint32_t incarnation = 0;
  Cycles detected_at = 0;
  Cycles recovered_at = 0;  // 0 until the relaunch is declared running
  std::vector<trace::SpanEvent> flight_recorder;
};

struct SupervisorConfig {
  /// Consecutive dead probes required before a suspect component is
  /// declared dead. The substrate's domain_dead answer is authoritative,
  /// so 1 is safe; raise it to model conservative detectors.
  std::uint32_t confirm_probes = 1;
  /// Optional shared metrics sink; falls back to supervisor-local stats.
  runtime::MetricsHub* hub = nullptr;
  std::string label = "supervisor";
  /// When set, every relaunch must pass challenge-response attestation
  /// against the relaunched domain's re-measured identity before the
  /// component is declared running (the verifier needs the substrate's
  /// endorsement root among its trusted roots).
  core::AttestationVerifier* verifier = nullptr;
  /// Optional tamper-evident audit sink: a relaunch that fails attestation
  /// and a budget-exhausted escalation are security-relevant events, and an
  /// operator reading the sealed log should see them even if the supervisor
  /// (or the host around it) is later compromised.
  health::AuditLog* audit = nullptr;
};

class Supervisor {
 public:
  /// The assembly must outlive the supervisor.
  explicit Supervisor(core::Assembly& assembly, SupervisorConfig config = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Supervise one component under the given policy (the manifest's stanza
  /// normally; an explicit policy opts in a component without one).
  /// Errc::no_such_domain for unknown names; idempotent per component.
  Status watch(const std::string& name, const core::RestartPolicy& policy);
  /// Supervise every component whose manifest carries a restart stanza.
  /// Returns how many are now watched.
  Result<std::size_t> watch_all();

  /// One supervision pass: probe every watched component, confirm deaths,
  /// run due relaunches (respecting each component's backoff), escalate
  /// exhausted budgets. Call from the application's event loop; each call
  /// advances the watched substrates' simulated clocks only by what the
  /// probes and relaunches themselves cost.
  struct TickReport {
    std::size_t probed = 0;
    std::size_t deaths_detected = 0;
    std::size_t restarts = 0;
    std::size_t escalations = 0;
  };
  TickReport tick();

  /// Health of a watched component (running for unwatched-but-known ones
  /// would be a lie — Errc::no_such_domain instead).
  Result<Health> health(const std::string& name) const;
  /// Successful relaunches of this component so far.
  Result<std::uint32_t> restarts_of(const std::string& name) const;
  /// True once any component escalated under Escalation::halted.
  bool halted() const { return halted_; }

  /// Called after every successful relaunch (attestation included) with the
  /// component's name and new incarnation number. Re-establish anything
  /// bound to the dead incarnation here: SecureChannel sessions (reset()
  /// and re-handshake), BatchChannel attachments (re-mint endpoints).
  using RestartHook =
      std::function<void(const std::string& name, std::uint32_t incarnation)>;
  void on_restart(RestartHook hook) { hooks_.push_back(std::move(hook)); }

  runtime::RecoveryStats stats() const { return stats_.snapshot(); }

  /// The verifier relaunches attest against (null when unconfigured). The
  /// update orchestrator re-points expectations here when it swaps a
  /// component's image, so supervised restarts accept the new identity.
  core::AttestationVerifier* verifier() const { return config_.verifier; }

  /// Every crash incident this supervisor confirmed, in detection order.
  /// Reports open at confirmation (with the corpse's flight-recorder
  /// snapshot) and close at recovery; an escalated incident stays open.
  const std::vector<RecoveryReport>& reports() const { return reports_; }

 private:
  struct Watch {
    core::ComponentRef ref;
    std::string name;
    core::RestartPolicy policy;
    Health state = Health::running;
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::ChannelId heartbeat = 0;
    /// Probe via measurement() instead of a heartbeat channel (substrates
    /// with no room for a probe domain).
    bool management_probe = false;
    std::uint32_t consecutive_dead = 0;
    std::uint32_t restarts_used = 0;
    Cycles detected_at = 0;      // first dead probe of the current incident
    Cycles next_attempt_at = 0;  // backoff gate for the next relaunch
    static constexpr std::size_t kNoReport = ~std::size_t{0};
    /// Index into reports_ of the current incident's open report.
    std::size_t open_report = kNoReport;
  };

  /// Probe outcome, mapped from the heartbeat receive().
  enum class Probe { alive, dead };

  Result<substrate::DomainId> probe_domain(
      substrate::IsolationSubstrate& substrate);
  Status establish_heartbeat(Watch& watch);
  Probe probe(Watch& watch);
  void confirm_death(Watch& watch, Cycles now, TickReport& report);
  void attempt_restart(Watch& watch, TickReport& report);
  Status verify_relaunch(const Watch& watch);
  void escalate(Watch& watch, TickReport& report);

  core::Assembly& assembly_;
  SupervisorConfig config_;
  std::map<std::string, Watch> watches_;
  /// One probe domain per substrate hosting a supervised component.
  std::map<substrate::IsolationSubstrate*, substrate::DomainId> probes_;
  std::vector<RestartHook> hooks_;
  std::vector<RecoveryReport> reports_;
  runtime::MetricsHub::RecoverySlot own_stats_;
  runtime::MetricsHub::RecoveryRef stats_;
  bool halted_ = false;
};

}  // namespace lateral::supervisor
