#include "net/remote.h"

namespace lateral::net {

Bytes encode_rpc_request(const std::string& method, BytesView payload) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(method.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(method.size()));
  out.insert(out.end(), method.begin(), method.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<RpcRequest> decode_rpc_request(BytesView plain) {
  if (plain.size() < 2) return Errc::invalid_argument;
  const std::size_t method_len = (std::size_t(plain[0]) << 8) | plain[1];
  if (plain.size() < 2 + method_len) return Errc::invalid_argument;
  RpcRequest out;
  out.method.assign(plain.begin() + 2,
                    plain.begin() + 2 + static_cast<long>(method_len));
  out.payload.assign(plain.begin() + 2 + static_cast<long>(method_len),
                     plain.end());
  return out;
}

Bytes encode_rpc_reply(Errc error, BytesView payload) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(error));
  if (error == Errc::ok)
    out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Bytes> decode_rpc_reply(BytesView plain) {
  if (plain.empty()) return Errc::invalid_argument;
  const Errc remote_error = static_cast<Errc>(plain[0]);
  if (remote_error != Errc::ok) return remote_error;
  return Bytes(plain.begin() + 1, plain.end());
}

RemoteDispatcher::RemoteDispatcher(SecureChannelEndpoint& channel)
    : channel_(channel) {
  if (!channel.established())
    throw Error("RemoteDispatcher needs an established channel");
}

Status RemoteDispatcher::register_method(const std::string& name,
                                         Method handler) {
  if (name.empty() || !handler) return Errc::invalid_argument;
  const auto [it, inserted] = methods_.emplace(name, std::move(handler));
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Result<Bytes> RemoteDispatcher::handle(BytesView request_record) {
  auto plain = channel_.open_record(request_record);
  if (!plain) return plain.error();  // unauthentic: do not even reply

  auto request = decode_rpc_request(*plain);
  Bytes reply_plain;
  if (!request) {
    reply_plain = encode_rpc_reply(Errc::invalid_argument, {});
  } else {
    const auto it = methods_.find(request->method);
    if (it == methods_.end()) {
      reply_plain = encode_rpc_reply(Errc::invalid_argument, {});
    } else {
      Result<Bytes> result = it->second(request->payload);
      reply_plain = result ? encode_rpc_reply(Errc::ok, *result)
                           : encode_rpc_reply(result.error(), {});
    }
  }
  return channel_.seal_record(reply_plain);
}

RemoteProxy::RemoteProxy(SecureChannelEndpoint& channel, Transport transport)
    : channel_(channel), transport_(std::move(transport)) {
  if (!transport_) throw Error("RemoteProxy needs a transport");
}

Result<Bytes> RemoteProxy::call(const std::string& method, BytesView payload) {
  auto record = channel_.seal_record(encode_rpc_request(method, payload));
  if (!record) return record.error();

  auto reply_record = transport_(*record);
  if (!reply_record) return reply_record.error();

  auto reply = channel_.open_record(*reply_record);
  if (!reply) return reply.error();
  return decode_rpc_reply(*reply);
}

}  // namespace lateral::net
