// SecureChannel: the "TLS component" of the paper's email-client example and
// the meter<->utility link of Fig. 3.
//
// A three-message handshake over an untrusted network (net::SimNetwork):
//
//   msg1  I -> R : dh_pub_i || nonce_i
//   msg2  R -> I : dh_pub_r || nonce_r || quote_R            (optional)
//   msg3  I -> R : quote_I                                    (optional)
//
// Each quote is produced by the sender's isolation substrate and binds
// H(peer_nonce || dh_pub_i || dh_pub_r) — so verifying a quote proves the
// *attested code identity* is the one holding the DH key for THIS session.
// A man in the middle cannot splice: substituting either DH half breaks the
// binding, and it cannot forge quotes without fused device keys.
//
// Either side may require attestation of its peer (mutual in the smart
// meter scenario: the meter verifies the SGX anonymizer, the utility
// verifies the TrustZone metering component).
//
// Records are AES-128-CTR + HMAC (encrypt-then-MAC) with per-direction
// monotonic sequence numbers: tampering, reordering and replay all surface
// as Errc::verification_failed.
#pragma once

#include <optional>
#include <string>

#include "core/attestation.h"
#include "crypto/aes.h"
#include "crypto/dh.h"
#include "crypto/hmac.h"
#include "substrate/substrate.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::net {

/// This endpoint's ability to attest itself.
struct ProverConfig {
  substrate::IsolationSubstrate* substrate = nullptr;
  substrate::DomainId domain = substrate::kInvalidDomain;
};

/// This endpoint's requirements on the peer.
struct VerifierConfig {
  core::AttestationVerifier* verifier = nullptr;
  std::string expected_peer;  // logical name registered with the verifier
};

enum class Role : std::uint8_t { initiator, responder };

class SecureChannelEndpoint {
 public:
  SecureChannelEndpoint(Role role, BytesView drbg_seed,
                        std::optional<ProverConfig> prover,
                        std::optional<VerifierConfig> verifier);

  /// Resume a previously attested session from out-of-band key material
  /// (lateral::fleet resumption tickets): the endpoint comes up established
  /// immediately over the same record layer — no DH generation, no quotes.
  /// Both sides must derive identical key_material or every record fails
  /// authentication; the trust in the peer's code identity carries over
  /// from the full handshake that minted the material.
  static std::unique_ptr<SecureChannelEndpoint> resume(Role role,
                                                       BytesView key_material);

  // --- Handshake (drive according to role) --------------------------------
  /// Initiator: produce msg1.
  Result<Bytes> start();
  /// Responder: consume msg1, produce msg2.
  Result<Bytes> handle_msg1(BytesView msg1);
  /// Initiator: consume msg2 (verifies the responder's quote when a
  /// verifier is configured), produce msg3.
  Result<Bytes> handle_msg2(BytesView msg2);
  /// Responder: consume msg3 (verifies the initiator's quote when
  /// required). Channel is established afterwards.
  Status handle_msg3(BytesView msg3);

  bool established() const { return established_; }

  /// Tear the session down for re-establishment: fresh DH pair, cleared
  /// nonces/keys/sequence numbers. After a supervised restart of the domain
  /// behind this endpoint, the old session keys belong to the dead
  /// incarnation — both sides reset() and run the handshake again (the
  /// restarted side re-attests with its re-measured identity).
  void reset();

  // --- Record layer ---------------------------------------------------------
  Result<Bytes> seal_record(BytesView plaintext);
  Result<Bytes> open_record(BytesView wire);

 private:
  struct ResumeTag {};
  SecureChannelEndpoint(ResumeTag, Role role, BytesView key_material);

  Status derive_keys();

  Role role_;
  crypto::HmacDrbg drbg_;
  std::optional<ProverConfig> prover_;
  std::optional<VerifierConfig> verifier_;

  crypto::DhKeyPair dh_{};
  crypto::Bignum peer_dh_;
  Bytes nonce_local_;   // challenge we issued to the peer
  Bytes nonce_peer_;    // challenge the peer issued to us
  Bytes dh_i_wire_;     // initiator public value, wire form
  Bytes dh_r_wire_;

  std::optional<crypto::Aead> aead_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  bool established_ = false;
};

/// The attestation context string both sides bind quotes to.
Bytes handshake_context(BytesView dh_i_wire, BytesView dh_r_wire);

}  // namespace lateral::net
