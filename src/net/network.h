// Simulated untrusted network.
//
// The paper (§II-D): "communication busses within a system must be
// considered untrusted networks as well, the difference merely is the
// length of the wires." SimNetwork is that untrusted medium: datagram
// delivery between named endpoints with an optional man-in-the-middle that
// can observe, drop, modify, reorder or replay every message. SecureChannel
// is built to survive exactly this adversary.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "util/result.h"
#include "util/types.h"

namespace lateral::net {

struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t modified = 0;
};

class SimNetwork {
 public:
  /// The man in the middle. Return the (possibly modified) payload to
  /// deliver, or nullopt to drop. The tamperer may also stash copies and
  /// inject them later via inject().
  using Tamperer = std::function<std::optional<Bytes>(
      const std::string& from, const std::string& to, BytesView payload)>;

  Status register_endpoint(const std::string& name);

  /// Send a datagram; passes through the tamperer if one is installed.
  Status send(const std::string& from, const std::string& to,
              BytesView payload);

  /// Inject a raw datagram as the attacker (forgery / replay).
  Status inject(const std::string& claimed_from, const std::string& to,
                BytesView payload);

  /// Dequeue the next datagram for `endpoint`; would_block when none.
  struct Datagram {
    std::string from;  // claimed source — NOT authenticated
    Bytes payload;
  };
  Result<Datagram> receive(const std::string& endpoint);

  void set_tamperer(Tamperer tamperer) { tamperer_ = std::move(tamperer); }
  void clear_tamperer() { tamperer_ = nullptr; }

  const NetStats& stats() const { return stats_; }

 private:
  std::map<std::string, std::deque<Datagram>> queues_;
  Tamperer tamperer_;
  NetStats stats_;
};

}  // namespace lateral::net
