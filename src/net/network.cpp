#include "net/network.h"

namespace lateral::net {

Status SimNetwork::register_endpoint(const std::string& name) {
  if (name.empty()) return Errc::invalid_argument;
  const auto [it, inserted] = queues_.emplace(name, std::deque<Datagram>{});
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Status SimNetwork::send(const std::string& from, const std::string& to,
                        BytesView payload) {
  if (!queues_.contains(from)) return Errc::invalid_argument;
  const auto it = queues_.find(to);
  if (it == queues_.end()) return Errc::invalid_argument;

  stats_.messages++;
  stats_.bytes += payload.size();

  Bytes delivered(payload.begin(), payload.end());
  if (tamperer_) {
    auto result = tamperer_(from, to, payload);
    if (!result) {
      stats_.dropped++;
      return Status::success();  // silently dropped: sender can't tell
    }
    if (!ct_equal(*result, payload)) stats_.modified++;
    delivered = std::move(*result);
  }
  it->second.push_back(Datagram{from, std::move(delivered)});
  return Status::success();
}

Status SimNetwork::inject(const std::string& claimed_from,
                          const std::string& to, BytesView payload) {
  const auto it = queues_.find(to);
  if (it == queues_.end()) return Errc::invalid_argument;
  it->second.push_back(Datagram{claimed_from, Bytes(payload.begin(), payload.end())});
  return Status::success();
}

Result<SimNetwork::Datagram> SimNetwork::receive(const std::string& endpoint) {
  const auto it = queues_.find(endpoint);
  if (it == queues_.end()) return Errc::invalid_argument;
  if (it->second.empty()) return Errc::would_block;
  Datagram datagram = std::move(it->second.front());
  it->second.pop_front();
  return datagram;
}

}  // namespace lateral::net
