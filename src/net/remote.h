// Remote component invocation over a SecureChannel.
//
// The paper (§I): "our envisioned architecture also extends across the
// network, allowing trusted component interaction in distributed systems";
// and (§III-D): reusable components "can even form distributed confidence
// domains across machine boundaries."
//
// RemoteDispatcher exposes a component's methods on the server side of an
// established SecureChannelEndpoint; RemoteProxy invokes them from the
// client side. Requests and replies ride the channel's AEAD records, so
// everything the channel guarantees (peer code identity, confidentiality,
// integrity, ordering, replay protection) extends to the RPC layer —
// including error returns: a refusal travels back as data, not as an
// unauthenticated network artifact.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/secure_channel.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::net {

// --- RPC wire codec -------------------------------------------------------
// Request: [u16 method_len | method | payload]
// Reply:   [u8 errc | payload (on success)]
// Shared between RemoteProxy/RemoteDispatcher and the fleet multiplexer,
// which pipelines many sealed requests before reading any reply and so
// cannot use the synchronous proxy.

Bytes encode_rpc_request(const std::string& method, BytesView payload);

struct RpcRequest {
  std::string method;
  Bytes payload;
};
Result<RpcRequest> decode_rpc_request(BytesView plain);

Bytes encode_rpc_reply(Errc error, BytesView payload);

/// Unwrap a reply: the remote error code travels back as the Result error.
Result<Bytes> decode_rpc_reply(BytesView plain);

/// Server side: dispatches incoming records to registered methods.
class RemoteDispatcher {
 public:
  using Method = std::function<Result<Bytes>(BytesView request)>;

  /// `channel` must already be established; the dispatcher borrows it.
  explicit RemoteDispatcher(SecureChannelEndpoint& channel);

  Status register_method(const std::string& name, Method handler);

  /// Process one sealed request record and produce the sealed reply record.
  /// Errc::verification_failed when the request record fails channel
  /// authentication (the caller should drop the connection).
  Result<Bytes> handle(BytesView request_record);

 private:
  SecureChannelEndpoint& channel_;
  std::map<std::string, Method> methods_;
};

/// Client side: seals requests and opens replies.
class RemoteProxy {
 public:
  /// `transport` delivers a sealed request record to the peer and returns
  /// the sealed reply record (e.g. two SimNetwork hops).
  using Transport = std::function<Result<Bytes>(BytesView record)>;

  RemoteProxy(SecureChannelEndpoint& channel, Transport transport);

  /// Invoke a remote method. Remote refusals come back as their original
  /// error codes; transport/authentication problems surface as
  /// verification_failed / io_error.
  Result<Bytes> call(const std::string& method, BytesView payload);

 private:
  SecureChannelEndpoint& channel_;
  Transport transport_;
};

}  // namespace lateral::net
