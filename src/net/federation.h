// Federation: establish an attested component-to-component link between
// two machines over a SimNetwork, and pump synchronous RPC across it.
//
// This packages the Fig. 3 wiring pattern (handshake message exchange +
// RemoteProxy/RemoteDispatcher) into one call, so distributed scenarios
// read like the paper's prose: "configure communication relationships
// between them" — across machine boundaries.
#pragma once

#include <memory>
#include <string>

#include "net/network.h"
#include "net/remote.h"
#include "net/secure_channel.h"
#include "util/result.h"

namespace lateral::net {

/// One side of an established federated link.
struct LinkSite {
  std::unique_ptr<SecureChannelEndpoint> channel;
  std::unique_ptr<RemoteDispatcher> dispatcher;
};

/// Attestation roles for both sides of establish_link. Each side may attest
/// itself (prover) and/or require the peer's code identity (verifier);
/// leaving a field empty opts that side out of the respective role. The
/// named-field form replaces four positional std::optional parameters whose
/// call sites were unreadable and silently order-fragile.
struct HandshakeConfig {
  std::optional<ProverConfig> initiator_prover;
  std::optional<VerifierConfig> initiator_verifier;
  std::optional<ProverConfig> responder_prover;
  std::optional<VerifierConfig> responder_verifier;
};

/// An established bidirectional link. The initiator calls remote methods
/// through `proxy`; the responder registers methods on its dispatcher.
/// (Symmetric RPC would use a second link in the opposite direction.)
class FederatedLink {
 public:
  RemoteProxy& proxy() { return *proxy_; }
  RemoteDispatcher& responder_dispatcher() { return *responder_.dispatcher; }

  SecureChannelEndpoint& initiator_channel() { return *initiator_channel_; }
  SecureChannelEndpoint& responder_channel() { return *responder_.channel; }

 private:
  friend Result<std::unique_ptr<FederatedLink>> establish_link(
      SimNetwork&, const std::string&, const std::string&,
      const HandshakeConfig&);

  FederatedLink() = default;

  SimNetwork* network_ = nullptr;
  std::string initiator_endpoint_;
  std::string responder_endpoint_;
  std::unique_ptr<SecureChannelEndpoint> initiator_channel_;
  LinkSite responder_;
  std::unique_ptr<RemoteProxy> proxy_;
};

/// Run the three-message attested handshake between two (registered)
/// network endpoints and return the established link.
/// Errc::verification_failed when either side refuses the other.
Result<std::unique_ptr<FederatedLink>> establish_link(
    SimNetwork& network, const std::string& initiator_endpoint,
    const std::string& responder_endpoint, const HandshakeConfig& config);

}  // namespace lateral::net
