#include "net/secure_channel.h"

#include "crypto/sha256.h"

namespace lateral::net {
namespace {

void append_blob(Bytes& out, BytesView blob) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(blob.size() >> (8 * i)));
  out.insert(out.end(), blob.begin(), blob.end());
}

Result<Bytes> read_blob(BytesView wire, std::size_t& offset) {
  if (offset + 4 > wire.size()) return Errc::invalid_argument;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | wire[offset++];
  if (offset + len > wire.size()) return Errc::invalid_argument;
  Bytes out(wire.begin() + static_cast<long>(offset),
            wire.begin() + static_cast<long>(offset + len));
  offset += len;
  return out;
}

}  // namespace

Bytes handshake_context(BytesView dh_i_wire, BytesView dh_r_wire) {
  Bytes context = to_bytes("lateral.sc.v1:");
  context.insert(context.end(), dh_i_wire.begin(), dh_i_wire.end());
  context.insert(context.end(), dh_r_wire.begin(), dh_r_wire.end());
  return context;
}

SecureChannelEndpoint::SecureChannelEndpoint(
    Role role, BytesView drbg_seed, std::optional<ProverConfig> prover,
    std::optional<VerifierConfig> verifier)
    : role_(role),
      drbg_(drbg_seed),
      prover_(prover),
      verifier_(verifier) {
  if (verifier_ && !verifier_->verifier)
    throw Error("SecureChannelEndpoint: null verifier");
  if (prover_ && !prover_->substrate)
    throw Error("SecureChannelEndpoint: null prover substrate");
  dh_ = crypto::DhKeyPair::generate(crypto::DhGroup::oakley1(), drbg_);
}

SecureChannelEndpoint::SecureChannelEndpoint(ResumeTag, Role role,
                                             BytesView key_material)
    : role_(role), drbg_(key_material) {
  // Resumed sessions never run the handshake, so no DH pair is generated —
  // skipping that keygen (plus the quote exchange) is the entire point of
  // the one-RTT path.
  aead_.emplace(key_material);
  established_ = true;
}

std::unique_ptr<SecureChannelEndpoint> SecureChannelEndpoint::resume(
    Role role, BytesView key_material) {
  return std::unique_ptr<SecureChannelEndpoint>(
      new SecureChannelEndpoint(ResumeTag{}, role, key_material));
}

void SecureChannelEndpoint::reset() {
  dh_ = crypto::DhKeyPair::generate(crypto::DhGroup::oakley1(), drbg_);
  peer_dh_ = crypto::Bignum();
  nonce_local_.clear();
  nonce_peer_.clear();
  dh_i_wire_.clear();
  dh_r_wire_.clear();
  aead_.reset();
  send_seq_ = 0;
  recv_seq_ = 0;
  established_ = false;
}

Result<Bytes> SecureChannelEndpoint::start() {
  if (role_ != Role::initiator) return Errc::invalid_argument;
  nonce_local_ = verifier_ ? verifier_->verifier->make_challenge()
                           : drbg_.generate(32);
  dh_i_wire_ = dh_.public_key.to_bytes();
  Bytes msg1;
  append_blob(msg1, dh_i_wire_);
  append_blob(msg1, nonce_local_);
  return msg1;
}

Result<Bytes> SecureChannelEndpoint::handle_msg1(BytesView msg1) {
  if (role_ != Role::responder) return Errc::invalid_argument;
  std::size_t offset = 0;
  auto dh_i = read_blob(msg1, offset);
  if (!dh_i) return dh_i.error();
  auto nonce_i = read_blob(msg1, offset);
  if (!nonce_i) return nonce_i.error();
  if (offset != msg1.size()) return Errc::invalid_argument;

  dh_i_wire_ = std::move(*dh_i);
  nonce_peer_ = std::move(*nonce_i);
  peer_dh_ = crypto::Bignum::from_bytes(dh_i_wire_);
  dh_r_wire_ = dh_.public_key.to_bytes();
  nonce_local_ = verifier_ ? verifier_->verifier->make_challenge()
                           : drbg_.generate(32);

  Bytes msg2;
  append_blob(msg2, dh_r_wire_);
  append_blob(msg2, nonce_local_);

  // Attest ourselves against the peer's challenge, bound to this exchange.
  Bytes quote_wire;
  if (prover_) {
    auto quote = core::respond_to_challenge(
        *prover_->substrate, prover_->domain, nonce_peer_,
        handshake_context(dh_i_wire_, dh_r_wire_));
    if (!quote) return quote.error();
    quote_wire = std::move(*quote);
  }
  append_blob(msg2, quote_wire);

  if (const Status s = derive_keys(); !s.ok()) return s.error();
  return msg2;
}

Result<Bytes> SecureChannelEndpoint::handle_msg2(BytesView msg2) {
  if (role_ != Role::initiator) return Errc::invalid_argument;
  std::size_t offset = 0;
  auto dh_r = read_blob(msg2, offset);
  if (!dh_r) return dh_r.error();
  auto nonce_r = read_blob(msg2, offset);
  if (!nonce_r) return nonce_r.error();
  auto quote_wire = read_blob(msg2, offset);
  if (!quote_wire) return quote_wire.error();
  if (offset != msg2.size()) return Errc::invalid_argument;

  dh_r_wire_ = std::move(*dh_r);
  nonce_peer_ = std::move(*nonce_r);
  peer_dh_ = crypto::Bignum::from_bytes(dh_r_wire_);

  if (verifier_) {
    // Refuse to talk to a manipulated instance (Fig. 3 flow).
    if (const Status s = verifier_->verifier->verify(
            verifier_->expected_peer, *quote_wire, nonce_local_,
            handshake_context(dh_i_wire_, dh_r_wire_));
        !s.ok())
      return Errc::verification_failed;
  }

  Bytes msg3;
  Bytes my_quote;
  if (prover_) {
    auto quote = core::respond_to_challenge(
        *prover_->substrate, prover_->domain, nonce_peer_,
        handshake_context(dh_i_wire_, dh_r_wire_));
    if (!quote) return quote.error();
    my_quote = std::move(*quote);
  }
  append_blob(msg3, my_quote);

  if (const Status s = derive_keys(); !s.ok()) return s.error();
  established_ = true;
  return msg3;
}

Status SecureChannelEndpoint::handle_msg3(BytesView msg3) {
  if (role_ != Role::responder) return Errc::invalid_argument;
  std::size_t offset = 0;
  auto quote_wire = read_blob(msg3, offset);
  if (!quote_wire) return quote_wire.error();
  if (offset != msg3.size()) return Errc::invalid_argument;

  if (verifier_) {
    if (quote_wire->empty()) return Errc::verification_failed;
    if (const Status s = verifier_->verifier->verify(
            verifier_->expected_peer, *quote_wire, nonce_local_,
            handshake_context(dh_i_wire_, dh_r_wire_));
        !s.ok())
      return Errc::verification_failed;
  }
  established_ = true;
  return Status::success();
}

Status SecureChannelEndpoint::derive_keys() {
  auto shared = crypto::dh_shared_secret(crypto::DhGroup::oakley1(),
                                         dh_.private_key, peer_dh_);
  if (!shared) return Errc::verification_failed;

  // Bind the transcript into the keys: any disagreement about the
  // handshake yields incompatible keys, not a silent downgrade. Both sides
  // hash in canonical order (initiator's nonce first).
  crypto::Sha256 canonical;
  canonical.update(dh_i_wire_);
  canonical.update(dh_r_wire_);
  if (role_ == Role::initiator) {
    canonical.update(nonce_local_);
    canonical.update(nonce_peer_);
  } else {
    canonical.update(nonce_peer_);
    canonical.update(nonce_local_);
  }
  const crypto::Digest t = canonical.finish();

  const Bytes key_material =
      crypto::hkdf(crypto::digest_bytes(t), *shared,
                   to_bytes("lateral.securechannel.keys.v1"), 32);
  aead_.emplace(key_material);
  return Status::success();
}

Result<Bytes> SecureChannelEndpoint::seal_record(BytesView plaintext) {
  if (!established_ || !aead_) return Errc::would_block;
  // Per-direction nonce spaces: initiator even, responder odd.
  const std::uint64_t nonce =
      (send_seq_ << 1) | (role_ == Role::responder ? 1 : 0);
  ++send_seq_;
  const Bytes aad = to_bytes(role_ == Role::initiator ? "i2r" : "r2i");
  const crypto::SealedBox box = aead_->seal(nonce, aad, plaintext);

  Bytes wire;
  for (int i = 7; i >= 0; --i)
    wire.push_back(static_cast<std::uint8_t>(box.nonce >> (8 * i)));
  wire.insert(wire.end(), box.tag.begin(), box.tag.end());
  wire.insert(wire.end(), box.ciphertext.begin(), box.ciphertext.end());
  return wire;
}

Result<Bytes> SecureChannelEndpoint::open_record(BytesView wire) {
  if (!established_ || !aead_) return Errc::would_block;
  if (wire.size() < 24) return Errc::invalid_argument;

  crypto::SealedBox box;
  for (int i = 0; i < 8; ++i) box.nonce = (box.nonce << 8) | wire[i];
  std::copy(wire.begin() + 8, wire.begin() + 24, box.tag.begin());
  box.ciphertext.assign(wire.begin() + 24, wire.end());

  // Strict ordering: the next record from the peer must carry exactly the
  // expected sequence number in the peer's nonce space.
  const std::uint64_t expected_nonce =
      (recv_seq_ << 1) | (role_ == Role::initiator ? 1 : 0);
  if (box.nonce != expected_nonce) return Errc::verification_failed;

  const Bytes aad = to_bytes(role_ == Role::initiator ? "r2i" : "i2r");
  auto plain = aead_->open(box, aad);
  if (!plain) return Errc::verification_failed;
  ++recv_seq_;
  return std::move(*plain);
}

}  // namespace lateral::net
