#include "net/federation.h"

namespace lateral::net {
namespace {

/// Receive the next datagram for `endpoint`, or io_error if the network
/// dropped it (a MITM may do that; the handshake then simply fails).
Result<Bytes> next_payload(SimNetwork& network, const std::string& endpoint) {
  auto datagram = network.receive(endpoint);
  if (!datagram) return Errc::io_error;
  return datagram->payload;
}

}  // namespace

Result<std::unique_ptr<FederatedLink>> establish_link(
    SimNetwork& network, const std::string& initiator_endpoint,
    const std::string& responder_endpoint, const HandshakeConfig& config) {
  auto link = std::unique_ptr<FederatedLink>(new FederatedLink());
  link->network_ = &network;
  link->initiator_endpoint_ = initiator_endpoint;
  link->responder_endpoint_ = responder_endpoint;

  link->initiator_channel_ = std::make_unique<SecureChannelEndpoint>(
      Role::initiator, to_bytes("fed.i:" + initiator_endpoint),
      config.initiator_prover, config.initiator_verifier);
  link->responder_.channel = std::make_unique<SecureChannelEndpoint>(
      Role::responder, to_bytes("fed.r:" + responder_endpoint),
      config.responder_prover, config.responder_verifier);

  // The three-message handshake, across the (possibly hostile) network.
  auto msg1 = link->initiator_channel_->start();
  if (!msg1) return msg1.error();
  if (const Status s = network.send(initiator_endpoint, responder_endpoint,
                                    *msg1);
      !s.ok())
    return s.error();
  auto msg1_rx = next_payload(network, responder_endpoint);
  if (!msg1_rx) return msg1_rx.error();

  auto msg2 = link->responder_.channel->handle_msg1(*msg1_rx);
  if (!msg2) return msg2.error();
  if (const Status s = network.send(responder_endpoint, initiator_endpoint,
                                    *msg2);
      !s.ok())
    return s.error();
  auto msg2_rx = next_payload(network, initiator_endpoint);
  if (!msg2_rx) return msg2_rx.error();

  auto msg3 = link->initiator_channel_->handle_msg2(*msg2_rx);
  if (!msg3) return msg3.error();
  if (const Status s = network.send(initiator_endpoint, responder_endpoint,
                                    *msg3);
      !s.ok())
    return s.error();
  auto msg3_rx = next_payload(network, responder_endpoint);
  if (!msg3_rx) return msg3_rx.error();
  if (const Status s = link->responder_.channel->handle_msg3(*msg3_rx);
      !s.ok())
    return s.error();

  // RPC plumbing: the proxy's transport pushes a record through the
  // network, lets the responder dispatch it, and carries the reply back.
  link->responder_.dispatcher =
      std::make_unique<RemoteDispatcher>(*link->responder_.channel);
  auto* raw = link.get();
  link->proxy_ = std::make_unique<RemoteProxy>(
      *link->initiator_channel_,
      [raw](BytesView record) -> Result<Bytes> {
        if (const Status s = raw->network_->send(raw->initiator_endpoint_,
                                                 raw->responder_endpoint_,
                                                 record);
            !s.ok())
          return s.error();
        auto request = next_payload(*raw->network_, raw->responder_endpoint_);
        if (!request) return request.error();
        auto reply = raw->responder_.dispatcher->handle(*request);
        if (!reply) return reply.error();
        if (const Status s = raw->network_->send(raw->responder_endpoint_,
                                                 raw->initiator_endpoint_,
                                                 *reply);
            !s.ok())
          return s.error();
        return next_payload(*raw->network_, raw->initiator_endpoint_);
      });
  return link;
}

}  // namespace lateral::net
