// Apple SEP-style coprocessor substrate (paper §II-B "Apple Secure Enclave
// Processor").
//
// Reproduced structure:
//  * a separate security processor next to the application CPU — "strong
//    isolation with reduced side channel opportunities compared to
//    shared-hardware solutions", "essentially an on-device HSM";
//  * inflexible: exactly TWO separated execution environments — one legacy
//    domain (the application-processor world) and one trusted component
//    (the SEP firmware/services);
//  * the SEP "accesses DRAM with inline encryption": its memory is
//    AES-encrypted + MACed whenever resident off-chip, so the physical bus
//    attacker sees ciphertext;
//  * all interaction crosses a mailbox bus: invocation cost sits between
//    microkernel IPC and a TPM command;
//  * biometric/key material never crosses to the application processor.
#pragma once

#include "crypto/aes.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::sep {

class Sep final : public substrate::IsolationSubstrate {
 public:
  Sep(hw::Machine& machine, substrate::SubstrateConfig config);

  const substrate::SubstrateInfo& info() const override;

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  /// Only the SEP side can attest/seal; the application processor has no
  /// access to the fused keys.
  Result<substrate::Quote> attest(substrate::DomainId actor,
                                  BytesView user_data) override;
  Result<Bytes> seal(substrate::DomainId actor, BytesView plaintext) override;
  Result<Bytes> unseal(substrate::DomainId actor, BytesView sealed) override;

  Result<std::vector<hw::PhysAddr>> domain_frames(
      substrate::DomainId domain) const;

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// Regions are a DMA window between the application processor and the
  /// coprocessor: the mailbox programs the window once; the SEP's inline
  /// engine then moves bytes without a mailbox round trip per access.
  Cycles region_map_cost(std::size_t pages) const override;

 private:
  struct SepSpace {
    bool sep_side = false;  // true => runs on the coprocessor
    std::vector<hw::PhysAddr> frames;
    std::vector<std::uint64_t> page_versions;
    std::vector<crypto::Digest> page_macs;
  };

  static constexpr std::uint64_t kSepTag = 0x5E90'0001;

  Result<const SepSpace*> space_of(substrate::DomainId id) const;
  Result<SepSpace*> space_of(substrate::DomainId id);

  Bytes inline_crypt(hw::PhysAddr page_addr, std::uint64_t version,
                     BytesView data) const;
  crypto::Digest inline_mac(hw::PhysAddr page_addr, std::uint64_t version,
                            BytesView ciphertext) const;
  Result<Bytes> read_page(const SepSpace& space, std::size_t page) const;
  Status write_page(SepSpace& space, std::size_t page, BytesView content);

  substrate::SubstrateInfo info_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, SepSpace> spaces_;
  std::size_t trusted_count_ = 0;
  std::size_t legacy_count_ = 0;
  crypto::Aes128Key inline_key_{};
  Bytes inline_mac_key_;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::sep
