#include "sep/sep.h"

#include "crypto/hmac.h"

namespace lateral::sep {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::DomainKind;
using substrate::Feature;

Sep::Sep(hw::Machine& machine, substrate::SubstrateConfig config)
    : IsolationSubstrate(machine, std::move(config)), frames_(machine.dram()) {
  info_.name = "sep";
  info_.features = Feature::spatial_isolation | Feature::legacy_hosting |
                   Feature::memory_encryption | Feature::sealed_storage |
                   Feature::attestation;
  // An L4-family kernel plus SEP services firmware.
  info_.tcb_loc = 25'000;
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software,
                           AttackerModel::physical_bus};

  Bytes fuse_key(machine_.fuses().device_key().begin(),
                 machine_.fuses().device_key().end());
  const Bytes material = crypto::hkdf(to_bytes("sep.inline.v1"), fuse_key,
                                      to_bytes("enc+mac"), 48);
  std::copy(material.begin(), material.begin() + 16, inline_key_.begin());
  inline_mac_key_.assign(material.begin() + 16, material.end());
}

const substrate::SubstrateInfo& Sep::info() const { return info_; }

Status Sep::admit_domain(const substrate::DomainSpec& spec) const {
  // "Inflexible and offers only two separated execution environments."
  if (spec.kind == DomainKind::trusted_component && trusted_count_ >= 1)
    return Errc::exhausted;
  if (spec.kind == DomainKind::legacy && legacy_count_ >= 1)
    return Errc::exhausted;
  if (spec.memory_pages == 0) return Errc::invalid_argument;
  return Status::success();
}

Bytes Sep::inline_crypt(hw::PhysAddr page_addr, std::uint64_t version,
                        BytesView data) const {
  const std::uint64_t nonce = page_addr ^ (version << 20) ^ 0x5E90ULL << 48;
  return crypto::aes128_ctr(inline_key_, nonce, data);
}

crypto::Digest Sep::inline_mac(hw::PhysAddr page_addr, std::uint64_t version,
                               BytesView ciphertext) const {
  crypto::Hmac mac(inline_mac_key_);
  std::uint8_t header[16];
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<std::uint8_t>(page_addr >> (56 - 8 * i));
    header[8 + i] = static_cast<std::uint8_t>(version >> (56 - 8 * i));
  }
  mac.update(BytesView(header, sizeof(header)));
  mac.update(ciphertext);
  return mac.finish();
}

Status Sep::attach_memory(DomainId id, DomainRecord& record) {
  SepSpace space;
  space.sep_side = record.spec.kind == DomainKind::trusted_component;
  space.frames.reserve(record.spec.memory_pages);
  for (std::size_t i = 0; i < record.spec.memory_pages; ++i) {
    auto frame = frames_.allocate(1);
    if (!frame) {
      for (const hw::PhysAddr f : space.frames) {
        (void)machine_.memory().set_page_owner(f, 0);
        (void)frames_.free(f, 1);
      }
      return frame.error();
    }
    if (space.sep_side) {
      if (const Status s = machine_.memory().set_page_owner(*frame, kSepTag);
          !s.ok())
        return s;
    }
    space.frames.push_back(*frame);
  }
  space.page_versions.assign(space.frames.size(), 0);
  space.page_macs.resize(space.frames.size());

  Bytes code(record.spec.image.code);
  code.resize(space.frames.size() * hw::kPageSize, 0);
  for (std::size_t i = 0; i < space.frames.size(); ++i) {
    const BytesView page(code.data() + i * hw::kPageSize, hw::kPageSize);
    if (space.sep_side) {
      space.page_versions[i] = 1;
      const Bytes ct = inline_crypt(space.frames[i], 1, page);
      space.page_macs[i] = inline_mac(space.frames[i], 1, ct);
      machine_.memory().load(space.frames[i], ct);
      machine_.charge(0, machine_.costs().sep_inline_crypt_per_16_bytes,
                      hw::kPageSize);
    } else {
      machine_.memory().load(space.frames[i], page);
    }
  }
  if (space.sep_side)
    ++trusted_count_;
  else
    ++legacy_count_;
  spaces_.emplace(id, std::move(space));
  return Status::success();
}

void Sep::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  if (it->second.sep_side) {
    if (trusted_count_ > 0) --trusted_count_;
  } else if (legacy_count_ > 0) {
    --legacy_count_;
  }
  for (const hw::PhysAddr frame : it->second.frames) {
    (void)machine_.memory().set_page_owner(frame, 0);
    (void)frames_.free(frame, 1);
  }
  spaces_.erase(it);
}

Result<const Sep::SepSpace*> Sep::space_of(DomainId id) const {
  const auto it = spaces_.find(id);
  // A corpse has no space (kill released its memory) but still has a record:
  // callers must see domain_dead, not a claim the domain never existed.
  if (it == spaces_.end())
    return is_dead(id) ? Errc::domain_dead : Errc::no_such_domain;
  return &it->second;
}

Result<Sep::SepSpace*> Sep::space_of(DomainId id) {
  const auto it = spaces_.find(id);
  // A corpse has no space (kill released its memory) but still has a record:
  // callers must see domain_dead, not a claim the domain never existed.
  if (it == spaces_.end())
    return is_dead(id) ? Errc::domain_dead : Errc::no_such_domain;
  return &it->second;
}

Result<Bytes> Sep::read_page(const SepSpace& space, std::size_t page) const {
  Bytes raw;
  if (const Status s = machine_.memory().raw_read(space.frames[page],
                                                  hw::kPageSize, raw);
      !s.ok())
    return s.error();
  if (!space.sep_side) return raw;
  const crypto::Digest expected =
      inline_mac(space.frames[page], space.page_versions[page], raw);
  if (!ct_equal(crypto::digest_view(expected),
                crypto::digest_view(space.page_macs[page])))
    return Errc::tamper_detected;
  machine_.charge(0, machine_.costs().sep_inline_crypt_per_16_bytes,
                  hw::kPageSize);
  return inline_crypt(space.frames[page], space.page_versions[page], raw);
}

Status Sep::write_page(SepSpace& space, std::size_t page, BytesView content) {
  if (!space.sep_side)
    return machine_.memory().raw_write(space.frames[page], content);
  const std::uint64_t version = ++space.page_versions[page];
  const Bytes ct = inline_crypt(space.frames[page], version, content);
  space.page_macs[page] = inline_mac(space.frames[page], version, ct);
  machine_.charge(0, machine_.costs().sep_inline_crypt_per_16_bytes,
                  hw::kPageSize);
  return machine_.memory().raw_write(space.frames[page], ct);
}

Result<Bytes> Sep::read_memory(DomainId actor, DomainId target,
                               std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();
  if (actor != target) {
    // Physically separate processors: neither side reaches the other's
    // memory directly; everything goes through the mailbox.
    return Errc::access_denied;
  }
  const SepSpace& space = **target_space;
  if (offset + len > space.frames.size() * hw::kPageSize ||
      offset + len < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, len);
  Bytes out;
  out.reserve(len);
  while (len > 0) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(len, hw::kPageSize - in_page);
    auto content = read_page(space, page);
    if (!content) return content.error();
    out.insert(out.end(), content->begin() + static_cast<long>(in_page),
               content->begin() + static_cast<long>(in_page + n));
    offset += n;
    len -= n;
  }
  return out;
}

Status Sep::write_memory(DomainId actor, DomainId target, std::uint64_t offset,
                         BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  auto actor_space = space_of(actor);
  if (!actor_space) return actor_space.error();
  auto target_space = space_of(target);
  if (!target_space) return target_space.error();
  if (actor != target) return Errc::access_denied;
  SepSpace& space = **target_space;
  if (offset + data.size() > space.frames.size() * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;

  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  while (!data.empty()) {
    const std::size_t page = offset / hw::kPageSize;
    const std::size_t in_page = offset % hw::kPageSize;
    const std::size_t n = std::min(data.size(), hw::kPageSize - in_page);
    auto content = read_page(space, page);
    if (!content) return content.error();
    std::copy(data.begin(), data.begin() + static_cast<long>(n),
              content->begin() + static_cast<long>(in_page));
    if (const Status s = write_page(space, page, *content); !s.ok()) return s;
    data = data.subspan(n);
    offset += n;
  }
  return Status::success();
}

Result<substrate::Quote> Sep::attest(DomainId actor, BytesView user_data) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->sep_side) return Errc::access_denied;
  return IsolationSubstrate::attest(actor, user_data);
}

Result<Bytes> Sep::seal(DomainId actor, BytesView plaintext) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->sep_side) return Errc::access_denied;
  return IsolationSubstrate::seal(actor, plaintext);
}

Result<Bytes> Sep::unseal(DomainId actor, BytesView sealed) {
  auto space = space_of(actor);
  if (!space) return space.error();
  if (!(*space)->sep_side) return Errc::access_denied;
  return IsolationSubstrate::unseal(actor, sealed);
}

Result<std::vector<hw::PhysAddr>> Sep::domain_frames(DomainId domain) const {
  auto space = space_of(domain);
  if (!space) return space.error();
  return (*space)->frames;
}

Cycles Sep::message_cost(std::size_t len) const {
  return machine_.costs().sep_mailbox_round_trip / 2 +
         machine_.costs().memcpy_per_16_bytes * ((len + 15) / 16);
}

substrate::ConcurrencyLaw Sep::concurrency_law() const {
  // The SEP is a single coprocessor behind one mailbox; round trips from
  // any core queue on the same mailbox doorbell.
  return substrate::ConcurrencyLaw::device_serialized;
}

Cycles Sep::attest_cost() const {
  return machine_.costs().sep_mailbox_round_trip;
}

Cycles Sep::region_map_cost(std::size_t pages) const {
  // One mailbox round trip to negotiate the window, then DMA programming
  // per page. Accesses ride the inline crypto engine, not the mailbox.
  return machine_.costs().sep_mailbox_round_trip +
         machine_.costs().dma_setup + machine_.costs().dma_per_page * pages;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "sep", [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<Sep>(machine, config);
      });
}

}  // namespace lateral::sep
