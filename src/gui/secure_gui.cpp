#include "gui/secure_gui.h"

#include <algorithm>

namespace lateral::gui {

SecureGui::SecureGui(int width, int height)
    : width_(width),
      height_(height),
      cells_(static_cast<std::size_t>(width * height), ' '),
      owners_(static_cast<std::size_t>(width * height), 0) {
  if (width < 16 || height < 2)
    throw Error("SecureGui: screen too small for an indicator strip");
  render_indicator();
}

Result<SessionId> SecureGui::create_session(const std::string& label,
                                            TrustLevel trust, Rect viewport) {
  if (label.empty()) return Errc::invalid_argument;
  for (const auto& [id, session] : sessions_) {
    if (session.label == label) return Errc::invalid_argument;  // spoof guard
    if (session.viewport.overlaps(viewport)) return Errc::invalid_argument;
  }
  // Row 0 belongs to the server alone.
  if (viewport.y < 1 || viewport.x < 0 ||
      viewport.x + viewport.width > width_ ||
      viewport.y + viewport.height > height_ || viewport.width <= 0 ||
      viewport.height <= 0)
    return Errc::invalid_argument;

  const SessionId id = next_session_++;
  sessions_.emplace(id, Session{label, trust, viewport, {}});
  return id;
}

Status SecureGui::destroy_session(SessionId session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return Errc::no_such_domain;
  // Clear the viewport.
  for (int y = it->second.viewport.y;
       y < it->second.viewport.y + it->second.viewport.height; ++y) {
    for (int x = it->second.viewport.x;
         x < it->second.viewport.x + it->second.viewport.width; ++x) {
      cells_[static_cast<std::size_t>(y * width_ + x)] = ' ';
      owners_[static_cast<std::size_t>(y * width_ + x)] = 0;
    }
  }
  sessions_.erase(it);
  if (focus_ == session) {
    focus_.reset();
    render_indicator();
  }
  return Status::success();
}

Status SecureGui::draw_text(SessionId session, int x, int y,
                            const std::string& text) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return Errc::no_such_domain;
  const Rect& vp = it->second.viewport;
  // Coordinates are viewport-relative; the whole run must fit inside.
  const int abs_x = vp.x + x;
  const int abs_y = vp.y + y;
  if (x < 0 || y < 0 || abs_y >= vp.y + vp.height ||
      abs_x + static_cast<int>(text.size()) > vp.x + vp.width)
    return Errc::access_denied;  // includes every indicator-spoof attempt
  for (std::size_t i = 0; i < text.size(); ++i) {
    cells_[static_cast<std::size_t>(abs_y * width_ + abs_x) + i] = text[i];
    owners_[static_cast<std::size_t>(abs_y * width_ + abs_x) + i] = session;
  }
  return Status::success();
}

Status SecureGui::set_focus(SessionId session) {
  if (!sessions_.contains(session)) return Errc::no_such_domain;
  focus_ = session;
  render_indicator();
  return Status::success();
}

Status SecureGui::inject_key(char key) {
  if (!focus_) return Errc::would_block;
  sessions_.at(*focus_).input_queue.push_back(static_cast<std::uint8_t>(key));
  return Status::success();
}

Result<Bytes> SecureGui::read_input(SessionId session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return Errc::no_such_domain;
  Bytes out = std::move(it->second.input_queue);
  it->second.input_queue.clear();
  return out;
}

void SecureGui::render_indicator() {
  std::string text;
  if (focus_) {
    const Session& session = sessions_.at(*focus_);
    text = std::string("[ ") +
           (session.trust == TrustLevel::trusted ? "GREEN" : "RED") + " | " +
           session.label + " ]";
  } else {
    text = "[ --- | no focus ]";
  }
  text.resize(static_cast<std::size_t>(width_), ' ');
  for (int x = 0; x < width_; ++x) {
    cells_[static_cast<std::size_t>(x)] = text[static_cast<std::size_t>(x)];
    owners_[static_cast<std::size_t>(x)] = 0;  // server-owned
  }
}

std::string SecureGui::indicator_text() const {
  std::string row = row_text(0);
  // Trim trailing padding for readability.
  while (!row.empty() && row.back() == ' ') row.pop_back();
  return row;
}

std::string SecureGui::row_text(int y) const {
  if (y < 0 || y >= height_) return {};
  return std::string(cells_.begin() + static_cast<long>(y) * width_,
                     cells_.begin() + (static_cast<long>(y) + 1) * width_);
}

SessionId SecureGui::owner_at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return 0;
  return owners_[static_cast<std::size_t>(y * width_ + x)];
}

}  // namespace lateral::gui
