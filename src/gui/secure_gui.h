// Secure GUI server (paper §III-D "Secure Path to the User"; Feske &
// Helmuth's Nitpicker, ACSAC'05).
//
// "When multiple components in the system can interact with the user, it
// can be important to securely indicate which one is currently active.
// Otherwise, it is the user who falls victim to a confused deputy attack by
// the system, which can be used for phishing. ... Very obvious indication
// of a secure mode, like a simple traffic-light display may be advisable."
//
// The server owns a character framebuffer. Row 0 is the trusted indicator
// strip: only the server draws there, showing the focused session's label
// and a traffic light (green = trusted component focused, red = legacy).
// Clients draw exclusively inside their own assigned viewport, and input
// events are routed only to the focused session — a background session can
// neither spoof the indicator nor sniff keystrokes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace lateral::gui {

using SessionId = std::uint32_t;

enum class TrustLevel : std::uint8_t { trusted, legacy };

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
  bool contains(int px, int py) const {
    return px >= x && px < x + width && py >= y && py < y + height;
  }
  bool overlaps(const Rect& other) const {
    return x < other.x + other.width && other.x < x + width &&
           y < other.y + other.height && other.y < y + height;
  }
};

class SecureGui {
 public:
  SecureGui(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Create a session with a unique label and a viewport. The viewport must
  /// not intersect the indicator row or another session's viewport.
  Result<SessionId> create_session(const std::string& label, TrustLevel trust,
                                   Rect viewport);
  Status destroy_session(SessionId session);

  /// Client drawing: strictly clipped to the session's own viewport;
  /// attempts to touch anything else are refused, not clipped silently —
  /// a spoofing attempt is a signal.
  Status draw_text(SessionId session, int x, int y, const std::string& text);

  /// Focus switching is a trusted operation (think secure attention key).
  Status set_focus(SessionId session);
  std::optional<SessionId> focused() const { return focus_; }

  /// Keyboard input: routed to the focused session only.
  Status inject_key(char key);
  /// Drain the input queue of a session (only its own).
  Result<Bytes> read_input(SessionId session);

  /// The trusted indicator strip (row 0) as text, rendered by the server:
  /// "[ GREEN | label ]" or "[ RED | label ]".
  std::string indicator_text() const;

  /// A full-row screenshot for tests.
  std::string row_text(int y) const;

  /// Who owns the cell at (x, y)? 0 = server/background.
  SessionId owner_at(int x, int y) const;

 private:
  struct Session {
    std::string label;
    TrustLevel trust = TrustLevel::legacy;
    Rect viewport;
    Bytes input_queue;
  };

  void render_indicator();

  int width_;
  int height_;
  std::vector<char> cells_;
  std::vector<SessionId> owners_;
  std::map<SessionId, Session> sessions_;
  std::optional<SessionId> focus_;
  SessionId next_session_ = 1;
};

}  // namespace lateral::gui
