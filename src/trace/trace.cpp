#include "trace/trace.h"

#include <algorithm>

namespace lateral::trace {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

thread_local TraceContext g_current_context;

}  // namespace

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity ? capacity : 1)) {
  mask_ = slots_.size() - 1;
}

std::array<std::uint64_t, FlightRecorder::kWords> FlightRecorder::pack(
    const SpanEvent& e) {
  std::array<std::uint64_t, kWords> w{};
  w[0] = e.trace_id;
  w[1] = (static_cast<std::uint64_t>(e.span_id) << 32) | e.parent_span;
  w[2] = (static_cast<std::uint64_t>(e.phase) << 56) |
         (static_cast<std::uint64_t>(e.payload_len) << 48) |
         (static_cast<std::uint64_t>(e.reserved) << 32) | e.opcode;
  w[3] = static_cast<std::uint64_t>(e.at);
  w[4] = e.size;
  std::uint64_t lo = 0, hi = 0;
  for (int i = 0; i < 8; ++i) lo |= static_cast<std::uint64_t>(e.payload[i]) << (8 * i);
  for (int i = 0; i < 8; ++i)
    hi |= static_cast<std::uint64_t>(e.payload[8 + i]) << (8 * i);
  w[5] = lo;
  w[6] = hi;
  w[7] = e.ticket;
  return w;
}

SpanEvent FlightRecorder::unpack(const std::array<std::uint64_t, kWords>& w) {
  SpanEvent e;
  e.trace_id = w[0];
  e.span_id = static_cast<std::uint32_t>(w[1] >> 32);
  e.parent_span = static_cast<std::uint32_t>(w[1]);
  e.phase = static_cast<SpanPhase>(w[2] >> 56);
  e.payload_len = static_cast<std::uint8_t>(w[2] >> 48);
  e.reserved = static_cast<std::uint16_t>(w[2] >> 32);
  e.opcode = static_cast<std::uint32_t>(w[2]);
  e.at = static_cast<Cycles>(w[3]);
  e.size = w[4];
  for (int i = 0; i < 8; ++i)
    e.payload[i] = static_cast<std::uint8_t>(w[5] >> (8 * i));
  for (int i = 0; i < 8; ++i)
    e.payload[8 + i] = static_cast<std::uint8_t>(w[6] >> (8 * i));
  e.ticket = w[7];
  return e;
}

bool FlightRecorder::record(SpanEvent event) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  event.ticket = ticket;
  Slot& slot = slots_[ticket & mask_];

  // The slot last held ticket - capacity (previous lap) with stable sequence
  // 2 * (ticket - capacity + 1) — or 0 if this is the first lap. A writer a
  // full lap ahead may already be in the slot; in that lossy case we drop
  // rather than spin (a flight recorder must never stall the data plane).
  std::uint64_t expected =
      ticket >= slots_.size() ? 2 * (ticket - slots_.size() + 1) : 0;
  if (!slot.seq.compare_exchange_strong(expected, expected + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  const auto words = pack(event);
  for (std::size_t i = 0; i < kWords; ++i)
    slot.words[i].store(words[i], std::memory_order_relaxed);
  slot.seq.store(2 * (ticket + 1), std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<SpanEvent> FlightRecorder::snapshot() const {
  std::vector<SpanEvent> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1)) continue;  // never written, or mid-write
    std::array<std::uint64_t, kWords> words;
    for (std::size_t i = 0; i < kWords; ++i)
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;  // torn
    out.push_back(unpack(words));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

void FlightRecorder::clear() {
  // Contract: no concurrent record() on this ring — clear() scrubs a dead
  // domain's recorder, and a corpse has no running writer. The write cursor
  // resets too, so the per-lap sequence arithmetic starts fresh.
  for (Slot& slot : slots_) {
    for (std::size_t i = 0; i < kWords; ++i)
      slot.words[i].store(0, std::memory_order_relaxed);
    slot.seq.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Tracer

FlightRecorder& Tracer::recorder(const void* owner, std::uint64_t domain,
                                 std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(owner, domain);
  auto it = rings_.find(key);
  if (it == rings_.end()) {
    Entry entry;
    entry.label = std::string(label);
    entry.ring = std::make_unique<FlightRecorder>(ring_capacity_);
    it = rings_.emplace(key, std::move(entry)).first;
  } else if (it->second.label.empty() && !label.empty()) {
    it->second.label = std::string(label);
  }
  return *it->second.ring;
}

std::vector<SpanEvent> Tracer::snapshot(const void* owner,
                                        std::uint64_t domain) const {
  const FlightRecorder* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(std::make_pair(owner, domain));
    if (it == rings_.end()) return {};
    ring = it->second.ring.get();
  }
  return ring->snapshot();
}

void Tracer::scrub(const void* owner, std::uint64_t domain) {
  FlightRecorder* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(std::make_pair(owner, domain));
    if (it == rings_.end()) return;
    ring = it->second.ring.get();
    it->second.label.clear();
  }
  ring->clear();
}

std::vector<Tracer::RingRef> Tracer::rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RingRef> out;
  out.reserve(rings_.size());
  for (const auto& [key, entry] : rings_) {
    RingRef ref;
    ref.owner = key.first;
    ref.domain = key.second;
    ref.label = entry.label;
    ref.ring = entry.ring.get();
    out.push_back(std::move(ref));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Thread-local context

const TraceContext& current_context() { return g_current_context; }

TraceScope::TraceScope(const TraceContext& ctx) : saved_(g_current_context) {
  g_current_context = ctx;
}

TraceScope::~TraceScope() { g_current_context = saved_; }

}  // namespace lateral::trace
