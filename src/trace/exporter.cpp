#include "trace/exporter.h"

#include <algorithm>
#include <sstream>

#include "core/composer.h"
#include "core/policy.h"

namespace lateral::trace {
namespace {

void json_escape_into(std::ostringstream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

std::string hex_bytes(const std::uint8_t* data, std::size_t len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

/// The opcode as protocol text ("FETC") when all four bytes are printable
/// ASCII, else empty — the caller falls back to the numeric form.
std::string opcode_text(std::uint32_t opcode) {
  std::string out;
  for (int i = 3; i >= 0; --i) {
    const char c = static_cast<char>((opcode >> (8 * i)) & 0xff);
    if (c == 0) break;  // short opcodes are left-aligned, zero-padded
    if (c < 0x20 || c > 0x7e) return {};
    out.push_back(c);
  }
  return out;
}

bool has_captured_payload(const std::vector<SpanEvent>& events) {
  return std::any_of(events.begin(), events.end(),
                     [](const SpanEvent& e) { return e.payload_len > 0; });
}

void append_counters_json(std::ostringstream& out,
                          const runtime::InvocationCounters& c) {
  out << "{\"submitted\":" << c.submitted << ",\"completed\":" << c.completed
      << ",\"rejected\":" << c.rejected << ",\"cancelled\":" << c.cancelled
      << ",\"timed_out\":" << c.timed_out << ",\"batches\":" << c.batches
      << ",\"crossing_cycles\":" << c.crossing_cycles
      << ",\"sync_equivalent_cycles\":" << c.sync_equivalent_cycles
      << ",\"cycles_saved\":" << c.cycles_saved()
      << ",\"zero_copy_bytes\":" << c.zero_copy_bytes
      << ",\"latency_mean\":" << c.mean_latency_cycles()
      << ",\"latency_p50\":" << c.latency_percentile(0.5)
      << ",\"latency_p99\":" << c.latency_percentile(0.99) << "}";
}

void render_family(std::ostream& out, const std::string& label,
                   std::string_view family,
                   const runtime::MetricFields& fields) {
  out << "-- " << label;
  if (!family.empty()) out << " (" << family << ")";
  out << ":";
  for (const auto& [name, value] : fields) out << " " << name << "=" << value;
  out << "\n";
}

}  // namespace

void render_metrics_text(std::ostream& out, const runtime::MetricsHub& hub) {
  for (const auto& [label, c] : hub.all())
    render_family(out, label, {}, c.fields());
  for (const auto& [label, r] : hub.all_recovery())
    render_family(out, label, "recovery", r.fields());
  for (const auto& [label, f] : hub.all_fleet())
    render_family(out, label, "fleet", f.fields());
  for (const auto& [label, u] : hub.all_update())
    render_family(out, label, "update", u.fields());
  for (const auto& [label, s] : hub.all_sched())
    render_family(out, label, "sched", s.fields());
  for (const auto& [label, h] : hub.all_health())
    render_family(out, label, "health", h.fields());
}

Result<std::string> TraceExporter::chrome_trace_json(
    const ExportOptions& opts) const {
  struct RingDump {
    std::string label;
    std::uint64_t domain = 0;
    bool payload_authorized = false;
    std::vector<SpanEvent> events;
  };

  std::vector<RingDump> dumps;
  for (const Tracer::RingRef& ref : tracer_.rings()) {
    RingDump dump;
    dump.label = ref.label;
    dump.domain = ref.domain;
    dump.events = ref.ring->snapshot();

    if (!opts.observer.empty() && has_captured_payload(dump.events)) {
      const Status verdict =
          core::check_trace_export(opts.manifests, dump.label, opts.observer);
      if (verdict.ok()) {
        dump.payload_authorized = true;
      } else if (verdict.error() == Errc::redaction_denied) {
        // A payload-bearing ring the observer may not see: refuse the whole
        // export rather than silently thinning it — the caller asked for
        // this observer's view, and this observer has none.
        if (audit_)
          audit_->append(health::AuditKind::redaction_denied, opts.observer,
                         Errc::redaction_denied, dump.label);
        return Errc::redaction_denied;
      }
      // invalid_argument: the ring is not a composed component (bench/test
      // rings) — no manifest governs it, so it exports redacted.
    }
    dumps.push_back(std::move(dump));
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // One Chrome "thread" per ring, named after the component.
  for (std::size_t tid = 0; tid < dumps.size(); ++tid) {
    comma();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, dumps[tid].label.empty()
                              ? "domain#" + std::to_string(dumps[tid].domain)
                              : dumps[tid].label);
    out << "\"}}";
  }

  for (std::size_t tid = 0; tid < dumps.size(); ++tid) {
    for (const SpanEvent& e : dumps[tid].events) {
      comma();
      out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid
          << ",\"ts\":" << e.at << ",\"name\":\"" << span_phase_name(e.phase)
          << "\",\"args\":{\"trace\":" << e.trace_id
          << ",\"span\":" << e.span_id << ",\"parent\":" << e.parent_span
          << ",\"size\":" << e.size << ",\"ticket\":" << e.ticket;
      if (e.opcode != 0) {
        out << ",\"opcode\":" << e.opcode;
        if (const std::string text = opcode_text(e.opcode); !text.empty()) {
          out << ",\"op\":\"";
          json_escape_into(out, text);
          out << "\"";
        }
      }
      if (dumps[tid].payload_authorized && e.payload_len > 0)
        out << ",\"payload\":\""
            << hex_bytes(e.payload.data(), e.payload_len) << "\"";
      out << "}}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"clock\":\"simulated cycles\",\"traces_started\":"
      << tracer_.traces_started();
  if (hub_) {
    out << ",\"counters\":{";
    bool first_label = true;
    for (const auto& [label, counters] : hub_->all()) {
      if (!first_label) out << ",";
      first_label = false;
      out << "\"";
      json_escape_into(out, label);
      out << "\":";
      append_counters_json(out, counters);
    }
    out << "}";
  }
  out << "}}\n";
  return out.str();
}

std::string TraceExporter::text_snapshot() const {
  std::ostringstream out;
  for (const Tracer::RingRef& ref : tracer_.rings()) {
    const std::vector<SpanEvent> events = ref.ring->snapshot();
    out << "== " << (ref.label.empty() ? "domain#" + std::to_string(ref.domain)
                                       : ref.label)
        << ": " << events.size() << " retained, " << ref.ring->recorded()
        << " recorded, " << ref.ring->dropped() << " dropped\n";
    for (const SpanEvent& e : events) {
      out << "  [" << e.ticket << "] " << span_phase_name(e.phase)
          << " trace=" << e.trace_id << " span=" << e.span_id
          << " parent=" << e.parent_span << " at=" << e.at
          << " size=" << e.size;
      if (const std::string text = opcode_text(e.opcode);
          e.opcode != 0 && !text.empty())
        out << " op=" << text;
      if (e.payload_len > 0)
        out << " payload=<" << static_cast<unsigned>(e.payload_len)
            << "B captured, redacted>";
      out << "\n";
    }
  }
  if (hub_) render_metrics_text(out, *hub_);
  return out.str();
}

}  // namespace lateral::trace

namespace lateral::core {

// Defined here (not composer.cpp) because the observability layer sits
// above core in the build graph; uses only the Assembly public API.
std::string Assembly::dump_observability(const trace::Tracer* tracer,
                                         const runtime::MetricsHub* hub) const {
  std::ostringstream out;
  out << "assembly:";
  for (const std::string& name : component_names()) {
    out << " " << name;
    if (const auto c = component(name); c && (*c)->incarnation > 0)
      out << "(incarnation " << (*c)->incarnation << ")";
  }
  out << "\n";
  if (tracer) {
    trace::TraceExporter exporter(*tracer, hub);
    out << exporter.text_snapshot();
  } else if (hub) {
    // No tracer attached: still report the counters, through the same
    // renderer the exporter uses (one registration point per stats family).
    trace::render_metrics_text(out, *hub);
  }
  return out.str();
}

}  // namespace lateral::core
