// lateral::trace — cross-domain distributed tracing primitives.
//
// The horizontal paradigm makes end-to-end behaviour invisible to any single
// component: one user action fans out into channel crossings across several
// isolation domains, and no domain sees more than its own slice. This
// subsystem restores the end-to-end view without widening any trust
// boundary:
//
//   - A 16-byte TraceContext (trace id, parent span id, flags) rides every
//     crossing — sync call, call_batch, call_sg, pipelined proxy bursts —
//     in the substrate's metadata, exactly like a badge. Propagation inside
//     one domain is a thread-local (TraceScope), so nested invocations from
//     a handler chain automatically.
//   - Span events are stamped in *simulated cycles* at submit / flush /
//     dispatch / complete, so batching amortization is visible per request,
//     not just in aggregate counters.
//   - Each domain owns a fixed-size lock-free FlightRecorder ring holding
//     its last N span events. The ring is owned by the Tracer, NOT the
//     domain's memory, so it survives kill_domain: the supervisor snapshots
//     the corpse's ring into its recovery report before scrubbing — an MTTR
//     number with an explainable timeline attached.
//   - Redaction is the default: a span carries sizes, opcodes and cycle
//     stamps. Payload capture is opt-in per component (manifest `trace`
//     stanza) and exporting captured payloads is policy-checked against the
//     trust graph (core::check_trace_export) — trace data crossing a trust
//     boundary is itself a security decision.
//
// Layering: this header depends only on util (no substrate/core), so every
// layer — substrate, runtime, core, supervisor — can carry trace types
// without dependency cycles. The exporter (trace/exporter.h) sits above
// core and runtime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.h"

namespace lateral::trace {

/// Wire footprint of a TraceContext on a crossing: 8 bytes trace id,
/// 4 bytes parent span id, 4 bytes flags. This is what a traced crossing
/// is charged for (substrate trace_crossing_cost), once per crossing, on
/// the request direction only — replies carry no context.
constexpr std::size_t kTraceContextWireBytes = 16;

/// Propagated per-request identity. trace_id == 0 means "no trace": the
/// zero context is what untraced code paths carry, and every trace hook
/// short-circuits on it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;
  std::uint32_t flags = 0;

  static constexpr std::uint32_t kSampled = 1u << 0;

  bool sampled() const { return trace_id != 0 && (flags & kSampled) != 0; }

  /// Append the 16-byte big-endian wire form to `out`.
  void encode(Bytes& out) const {
    for (int i = 7; i >= 0; --i)
      out.push_back(static_cast<std::uint8_t>(trace_id >> (8 * i)));
    for (int i = 3; i >= 0; --i)
      out.push_back(static_cast<std::uint8_t>(parent_span >> (8 * i)));
    for (int i = 3; i >= 0; --i)
      out.push_back(static_cast<std::uint8_t>(flags >> (8 * i)));
  }

  /// Decode from a buffer of at least kTraceContextWireBytes.
  static TraceContext decode(BytesView in) {
    TraceContext ctx;
    if (in.size() < kTraceContextWireBytes) return ctx;
    for (int i = 0; i < 8; ++i) ctx.trace_id = (ctx.trace_id << 8) | in[i];
    for (int i = 8; i < 12; ++i)
      ctx.parent_span = (ctx.parent_span << 8) | in[i];
    for (int i = 12; i < 16; ++i) ctx.flags = (ctx.flags << 8) | in[i];
    return ctx;
  }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Lifecycle point a span event marks. The first four are the per-request
/// hot path (caller side: submit/flush; callee side: dispatch/complete);
/// the rest are supervision-flow markers so a recovery report reads as a
/// timeline.
enum class SpanPhase : std::uint8_t {
  submit,     // request accepted into a submission queue (caller domain)
  flush,      // batch crossed the boundary (caller domain)
  dispatch,   // request delivered to the handler (callee domain)
  complete,   // handler returned; reply crossed back (callee domain)
  cancelled,  // withdrawn before running
  timed_out,  // deadline expired before running
  killed,     // the domain died (kill_domain) — last ring entry of a corpse
  detected,   // supervisor confirmed the death
  relaunch,   // supervisor created the replacement domain
  attested,   // relaunch passed re-measurement / challenge-response
  recovered,  // component serving again (MTTR endpoint)
  // Fleet connection establishment (lateral::fleet). Two distinct phases so
  // exported flame views separate the expensive full quote exchange from the
  // one-RTT ticket path — a resumed connection should never be mistaken for
  // (or hide behind) a cold one.
  handshake_full,     // full three-message attested handshake completed
  handshake_resumed,  // one-RTT ticket resumption completed
  // Over-the-air update lifecycle (lateral::update). Three phases so an
  // exported timeline shows how long an image staged, when the swap
  // happened, and — on failure — when the automatic revert restored the
  // previous slot (the revert MTTR endpoint).
  update_stage,   // update image chunk staged/verified into the inactive slot
  update_commit,  // component restarted into the new measurement and held
  update_revert,  // probation failed; previous slot restored and serving
  // Completion-queue runtime (lateral::cq). One doorbell = one coalesced
  // crossing that flushes the submission ring AND drains the completion
  // ring; the span's size field carries the adaptive controller's current
  // batch depth so an exported timeline shows the depth trajectory.
  doorbell,  // paired-ring flush+drain crossing (caller domain)
};

constexpr std::string_view span_phase_name(SpanPhase p) {
  switch (p) {
    case SpanPhase::submit: return "submit";
    case SpanPhase::flush: return "flush";
    case SpanPhase::dispatch: return "dispatch";
    case SpanPhase::complete: return "complete";
    case SpanPhase::cancelled: return "cancelled";
    case SpanPhase::timed_out: return "timed_out";
    case SpanPhase::killed: return "killed";
    case SpanPhase::detected: return "detected";
    case SpanPhase::relaunch: return "relaunch";
    case SpanPhase::attested: return "attested";
    case SpanPhase::recovered: return "recovered";
    case SpanPhase::handshake_full: return "handshake_full";
    case SpanPhase::handshake_resumed: return "handshake_resumed";
    case SpanPhase::update_stage: return "update_stage";
    case SpanPhase::update_commit: return "update_commit";
    case SpanPhase::update_revert: return "update_revert";
    case SpanPhase::doorbell: return "doorbell";
  }
  return "unknown";
}

/// One flight-recorder entry. Fixed-size by construction (it must fit a
/// lock-free ring slot): payload capture keeps at most kCaptureBytes of the
/// message, and only when the component's manifest opted in — the default
/// span is sizes/opcodes/cycle stamps only (redaction by default).
struct SpanEvent {
  static constexpr std::size_t kCaptureBytes = 16;

  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;
  SpanPhase phase = SpanPhase::submit;
  std::uint8_t payload_len = 0;  // captured bytes (<= kCaptureBytes)
  std::uint16_t reserved = 0;
  /// First 4 message bytes, big-endian — the protocol verb ("FETC", "STOR")
  /// as an integer, readable without any payload capture.
  std::uint32_t opcode = 0;
  Cycles at = 0;          // simulated machine clock at the stamp
  std::uint64_t size = 0; // full message size in bytes
  /// Monotonic write ticket of the owning ring (total order of events).
  std::uint64_t ticket = 0;
  std::array<std::uint8_t, kCaptureBytes> payload{};

  /// Record the opcode (always) and, when `capture` says the component
  /// opted in, the leading payload bytes.
  void note_payload(BytesView data, bool capture) {
    opcode = 0;
    for (std::size_t i = 0; i < 4 && i < data.size(); ++i)
      opcode = (opcode << 8) | data[i];
    opcode <<= 8 * (4 - (data.size() < 4 ? data.size() : 4));
    if (!capture) return;
    payload_len = static_cast<std::uint8_t>(
        data.size() < kCaptureBytes ? data.size() : kCaptureBytes);
    for (std::size_t i = 0; i < payload_len; ++i) payload[i] = data[i];
  }
};

/// Fixed-size lock-free ring of the last N span events of one domain.
//
// Writer protocol (seqlock per slot): claim a ticket (fetch_add), CAS the
// slot's sequence from "stable for the previous lap" to odd (writing), store
// the event as relaxed word stores, publish with a release store of the new
// even sequence. A CAS failure means another writer is mid-flight on the
// same slot (tickets a full lap apart) — the event is dropped and counted,
// never blocked on: a flight recorder is lossy by design, the *recent* tail
// is what matters. Readers are wait-free: acquire the sequence, copy the
// words, re-check the sequence; a torn slot is skipped.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static constexpr std::size_t kDefaultCapacity = 256;

  /// Record one event; never blocks. Returns false when the slot was
  /// contended and the event dropped (counted in dropped()).
  bool record(SpanEvent event);

  /// Consistent copy of the retained events, oldest first. Safe to call
  /// concurrently with writers.
  std::vector<SpanEvent> snapshot() const;

  /// Forget everything (scrub after a supervisor snapshotted a corpse).
  void clear();

  std::size_t capacity() const { return slots_.size(); }
  /// Total events ever recorded (monotonic, survives clear()).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kWords = 8;

  struct Slot {
    /// 0 = never written; odd = write in progress; 2*(ticket+1) = stable.
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  static std::array<std::uint64_t, kWords> pack(const SpanEvent& event);
  static SpanEvent unpack(const std::array<std::uint64_t, kWords>& words);

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Owns the per-domain flight recorders and mints trace / span ids.
//
// Rings are keyed by (substrate instance, domain id) and labelled with the
// domain's name, so an exporter can present them per component. Crucially
// the Tracer — not the substrate's domain record — owns the ring storage:
// kill_domain releases the domain's memory but the ring stays readable
// until scrub(), which is what lets a supervisor reconstruct the corpse's
// final cycles.
class Tracer {
 public:
  explicit Tracer(std::size_t ring_capacity = FlightRecorder::kDefaultCapacity)
      : ring_capacity_(ring_capacity ? ring_capacity : 1) {}

  /// Master switch. Attaching a Tracer to a substrate is the compile-in;
  /// this is the runtime off-switch benchmarks use to show the disabled
  /// cost is near zero.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Start a new trace: fresh id, sampled, no parent. Install it with a
  /// TraceScope to have it ride every crossing the calling thread makes.
  TraceContext begin_trace() {
    TraceContext ctx;
    ctx.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
    ctx.flags = TraceContext::kSampled;
    return ctx;
  }

  /// Mint a span id (unique within this tracer).
  std::uint32_t next_span() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The ring of (owner, domain), created on first use with `label` (the
  /// domain's name). The reference stays valid for the Tracer's lifetime.
  FlightRecorder& recorder(const void* owner, std::uint64_t domain,
                           std::string_view label);

  /// Snapshot of one domain's ring; empty when the domain never recorded.
  std::vector<SpanEvent> snapshot(const void* owner,
                                  std::uint64_t domain) const;

  /// Scrub one domain's ring (after snapshotting a corpse). The ring object
  /// survives — a relaunched incarnation under the same domain id would
  /// reuse it — but its contents and label-to-events association are gone.
  void scrub(const void* owner, std::uint64_t domain);

  /// Every ring this tracer owns (label + recorder), for exporters.
  struct RingRef {
    const void* owner = nullptr;
    std::uint64_t domain = 0;
    std::string label;
    const FlightRecorder* ring = nullptr;
  };
  std::vector<RingRef> rings() const;

  std::uint64_t traces_started() const {
    return next_trace_.load(std::memory_order_relaxed) - 1;
  }

 private:
  struct Entry {
    std::string label;
    std::unique_ptr<FlightRecorder> ring;
  };

  std::size_t ring_capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint32_t> next_span_{1};
  mutable std::mutex mu_;  // guards rings_ (the map, not the ring contents)
  std::map<std::pair<const void*, std::uint64_t>, Entry> rings_;
};

/// The calling thread's current trace context (zero context when none).
/// Substrates read this at every crossing; handlers run under a TraceScope
/// carrying the delivered context, so nested crossings chain automatically.
const TraceContext& current_context();

/// RAII: install `ctx` as the thread's current context, restore on exit.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace lateral::trace
