// Trace/metrics exporter — the reporting face of lateral::trace.
//
// Two output formats from the same sources (a Tracer's flight-recorder
// rings plus a MetricsHub's counter blocks):
//
//   - chrome_trace_json(): the Chrome trace_event JSON format
//     (chrome://tracing / Perfetto "JSON (legacy)"). Every ring becomes a
//     named thread; every SpanEvent becomes an instant event with the
//     simulated cycle stamp as its timestamp, so the batching amortization
//     is visible per request on a timeline. MetricsHub counters ride in
//     "otherData".
//   - text_snapshot(): a plain-text dump for logs and tests.
//
// Redaction is enforced HERE, at the export boundary, because this is where
// trace data leaves the process: spans carry sizes/opcodes/cycles for
// everyone, but captured payload bytes are emitted only when the export's
// observer is authorized — by the component's manifest `trace { observer }`
// list or by the component's own trust edges (core::check_trace_export).
// An export that would leak a payload-bearing ring to an unauthorized
// observer fails whole with Errc::redaction_denied: a partial leak is not a
// degraded export, it is a policy violation.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/manifest.h"
#include "health/audit.h"
#include "runtime/metrics.h"
#include "trace/trace.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::trace {

/// Render every family in a MetricsHub as `-- label (family): k=v ...`
/// lines (invocation counters omit the family tag), with the field names
/// and order each *Stats struct declares in fields(). This is THE text
/// renderer: TraceExporter::text_snapshot and Assembly::dump_observability
/// both call it, so a new stats family registers once — in fields() — and
/// appears everywhere.
void render_metrics_text(std::ostream& out, const runtime::MetricsHub& hub);

struct ExportOptions {
  /// Component receiving the export. Empty = anonymous observer: the export
  /// always succeeds but every captured payload byte is dropped (redaction
  /// by default). Non-empty = the named component: payload bytes of a ring
  /// appear iff core::check_trace_export(manifests, ring_label, observer)
  /// allows it; a denial fails the whole export with redaction_denied.
  std::string observer;
  /// The assembly's manifests — the policy input for the check above.
  std::vector<core::Manifest> manifests;
};

class TraceExporter {
 public:
  /// `hub` may be null (trace-only export).
  explicit TraceExporter(const Tracer& tracer,
                         const runtime::MetricsHub* hub = nullptr)
      : tracer_(tracer), hub_(hub) {}

  /// Serialize every ring (and the hub's counters) to Chrome trace_event
  /// JSON. Timestamps are simulated cycles presented as microseconds —
  /// honest relative spacing, arbitrary absolute unit.
  /// Errc::redaction_denied when `opts.observer` is not authorized for some
  /// payload-bearing ring (see ExportOptions).
  Result<std::string> chrome_trace_json(const ExportOptions& opts = {}) const;

  /// Plain-text dump: per-ring event timelines plus per-label counters.
  /// Always fully redacted (no payload bytes) — safe for logs.
  std::string text_snapshot() const;

  /// Audit sink: a refused export (redaction_denied) is a security-relevant
  /// event — the observer asked for payload spans the trust graph does not
  /// authorize — and lands in the log as evidence, not just an Errc.
  void set_audit(health::AuditLog* audit) { audit_ = audit; }

 private:
  const Tracer& tracer_;
  const runtime::MetricsHub* hub_;
  health::AuditLog* audit_ = nullptr;
};

}  // namespace lateral::trace
