// SessionDemux: badge-based session demultiplexing (paper §III-D
// "Confused Deputy").
//
// "Capabilities bundle communication right and context identification in
// one entity and are therefore an important programming tool to prevent
// confused deputy issues." A multi-client trusted component keys its
// per-client state on the substrate-minted badge of the invocation — never
// on identifiers the client supplies. The class also offers the UNSAFE
// client-claimed lookup so tests and the fig6 ablation can demonstrate the
// attack the safe path prevents.
#pragma once

#include <map>
#include <optional>

#include "substrate/isolation.h"
#include "util/result.h"

namespace lateral::core {

template <typename SessionT>
class SessionDemux {
 public:
  /// Session for the invoking client, keyed by the unforgeable badge the
  /// substrate attached to the invocation. Creates the session on first use.
  SessionT& session_for(const substrate::Invocation& invocation) {
    return sessions_[invocation.badge];
  }

  /// Session by badge value (e.g. when pre-provisioning client state).
  SessionT& session_by_badge(std::uint64_t badge) { return sessions_[badge]; }

  /// UNSAFE: look up a session by an identifier the *client* claimed in its
  /// message payload. This is the confused-deputy bug: a malicious client
  /// claims another client's id and the deputy exercises the wrong session's
  /// authority. Kept for the ablation experiment; never use in real handlers.
  Result<SessionT*> unsafe_session_by_claimed_id(std::uint64_t claimed_id) {
    const auto it = sessions_.find(claimed_id);
    if (it == sessions_.end()) return Errc::invalid_argument;
    return &it->second;
  }

  bool has_session(std::uint64_t badge) const {
    return sessions_.contains(badge);
  }
  std::size_t session_count() const { return sessions_.size(); }
  void erase(std::uint64_t badge) { sessions_.erase(badge); }

 private:
  std::map<std::uint64_t, SessionT> sessions_;
};

}  // namespace lateral::core
