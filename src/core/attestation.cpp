#include "core/attestation.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace lateral::core {

AttestationVerifier::AttestationVerifier(BytesView drbg_seed)
    : drbg_(drbg_seed) {}

void AttestationVerifier::add_trusted_root(const crypto::RsaPublicKey& root) {
  roots_.push_back(root);
}

void AttestationVerifier::expect_measurement(const std::string& logical_name,
                                             const crypto::Digest& measurement) {
  expectations_[logical_name] = measurement;
}

std::optional<crypto::Digest> AttestationVerifier::expectation(
    const std::string& logical_name) const {
  const auto it = expectations_.find(logical_name);
  if (it == expectations_.end()) return std::nullopt;
  return it->second;
}

Bytes AttestationVerifier::make_challenge() {
  Bytes nonce = drbg_.generate(32);
  if (outstanding_nonces_.size() >= kMaxOutstanding)
    outstanding_nonces_.erase(outstanding_nonces_.begin());
  outstanding_nonces_.push_back(nonce);
  return nonce;
}

Bytes bound_user_data(BytesView nonce, BytesView context) {
  return crypto::digest_bytes(crypto::Sha256::hash2(nonce, context));
}

bool AttestationVerifier::challenge_outstanding(BytesView nonce) const {
  return std::find_if(outstanding_nonces_.begin(), outstanding_nonces_.end(),
                      [&](const Bytes& n) { return ct_equal(n, nonce); }) !=
         outstanding_nonces_.end();
}

void AttestationVerifier::consume_challenge(BytesView nonce) {
  const auto it =
      std::find_if(outstanding_nonces_.begin(), outstanding_nonces_.end(),
                   [&](const Bytes& n) { return ct_equal(n, nonce); });
  if (it != outstanding_nonces_.end()) outstanding_nonces_.erase(it);
}

Status AttestationVerifier::check_chain(const substrate::Quote& quote) const {
  // Chain of custody: some trusted vendor endorsed the signing device.
  for (const crypto::RsaPublicKey& root : roots_) {
    if (quote.verify(root).ok()) return Status::success();
  }
  return Errc::verification_failed;
}

Status AttestationVerifier::verify(const std::string& logical_name,
                                   BytesView quote_wire, BytesView nonce,
                                   BytesView context) {
  // Freshness: the nonce must be one we issued and not yet consumed.
  if (!challenge_outstanding(nonce)) return Errc::verification_failed;

  auto quote = substrate::Quote::deserialize(quote_wire);
  if (!quote) return Errc::invalid_argument;

  if (const Status s = check_chain(*quote); !s.ok()) return s;

  // Binding: the quote covers exactly this challenge and context.
  if (!ct_equal(quote->user_data, bound_user_data(nonce, context)))
    return Errc::verification_failed;

  // Code identity: refuse to talk to a manipulated instance.
  const auto expect_it = expectations_.find(logical_name);
  if (expect_it == expectations_.end()) return Errc::verification_failed;
  if (!ct_equal(crypto::digest_view(quote->measurement),
                crypto::digest_view(expect_it->second)))
    return Errc::verification_failed;

  consume_challenge(nonce);  // consume: no replay
  return Status::success();
}

Result<Bytes> respond_to_challenge(substrate::IsolationSubstrate& substrate,
                                   substrate::DomainId domain, BytesView nonce,
                                   BytesView context) {
  auto quote = substrate.attest(domain, bound_user_data(nonce, context));
  if (!quote) return quote.error();
  return quote->serialize();
}

}  // namespace lateral::core
