// Component manifests (paper §III-A).
//
// "The unified interface should be part of a larger programming framework,
// where developers can describe the required communication channels to
// other components. Such a manifest enables the isolation substrate to
// establish just the needed channels and block all other communication,
// thereby promoting a POLA design mentality for the entire system."
//
// A Manifest declares everything the composer needs: component kind, the
// substrate it should run on, its memory/time budget, the attacker model it
// must be protected against, the channels it needs, which peers' replies it
// consumes un-vetted (trust edges for containment analysis), and bookkeeping
// for TCB accounting. Manifests can be built in code or parsed from a small
// text format so that "separation is built right into the development
// workflow".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "substrate/isolation.h"
#include "util/result.h"
#include "util/types.h"

namespace lateral::core {

/// Per-component crash-recovery policy (the manifest `restart` stanza).
/// Presence of the stanza is what marks a component supervised: the
/// supervisor heartbeats it and relaunches it on death, within this budget.
struct RestartPolicy {
  /// How a component that exhausts its restart budget is treated:
  /// `degraded` leaves it permanently down (peers keep getting
  /// Errc::domain_dead) while the rest of the assembly continues;
  /// `halted` additionally latches the supervisor's halted() flag — the
  /// operator signal that the assembly as a whole lost a mandatory part.
  enum class Escalation : std::uint8_t { degraded, halted };

  /// Relaunch attempts allowed before escalation (0 = never relaunch).
  std::uint32_t max_restarts = 3;
  /// Simulated cycles between detection and the first relaunch attempt;
  /// doubles on every subsequent attempt (exponential backoff).
  Cycles backoff_cycles = 10'000;
  Escalation escalation = Escalation::degraded;

  friend bool operator==(const RestartPolicy&, const RestartPolicy&) = default;
};

constexpr std::string_view escalation_name(RestartPolicy::Escalation e) {
  switch (e) {
    case RestartPolicy::Escalation::degraded: return "degraded";
    case RestartPolicy::Escalation::halted: return "halted";
  }
  return "unknown";
}

/// Per-component tracing consent (the manifest `trace` stanza). Redaction
/// is the default: without this stanza a component's spans carry only
/// sizes, opcodes and cycle stamps. `payload` opts the component into
/// capturing the leading message bytes in its span events; `observer X`
/// authorizes component X to receive those payload-bearing spans from an
/// export even without a trust edge (core::check_trace_export enforces it).
struct TracePolicy {
  bool capture_payload = false;
  std::vector<std::string> observers;

  friend bool operator==(const TracePolicy&, const TracePolicy&) = default;
};

/// Fleet-termination policy (the manifest `fleet` stanza). Presence marks a
/// component as a fleet frontend: it terminates many attested client
/// connections on one endpoint (fleet::FleetServer) and these knobs size its
/// resumption-ticket lifetime, quote-verification cache, and admission
/// token bucket. See docs/fleet.md for how each knob trades security
/// against throughput.
struct FleetPolicy {
  /// Resumption-ticket lifetime in simulated cycles (0 = never resumable).
  Cycles ticket_ttl = 5'000'000;
  /// Quote-verification cache: max distinct measurements retained, and how
  /// long a verdict stays fresh (0 capacity or ttl = always re-verify).
  std::size_t cache_capacity = 256;
  Cycles cache_ttl = 50'000'000;
  /// Admission token bucket: sustained tokens per megacycle and burst size.
  std::uint64_t admit_rate = 64;
  std::uint64_t admit_burst = 256;

  friend bool operator==(const FleetPolicy&, const FleetPolicy&) = default;
};

/// Over-the-air update policy (the manifest `update` stanza). Presence
/// marks a component as field-updatable: the update::UpdateOrchestrator
/// will accept signed UpdateManifests for it, stage images into A/B slots,
/// and hold each new incarnation in heartbeat probation before committing.
struct UpdatePolicy {
  /// Logical name of the signing authority whose key (from the platform
  /// trust graph / vendor certificate chain) update manifests must verify
  /// against. The composer resolves it to the vendor root public key.
  std::string key = "vendor";
  /// Number of image slots (mcuboot-style A/B = 2; more allows staged
  /// canaries). Must be >= 2: with a single slot there is nothing to revert
  /// to.
  std::uint32_t slots = 2;
  /// Heartbeat probation window, in supervisor ticks, that a freshly
  /// swapped incarnation must survive before the update commits and the
  /// rollback counter advances.
  std::uint32_t probation_ticks = 4;

  friend bool operator==(const UpdatePolicy&, const UpdatePolicy&) = default;
};

/// Service-level objective (the manifest `slo` stanza). Presence marks a
/// component as health-watched: a health::HealthMonitor evaluates its
/// MetricsHub counters every tick against these objectives using
/// multi-window burn-rate confirmation (both the short `window` and the
/// long `window * burn_windows` must be in breach before an event fires —
/// a transient spike burns the short window only and stays quiet).
struct SloPolicy {
  /// p99 submit->complete latency objective in simulated cycles
  /// (0 = latency unchecked).
  Cycles p99_cycles = 0;
  /// Error-rate objective in permille of offered load — rejected, timed-out
  /// and cancelled invocations over offered (1000 = errors unchecked).
  std::uint32_t error_permille = 1000;
  /// Short evaluation window, simulated cycles.
  Cycles window_cycles = 1'000'000;
  /// Long window = window_cycles * burn_windows (the burn-rate guard).
  std::uint32_t burn_windows = 8;
  /// Escalate a confirmed breach into the supervisor's restart machinery
  /// (requires a `restart` stanza — the watchdog only pulls triggers the
  /// recovery plan already owns).
  bool restart = false;

  friend bool operator==(const SloPolicy&, const SloPolicy&) = default;
};

/// A declared shared grant region to a peer (the manifest `region` stanza,
/// part of the channels block of the component's needs). Like channels,
/// regions exist only when declared — the composer wires exactly these and
/// the substrate refuses map_region from anyone else (POLA on the data
/// plane).
struct RegionDecl {
  std::string peer;
  std::size_t bytes = 1 << 16;
  substrate::RegionPerms perms = substrate::RegionPerms::read_write;

  friend bool operator==(const RegionDecl&, const RegionDecl&) = default;
};

struct Manifest {
  std::string name;
  substrate::DomainKind kind = substrate::DomainKind::trusted_component;
  /// Substrate the component should be placed on ("microkernel", "sgx", ...).
  std::string substrate_name = "microkernel";
  std::size_t memory_pages = 4;
  std::uint32_t time_share_permille = 100;
  /// Shard count (the manifest `shard` stanza). A hot component declared
  /// with `shard N` is expanded at compose time into N independent domains
  /// ("name#0" .. "name#N-1"), one per simulated core, with every peer's
  /// channel/region/trust declarations fanned out to all N — the FIG13
  /// scaling mechanism. 1 (the default) means an ordinary single domain.
  /// '#' is reserved for the expansion and rejected in user-written names.
  std::size_t shards = 1;
  /// Strongest attacker this component must withstand.
  substrate::AttackerModel attacker =
      substrate::AttackerModel::remote_network;
  /// Peers this component needs a channel to (POLA: and nothing else).
  std::vector<std::string> channels;
  /// Shared grant regions to peers (zero-copy bulk data; requires a channel
  /// to the same peer — descriptors travel over that channel).
  std::vector<RegionDecl> regions;
  /// Peers whose replies this component consumes WITHOUT a trusted wrapper:
  /// compromise of such a peer spreads here (containment analysis edge).
  std::vector<std::string> trusts;
  /// Does the component need sealing / attestation from its substrate?
  bool needs_sealing = false;
  bool needs_attestation = false;
  /// Value of the assets (secrets, authority) this component holds; the
  /// containment metric weighs compromises by this.
  double asset_value = 1.0;
  /// Estimated implementation size, for TCB accounting.
  std::uint64_t loc = 1000;
  /// Crash-recovery policy; set (possibly to defaults) when the manifest
  /// carries a `restart { ... }` stanza, meaning: supervise this component.
  std::optional<RestartPolicy> restart;
  /// Tracing consent; set when the manifest carries a `trace { ... }`
  /// stanza. Absent = full redaction (metadata-only spans).
  std::optional<TracePolicy> trace;
  /// Fleet-termination policy; set when the manifest carries a
  /// `fleet { ... }` stanza, meaning: this component fronts a fleet of
  /// attested clients and its FleetServer should be sized by these knobs.
  std::optional<FleetPolicy> fleet;
  /// Over-the-air update policy; set when the manifest carries an
  /// `update { ... }` stanza, meaning: this component may be re-imaged in
  /// the field under rollback protection.
  std::optional<UpdatePolicy> update;
  /// Service-level objectives; set when the manifest carries an
  /// `slo { ... }` stanza, meaning: a health watchdog evaluates this
  /// component's metrics and (optionally) escalates confirmed breaches.
  std::optional<SloPolicy> slo;
};

/// Parse a manifest bundle from the text DSL. Format:
///
///   # comment
///   component tls {
///     kind trusted            # or: legacy
///     substrate sgx
///     pages 8
///     share 100
///     shard 4                 # optional: split into 4 domains, one per core
///     attacker physical_bus   # remote_network|local_software|...
///     channel imap            # may repeat
///     region imap 65536       # may repeat: shared region to peer; size in
///     region storage 4096 ro  #   bytes, optional `ro` (peer reads only)
///     trusts storage          # may repeat
///     seal                    # flag
///     attest                  # flag
///     assets 10.0
///     loc 4500
///     restart {            # optional: supervise this component
///       max 3              # relaunch attempts before escalation
///       backoff 10000      # cycles before first relaunch; doubles per try
///       escalate degraded  # or: halted
///     }
///     trace {              # optional: relax span redaction
///       payload            # capture leading payload bytes in span events
///       observer ui        # may repeat: authorized export observer
///     }
///     fleet {              # optional: fleet frontend sizing
///       ticket_ttl 5000000 # resumption-ticket lifetime, cycles
///       cache 256 50000000 # verification cache: capacity, ttl cycles
///       admit 64 256       # admission bucket: rate/megacycle, burst
///     }
///     update {             # optional: field-updatable under rollback
///       key vendor         # signing authority for update manifests
///       slots 2            # A/B image slots (>= 2)
///       probation 4        # heartbeat ticks before an update commits
///     }
///     slo {                # optional: health-watchdog objectives
///       p99 40000          # p99 latency objective, cycles (0 = unchecked)
///       error_rate 50      # max errors, permille of offered load
///       window 1000000     # short evaluation window, cycles
///       burn_windows 8     # long window = window * this (burn-rate guard)
///       restart            # flag: escalate confirmed breaches into the
///     }                    #   restart stanza's recovery machinery
///   }
///
/// At most one `restart`/`trace`/`fleet`/`update`/`slo` stanza per
/// component, and at most one `region` declaration per peer — duplicates
/// are rejected, not last-wins. Errc::invalid_argument on malformed input;
/// when `error` is non-null it receives a diagnostic naming the line,
/// component and stanza.
Result<std::vector<Manifest>> parse_manifests(std::string_view text,
                                              std::string* error = nullptr);

/// Render manifests back to the DSL (round-trip tested).
std::string to_text(const std::vector<Manifest>& manifests);

/// Cross-manifest validation: channel/trust targets exist, names unique,
/// trusts ⊆ channels ∪ {self}. Returns the problems found (empty = valid).
std::vector<std::string> validate(const std::vector<Manifest>& manifests);

}  // namespace lateral::core
