// Boot-chain orchestration (paper §II-D "Secure Launch").
//
// "An unchangeable piece of software gets to execute as the first step
// after power is turned on. ... By successively validating signatures,
// once the system is fully brought up, we know for sure that all running
// software has been correctly signed."  — secure boot
//
// "At boot, it will calculate a hash sum of the boot loader code and store
// it in a TPM hardware register, before the boot loader is executed. ...
// The TPM registers merely form a cryptographic boot log."
//                                                      — authenticated boot
//
// The difference "is simply caused by different launch policies implemented
// by the trust anchor" — so BootChain implements both over the same stage
// list, and the tests demonstrate exactly that: same chain, one policy
// refuses, the other records.
#pragma once

#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "substrate/isolation.h"
#include "tpm/pcr_bank.h"
#include "util/result.h"

namespace lateral::core {

/// One stage of the boot chain (boot loader, kernel, system services...).
struct BootStage {
  std::string name;
  substrate::Image image;
  /// Signature over image.code by the platform owner (secure boot only).
  Bytes signature;
};

struct BootOutcome {
  bool booted = false;
  /// Stages that actually ran (all of them on success; a prefix when a
  /// secure-boot signature check refused a stage).
  std::size_t stages_run = 0;
  /// Measurement log, one digest per run stage (authenticated boot fills
  /// this; secure boot fills it for the stages it accepted).
  std::vector<crypto::Digest> log;
  /// Human-readable refusal reason, empty on success.
  std::string refusal;
};

/// Secure boot: verify each stage's signature before running it; refuse the
/// machine at the first invalid stage ("the machine will refuse to run
/// improperly signed software").
BootOutcome run_secure_boot(const crypto::RsaPublicKey& owner_key,
                            const std::vector<BootStage>& stages);

/// Authenticated boot: run everything, extend each stage's measurement into
/// `pcrs` at `pcr_index` — the cryptographic boot log that can later be
/// quoted. Users keep "the freedom to run arbitrary code".
BootOutcome run_authenticated_boot(tpm::PcrBank& pcrs, std::size_t pcr_index,
                                   const std::vector<BootStage>& stages);

/// The PCR value a verifier expects after an authenticated boot of exactly
/// `stages` (starting from a zeroed PCR).
crypto::Digest expected_pcr_after_boot(const std::vector<BootStage>& stages);

}  // namespace lateral::core
