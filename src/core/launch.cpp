#include "core/launch.h"

namespace lateral::core {

BootOutcome run_secure_boot(const crypto::RsaPublicKey& owner_key,
                            const std::vector<BootStage>& stages) {
  BootOutcome outcome;
  for (const BootStage& stage : stages) {
    if (!crypto::rsa_verify(owner_key, stage.image.code, stage.signature)
             .ok()) {
      outcome.refusal = "stage '" + stage.name + "' is not correctly signed";
      return outcome;  // halt: nothing after this stage runs
    }
    outcome.log.push_back(stage.image.measurement());
    outcome.stages_run++;
  }
  outcome.booted = true;
  return outcome;
}

BootOutcome run_authenticated_boot(tpm::PcrBank& pcrs, std::size_t pcr_index,
                                   const std::vector<BootStage>& stages) {
  BootOutcome outcome;
  for (const BootStage& stage : stages) {
    const crypto::Digest measurement = stage.image.measurement();
    // Measure BEFORE execute: the stage cannot lie about itself because the
    // previous (already-measured) stage extends the PCR.
    if (const Status s = pcrs.extend(pcr_index, measurement); !s.ok()) {
      outcome.refusal = "PCR extend failed";
      return outcome;
    }
    outcome.log.push_back(measurement);
    outcome.stages_run++;
  }
  outcome.booted = true;  // nothing is ever refused, only recorded
  return outcome;
}

crypto::Digest expected_pcr_after_boot(const std::vector<BootStage>& stages) {
  crypto::Digest pcr{};
  for (const BootStage& stage : stages) {
    pcr = crypto::Sha256::hash2(
        crypto::digest_view(pcr),
        crypto::digest_view(stage.image.measurement()));
  }
  return pcr;
}

}  // namespace lateral::core
