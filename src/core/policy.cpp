#include "core/policy.h"

#include <algorithm>

namespace lateral::core {

using substrate::AttackerModel;
using substrate::Feature;
using substrate::Features;

Features required_features(AttackerModel model) {
  // §II-D's incremental requirements:
  //   remote/local  -> basic access control (spatial isolation)
  //   physical_bus  -> + memory placement control / encryption
  //   physical_intrusion -> + trust anchor with launch policy
  Features required = static_cast<Features>(Feature::spatial_isolation);
  switch (model) {
    case AttackerModel::remote_network:
    case AttackerModel::local_software:
      break;
    case AttackerModel::physical_bus:
      required = required | Feature::memory_encryption;
      break;
    case AttackerModel::physical_intrusion:
      required = required | Feature::memory_encryption |
                 Feature::sealed_storage | Feature::attestation;
      break;
  }
  return required;
}

PolicyVerdict check(const Manifest& manifest,
                    const substrate::SubstrateInfo& info) {
  PolicyVerdict verdict;

  if (!info.defends(manifest.attacker)) {
    verdict.missing.push_back(
        info.name + " does not defend against attacker model '" +
        std::string(substrate::attacker_model_name(manifest.attacker)) + "'");
  }

  Features needed = required_features(manifest.attacker);
  if (manifest.needs_sealing) needed = needed | Feature::sealed_storage;
  if (manifest.needs_attestation) needed = needed | Feature::attestation;
  if (manifest.kind == substrate::DomainKind::legacy)
    needed = needed | Feature::legacy_hosting;

  struct Named {
    Feature f;
    const char* name;
  };
  static constexpr Named kNames[] = {
      {Feature::spatial_isolation, "spatial_isolation"},
      {Feature::memory_encryption, "memory_encryption"},
      {Feature::sealed_storage, "sealed_storage"},
      {Feature::attestation, "attestation"},
      {Feature::legacy_hosting, "legacy_hosting"},
  };
  for (const auto& [f, name] : kNames) {
    if (has_feature(needed, f) && !has_feature(info.features, f))
      verdict.missing.push_back(info.name + " lacks feature '" +
                                std::string(name) + "'");
  }

  verdict.satisfied = verdict.missing.empty();
  return verdict;
}

std::vector<std::string> suitable_substrates(
    const Manifest& manifest,
    const std::vector<substrate::SubstrateInfo>& candidates) {
  std::vector<const substrate::SubstrateInfo*> fitting;
  for (const auto& info : candidates)
    if (check(manifest, info).satisfied) fitting.push_back(&info);
  std::sort(fitting.begin(), fitting.end(),
            [](const auto* a, const auto* b) {
              if (a->tcb_loc != b->tcb_loc) return a->tcb_loc < b->tcb_loc;
              return a->name < b->name;
            });
  std::vector<std::string> names;
  names.reserve(fitting.size());
  for (const auto* info : fitting) names.push_back(info->name);
  return names;
}

Status check_trace_export(const std::vector<Manifest>& manifests,
                          const std::string& component,
                          const std::string& observer) {
  const Manifest* subject = nullptr;
  bool observer_known = false;
  for (const Manifest& m : manifests) {
    if (m.name == component) subject = &m;
    if (m.name == observer) observer_known = true;
  }
  if (!subject || !observer_known) return Errc::invalid_argument;
  if (component == observer) return Status::success();  // own spans, always
  if (subject->trace) {
    const auto& observers = subject->trace->observers;
    if (std::find(observers.begin(), observers.end(), observer) !=
        observers.end())
      return Status::success();
  }
  // A declared trust edge means the component already consumes the
  // observer's replies un-vetted — its payload bytes flowing there adds no
  // boundary the manifest didn't accept.
  if (std::find(subject->trusts.begin(), subject->trusts.end(), observer) !=
      subject->trusts.end())
    return Status::success();
  return Errc::redaction_denied;
}

}  // namespace lateral::core
