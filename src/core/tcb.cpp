#include "core/tcb.h"

namespace lateral::core {

std::vector<TcbReport> tcb_of_manifests(
    const std::vector<Manifest>& manifests,
    const std::map<std::string, std::uint64_t>& substrate_loc_by_name) {
  std::map<std::string, const Manifest*> by_name;
  for (const Manifest& m : manifests) by_name[m.name] = &m;

  // Reverse view of the propagation graph: who does `m` depend on? The
  // trust graph edge u -> v means "compromise of u spreads to v", i.e.
  // v trusts u, i.e. u is in v's TCB.
  const TrustGraph graph = TrustGraph::from_manifests(manifests);

  std::vector<TcbReport> reports;
  reports.reserve(manifests.size());
  for (const Manifest& m : manifests) {
    TcbReport report;
    report.component = m.name;
    report.own_loc = m.loc;
    const auto sub_it = substrate_loc_by_name.find(m.substrate_name);
    report.substrate_loc =
        sub_it == substrate_loc_by_name.end() ? 0 : sub_it->second;

    // Transitive closure of peers m trusts: walk `trusts` edges outward.
    std::vector<std::string> frontier(m.trusts.begin(), m.trusts.end());
    std::map<std::string, bool> seen;
    seen[m.name] = true;
    while (!frontier.empty()) {
      const std::string peer = std::move(frontier.back());
      frontier.pop_back();
      if (seen[peer]) continue;
      seen[peer] = true;
      const auto it = by_name.find(peer);
      if (it == by_name.end()) continue;
      report.trusted_peer_loc += it->second->loc;
      for (const std::string& next : it->second->trusts)
        frontier.push_back(next);
    }
    reports.push_back(report);
  }
  return reports;
}

std::uint64_t monolithic_tcb(const std::vector<Manifest>& manifests,
                             std::uint64_t substrate_loc) {
  std::uint64_t total = substrate_loc;
  for (const Manifest& m : manifests) total += m.loc;
  return total;
}

}  // namespace lateral::core
