#include "core/trust_graph.h"

#include <sstream>

#include "core/manifest.h"

namespace lateral::core {

Status TrustGraph::add_node(const std::string& name, double asset_value) {
  if (name.empty() || asset_value < 0) return Errc::invalid_argument;
  const auto [it, inserted] = nodes_.emplace(name, asset_value);
  (void)it;
  return inserted ? Status::success() : Status(Errc::invalid_argument);
}

Status TrustGraph::add_propagation_edge(const std::string& from,
                                        const std::string& to) {
  if (!nodes_.contains(from) || !nodes_.contains(to))
    return Errc::invalid_argument;
  edges_[from].insert(to);
  return Status::success();
}

Result<std::set<std::string>> TrustGraph::compromised_set(
    const std::string& start) const {
  if (!nodes_.contains(start)) return Errc::invalid_argument;
  std::set<std::string> seen{start};
  std::vector<std::string> frontier{start};
  while (!frontier.empty()) {
    const std::string node = std::move(frontier.back());
    frontier.pop_back();
    const auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (const std::string& next : it->second)
      if (seen.insert(next).second) frontier.push_back(next);
  }
  return seen;
}

Result<double> TrustGraph::compromised_value(const std::string& start) const {
  auto set = compromised_set(start);
  if (!set) return set.error();
  double value = 0;
  for (const std::string& node : *set) value += nodes_.at(node);
  return value;
}

double TrustGraph::total_value() const {
  double total = 0;
  for (const auto& [name, value] : nodes_) total += value;
  return total;
}

double TrustGraph::containment() const {
  if (nodes_.empty()) return 0.0;
  const double total = total_value();
  if (total == 0) return 0.0;
  double accumulated = 0;
  for (const auto& [name, value] : nodes_)
    accumulated += *compromised_value(name) / total;
  return accumulated / static_cast<double>(nodes_.size());
}

std::string TrustGraph::to_dot() const {
  std::ostringstream out;
  out << "digraph trust {\n";
  for (const auto& [name, value] : nodes_)
    out << "  \"" << name << "\" [label=\"" << name << " (" << value
        << ")\"];\n";
  for (const auto& [from, targets] : edges_)
    for (const std::string& to : targets)
      out << "  \"" << from << "\" -> \"" << to << "\";\n";
  out << "}\n";
  return out.str();
}

TrustGraph TrustGraph::from_manifests(const std::vector<Manifest>& manifests) {
  TrustGraph graph;
  for (const Manifest& m : manifests) (void)graph.add_node(m.name, m.asset_value);
  for (const Manifest& m : manifests)
    for (const std::string& trusted_peer : m.trusts)
      (void)graph.add_propagation_edge(trusted_peer, m.name);
  return graph;
}

TrustGraph TrustGraph::monolithic_counterfactual(
    const std::vector<Manifest>& manifests) {
  TrustGraph graph;
  for (const Manifest& m : manifests) (void)graph.add_node(m.name, m.asset_value);
  for (const Manifest& a : manifests)
    for (const Manifest& b : manifests)
      if (a.name != b.name) (void)graph.add_propagation_edge(a.name, b.name);
  return graph;
}

}  // namespace lateral::core
