// Standard substrate registry with all five built-in isolation technologies.
#pragma once

#include "substrate/registry.h"

namespace lateral::core {

/// Registry containing "microkernel", "trustzone", "sgx", "tpm", "ftpm",
/// "sep" and "cheri".
substrate::SubstrateRegistry make_standard_registry();

}  // namespace lateral::core
