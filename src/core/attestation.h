// Challenge-response attestation protocol (paper §II-D, §III-C).
//
// The smart-meter flow of Fig. 3: before the meter sends readings, it
// verifies "the code identity of the data anonymizer component" — a fresh
// nonce prevents replay, the quote binds (nonce || context) to the device
// endorsement chain, and the verifier checks both the chain and the
// expected measurement ("the signature of the known-good anonymizer").
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/hmac.h"
#include "substrate/quote.h"
#include "substrate/substrate.h"
#include "util/result.h"

namespace lateral::core {

/// The challenger side: issues nonces and verifies quotes.
///
/// verify()/make_challenge() are virtual so policy layers can interpose
/// without changing callers — fleet::CachedVerifier reuses the chain /
/// binding / measurement checks but short-circuits repeat verifications of
/// an already-trusted code identity.
class AttestationVerifier {
 public:
  explicit AttestationVerifier(BytesView drbg_seed);
  virtual ~AttestationVerifier() = default;

  /// Register a vendor root we accept quotes chained to.
  void add_trusted_root(const crypto::RsaPublicKey& root);

  /// Register a known-good code identity under a logical name
  /// (e.g. "anonymizer" -> SHA-256 of the audited open-source build).
  void expect_measurement(const std::string& logical_name,
                          const crypto::Digest& measurement);

  /// The known-good measurement registered for `logical_name`, if any.
  std::optional<crypto::Digest> expectation(
      const std::string& logical_name) const;

  /// Produce a fresh challenge nonce. At most kMaxOutstanding challenges
  /// are tracked; beyond that the oldest unconsumed one is forgotten (its
  /// response would then fail freshness — the prover restarts the
  /// handshake). The bound keeps a fleet-scale verifier, whose cached-hit
  /// connections never consume their nonces, from growing without limit.
  virtual Bytes make_challenge();

  /// Verify a serialized quote against a previously issued challenge:
  ///  1. the quote chain verifies under one of the trusted roots,
  ///  2. quote.user_data == H(nonce || context) — fresh and bound,
  ///  3. the measurement matches the expectation for logical_name.
  /// The nonce is consumed: a second verification with it fails (replay).
  virtual Status verify(const std::string& logical_name, BytesView quote_wire,
                        BytesView nonce, BytesView context);

  static constexpr std::size_t kMaxOutstanding = 4096;

 protected:
  /// Is `nonce` an outstanding challenge we issued? (Does not consume.)
  bool challenge_outstanding(BytesView nonce) const;
  /// Consume an outstanding challenge so it can never verify again.
  void consume_challenge(BytesView nonce);
  /// The endorsement-chain part of verify(): the quote chains to one of the
  /// trusted roots. This is the expensive step (RSA signature checks) that
  /// fleet::CachedVerifier amortizes across a burst of identical meters.
  Status check_chain(const substrate::Quote& quote) const;

 private:
  crypto::HmacDrbg drbg_;
  std::vector<crypto::RsaPublicKey> roots_;
  std::map<std::string, crypto::Digest> expectations_;
  std::vector<Bytes> outstanding_nonces_;
};

/// The prover side: answer a challenge with a quote over H(nonce || context).
/// `context` binds the quote to its use (e.g. a DH public key), preventing
/// relay to a different session.
Result<Bytes> respond_to_challenge(substrate::IsolationSubstrate& substrate,
                                   substrate::DomainId domain, BytesView nonce,
                                   BytesView context);

/// The user_data a verifier expects for (nonce, context).
Bytes bound_user_data(BytesView nonce, BytesView context);

}  // namespace lateral::core
