// Trust graph and compromise-containment analysis (paper Fig. 1, §I, §III-B).
//
// Nodes are components (or colocated subsystems); a directed edge u -> v
// means "compromise of u spreads to v". In a vertical/monolithic design all
// subsystems share one protection domain, so the propagation graph is
// complete; in a horizontal design, edges exist only where a component
// consumes another's output without a trusted wrapper.
//
// containment() quantifies the paper's core claim: "a subversion of one
// component can often be contained and does not infect other components."
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace lateral::core {

struct Manifest;

class TrustGraph {
 public:
  /// Add a component carrying assets worth `asset_value`.
  Status add_node(const std::string& name, double asset_value = 1.0);

  /// Compromise of `from` spreads to `to`.
  Status add_propagation_edge(const std::string& from, const std::string& to);

  std::size_t node_count() const { return nodes_.size(); }
  bool has_node(const std::string& name) const { return nodes_.contains(name); }

  /// All nodes reachable from `start` (including start) along propagation
  /// edges — the blast radius of one exploited component.
  Result<std::set<std::string>> compromised_set(const std::string& start) const;

  /// Asset value captured when `start` is exploited.
  Result<double> compromised_value(const std::string& start) const;

  double total_value() const;

  /// The containment metric: expected fraction of total asset value an
  /// attacker captures when exploiting a uniformly random component.
  /// 1.0 = monolithic worst case, ->1/n for perfectly isolated components
  /// of equal value.
  double containment() const;

  /// Graphviz rendering for documentation and debugging.
  std::string to_dot() const;

  /// Build the propagation graph of a horizontal design from manifests:
  /// one node per component, edges along `trusts` declarations (v trusts u
  /// => compromise of u spreads to v).
  static TrustGraph from_manifests(const std::vector<Manifest>& manifests);

  /// The vertical/monolithic counterfactual of the same manifests: all
  /// components colocate in one protection domain (complete digraph).
  static TrustGraph monolithic_counterfactual(
      const std::vector<Manifest>& manifests);

 private:
  std::map<std::string, double> nodes_;                       // name -> value
  std::map<std::string, std::set<std::string>> edges_;        // from -> to*
};

}  // namespace lateral::core
