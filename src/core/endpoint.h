// Epoch-checked channel endpoints (supervised-restart safety).
//
// An Endpoint is one side of an assembly channel, captured at a point in
// time: substrate, channel, acting domain, and the channel's epoch at mint.
// Substrate channels survive a supervised restart (the ChannelId stays
// stable; see IsolationSubstrate::rebind_channel), but everything queued or
// minted before the crash belongs to the old life of the component. The
// epoch check makes that boundary explicit: an Endpoint minted before a
// restart fails every operation with Errc::stale_epoch instead of silently
// driving the reincarnated channel with pre-crash assumptions. Holders
// re-mint through Assembly::endpoint() after a restart.
//
// This replaces the old Assembly::Wire POD, which carried no epoch and so
// could not distinguish "the component I attached to" from "whatever lives
// behind this channel id now".
#pragma once

#include "substrate/substrate.h"
#include "util/result.h"

namespace lateral::core {

class Endpoint {
 public:
  Endpoint() = default;
  Endpoint(substrate::IsolationSubstrate* sub, substrate::ChannelId channel,
           substrate::DomainId actor, std::uint64_t epoch)
      : substrate_(sub), channel_(channel), actor_(actor), epoch_(epoch) {}

  bool valid() const { return substrate_ != nullptr; }
  substrate::IsolationSubstrate* substrate() const { return substrate_; }
  substrate::ChannelId channel() const { return channel_; }
  substrate::DomainId actor() const { return actor_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Errc::stale_epoch when the channel was re-epoched (peer restarted or
  /// explicitly fenced) since this endpoint was minted; propagates the
  /// substrate's error (e.g. no_such_channel) when the channel is gone.
  Status check() const {
    if (!substrate_) return Errc::invalid_argument;
    const auto now = substrate_->channel_epoch(channel_);
    if (!now) return now.error();
    if (*now != epoch_) return Errc::stale_epoch;
    return Status::success();
  }

  Result<Bytes> call(BytesView data) const {
    if (const Status s = check(); !s.ok()) return s.error();
    return substrate_->call(actor_, channel_, data);
  }

  Result<substrate::BatchReply> call_batch(
      const std::vector<Bytes>& requests) const {
    if (const Status s = check(); !s.ok()) return s.error();
    return substrate_->call_batch(actor_, channel_, requests);
  }

  Result<Bytes> call_sg(
      BytesView header,
      std::span<const substrate::RegionDescriptor> segments) const {
    if (const Status s = check(); !s.ok()) return s.error();
    return substrate_->call_sg(actor_, channel_, header, segments);
  }

  Result<substrate::BatchReply> call_batch_sg(
      const std::vector<substrate::SgRequest>& requests) const {
    if (const Status s = check(); !s.ok()) return s.error();
    return substrate_->call_batch_sg(actor_, channel_, requests);
  }

  Status send(BytesView data) const {
    if (const Status s = check(); !s.ok()) return s;
    return substrate_->send(actor_, channel_, data);
  }

  Result<substrate::Message> receive() const {
    if (const Status s = check(); !s.ok()) return s.error();
    return substrate_->receive(actor_, channel_);
  }

 private:
  substrate::IsolationSubstrate* substrate_ = nullptr;
  substrate::ChannelId channel_ = 0;
  substrate::DomainId actor_ = substrate::kInvalidDomain;
  std::uint64_t epoch_ = 0;
};

}  // namespace lateral::core
