#include "core/standard_registry.h"

#include "cheri/cheri.h"
#include "ftpm/ftpm.h"
#include "microkernel/microkernel.h"
#include "noc/noc.h"
#include "sep/sep.h"
#include "sgx/sgx.h"
#include "tpm/tpm.h"
#include "trustzone/trustzone.h"
#include "util/result.h"

namespace lateral::core {

substrate::SubstrateRegistry make_standard_registry() {
  substrate::SubstrateRegistry registry;
  if (!microkernel::register_factory(registry).ok() ||
      !trustzone::register_factory(registry).ok() ||
      !sgx::register_factory(registry).ok() ||
      !tpm::register_factory(registry).ok() ||
      !ftpm::register_factory(registry).ok() ||
      !sep::register_factory(registry).ok() ||
      !cheri::register_factory(registry).ok() ||
      !noc::register_factory(registry).ok())
    throw Error("make_standard_registry: duplicate registration");
  return registry;
}

}  // namespace lateral::core
