// SystemComposer: turn manifests into a running assembly (paper §III-A/B).
//
// The composer is where "separation is built right into the development
// workflow": it places every component on its requested substrate (after a
// PolicyChecker pass), creates domains, and wires exactly the channels the
// manifests declare — nothing else. At runtime, Assembly::invoke() refuses
// undeclared communication before it even reaches a substrate, and the
// substrate would refuse it too (defence in depth; the fig6 ablation
// disables the manifest check to show the substrate still holds).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/manifest.h"
#include "core/trust_graph.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::core {

/// A composed, running system of components.
class Assembly {
 public:
  struct Component {
    Manifest manifest;
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::DomainId domain = substrate::kInvalidDomain;
  };

  /// Look up a component. Errc::no_such_domain when unknown.
  Result<const Component*> component(const std::string& name) const;

  /// Install the behaviour (handler) of a component.
  Status set_behavior(const std::string& name,
                      substrate::IsolationSubstrate::Handler handler);

  /// Invoke `to` from `from` over their declared channel. Fails with
  /// policy_violation when the manifests declared no such channel.
  Result<Bytes> invoke(const std::string& from, const std::string& to,
                       BytesView data);

  /// Async variants.
  Status send(const std::string& from, const std::string& to, BytesView data);
  Result<substrate::Message> receive(const std::string& at,
                                     const std::string& from);

  /// The raw substrate endpoint of `from`'s side of its declared channel to
  /// `to` — what lateral::runtime's batched adapters (BatchChannel) drive.
  /// The manifest check happens here, once, when the wire is handed out;
  /// the substrate's reference monitor still checks every use.
  /// Errc::policy_violation when the manifests declared no such channel.
  struct Wire {
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::ChannelId channel = 0;
    substrate::DomainId actor = substrate::kInvalidDomain;
  };
  Result<Wire> wire(const std::string& from, const std::string& to) const;

  /// Badge identifying `from` on the channel between from and to (what the
  /// receiver will see in Invocation::badge).
  Result<std::uint64_t> badge_of(const std::string& from,
                                 const std::string& to) const;

  /// Mark a component compromised (containment experiments).
  Status compromise(const std::string& name);

  /// Propagation graph of this assembly (from the manifests).
  TrustGraph trust_graph() const;

  std::vector<std::string> component_names() const;

  /// When false, invoke()/send() skip the manifest-level channel check and
  /// rely on the substrate alone (ablation hook; default true).
  void set_manifest_enforcement(bool on) { enforce_manifest_ = on; }

 private:
  friend class SystemComposer;

  struct ChannelKey {
    std::string a;  // lexicographically smaller name
    std::string b;
    auto operator<=>(const ChannelKey&) const = default;
  };
  static ChannelKey key_of(const std::string& x, const std::string& y);

  struct ChannelInfo {
    substrate::ChannelId id = 0;
    substrate::IsolationSubstrate* substrate = nullptr;
    std::uint64_t badge_a = 0;  // badge of key.a's endpoint
    std::uint64_t badge_b = 0;
  };

  Result<const ChannelInfo*> channel_between(const std::string& x,
                                             const std::string& y) const;

  std::map<std::string, Component> components_;
  std::map<ChannelKey, ChannelInfo> channels_;
  std::vector<Manifest> manifests_;
  bool enforce_manifest_ = true;
};

class SystemComposer {
 public:
  /// `substrates` maps substrate names to live instances (possibly on
  /// different machines).
  explicit SystemComposer(
      std::map<std::string, substrate::IsolationSubstrate*> substrates);

  /// Compose an assembly. Fails with policy_violation when validation or
  /// the policy check fails; the diagnostics() of the last compose attempt
  /// explain why.
  Result<std::unique_ptr<Assembly>> compose(
      const std::vector<Manifest>& manifests);

  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

 private:
  std::map<std::string, substrate::IsolationSubstrate*> substrates_;
  std::vector<std::string> diagnostics_;
};

}  // namespace lateral::core
