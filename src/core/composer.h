// SystemComposer: turn manifests into a running assembly (paper §III-A/B).
//
// The composer is where "separation is built right into the development
// workflow": it places every component on its requested substrate (after a
// PolicyChecker pass), creates domains, and wires exactly the channels the
// manifests declare — nothing else. At runtime, Assembly::invoke() refuses
// undeclared communication before it even reaches a substrate, and the
// substrate would refuse it too (defence in depth; the fig6 ablation
// disables the manifest check to show the substrate still holds).
//
// The assembly API is handle-based: resolve a component name once with
// ref(), then drive the hot paths (invoke/send/receive) with the returned
// ComponentRef — an interned index, so per-invocation cost is a vector
// index plus a short adjacency scan instead of two map lookups over
// strings. The string overloads remain as thin wrappers for setup code and
// tests. Endpoints handed out to runtime adapters carry the channel epoch
// (core::Endpoint), so holders from before a supervised restart fail fast
// with Errc::stale_epoch instead of driving the reincarnated channel.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "core/manifest.h"
#include "core/trust_graph.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::trace {
class Tracer;
}  // namespace lateral::trace
namespace lateral::runtime {
class MetricsHub;
}  // namespace lateral::runtime
namespace lateral::health {
class AuditLog;
}  // namespace lateral::health

namespace lateral::core {

/// Interned handle to a component of one Assembly. Cheap to copy and
/// compare; only meaningful to the Assembly that minted it. Refs stay valid
/// across supervised restarts of the component — the name keeps denoting
/// the (possibly reincarnated) component, not one domain instance.
class ComponentRef {
 public:
  constexpr ComponentRef() = default;
  constexpr bool valid() const { return index_ != kInvalid; }
  friend constexpr bool operator==(ComponentRef, ComponentRef) = default;

 private:
  friend class Assembly;
  friend class SystemComposer;
  static constexpr std::uint32_t kInvalid = 0xffff'ffff;
  constexpr explicit ComponentRef(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = kInvalid;
};

/// A composed, running system of components.
class Assembly {
 public:
  struct Component {
    Manifest manifest;
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::DomainId domain = substrate::kInvalidDomain;
    /// Times this component has been relaunched after a crash.
    std::uint32_t incarnation = 0;
    /// When non-empty, restart_component launches this image instead of the
    /// deterministic manifest-derived one — the OTA swap mechanism: the
    /// update orchestrator installs the staged slot's bytes here, restarts,
    /// and the component re-measures to the *new* image. Reverting restores
    /// the previous slot's bytes the same way.
    Bytes image_override;
  };

  /// Intern a component name. Errc::no_such_domain when unknown.
  Result<ComponentRef> ref(const std::string& name) const;
  /// Name behind a handle (empty for an invalid/foreign ref).
  std::string_view name_of(ComponentRef ref) const;

  /// Look up a component. Errc::no_such_domain when unknown.
  Result<const Component*> component(ComponentRef ref) const;
  Result<const Component*> component(const std::string& name) const;

  /// Install the behaviour (handler) of a component. The assembly records
  /// the handler so a supervised restart can reinstall it into the
  /// relaunched domain.
  Status set_behavior(ComponentRef ref,
                      substrate::IsolationSubstrate::Handler handler);
  Status set_behavior(const std::string& name,
                      substrate::IsolationSubstrate::Handler handler);

  /// Invoke `to` from `from` over their declared channel. Fails with
  /// policy_violation when the manifests declared no such channel, and
  /// with domain_dead when either side has crashed and not been restarted.
  Result<Bytes> invoke(ComponentRef from, ComponentRef to, BytesView data);
  Result<Bytes> invoke(const std::string& from, const std::string& to,
                       BytesView data);

  /// Async variants.
  Status send(ComponentRef from, ComponentRef to, BytesView data);
  Status send(const std::string& from, const std::string& to, BytesView data);
  Result<substrate::Message> receive(ComponentRef at, ComponentRef from);
  Result<substrate::Message> receive(const std::string& at,
                                     const std::string& from);

  /// The epoch-stamped endpoint of `from`'s side of its declared channel to
  /// `to` — what lateral::runtime's batched adapters (BatchChannel) drive.
  /// The manifest check happens here, once, when the endpoint is handed
  /// out; the substrate's reference monitor still checks every use, and the
  /// endpoint itself goes stale (Errc::stale_epoch) when a supervised
  /// restart re-epochs the channel — holders re-mint through this method.
  /// Errc::policy_violation when the manifests declared no such channel.
  Result<Endpoint> endpoint(ComponentRef from, ComponentRef to) const;
  Result<Endpoint> endpoint(const std::string& from,
                            const std::string& to) const;

  /// Badge identifying `from` on the channel between from and to (what the
  /// receiver will see in Invocation::badge). Badges are reminted when a
  /// restart rebinds the channel, so resolve them per incarnation.
  Result<std::uint64_t> badge_of(const std::string& from,
                                 const std::string& to) const;

  /// The shared grant region the manifests declared between two components
  /// (either direction). Both endpoints were mapped at compose time, so the
  /// caller can go straight to region_write / make_descriptor / call_sg.
  /// Errc::policy_violation when no region was declared;
  /// Errc::no_region_support when it was declared but the substrate cannot
  /// realize it (TPM/fTPM) — the caller's cue to use the copy path.
  Result<substrate::RegionId> region_between(ComponentRef x,
                                             ComponentRef y) const;
  Result<substrate::RegionId> region_between(const std::string& x,
                                             const std::string& y) const;

  /// Crash a component abruptly (fault injection / containment drills):
  /// kill_domain at the substrate, leaving a corpse every peer observes as
  /// Errc::domain_dead until restart_component() relaunches it.
  Status kill_component(ComponentRef ref);
  Status kill_component(const std::string& name);

  /// Relaunch a component through the composer path: a fresh domain from
  /// the same manifest (same deterministic image, so re-measurement yields
  /// the expected value), every assembly channel rebound to the new domain
  /// under a bumped epoch and fresh badges, the corpse reaped, and the
  /// recorded behaviour reinstalled. A still-live component is killed
  /// first (forced restart). Errc::no_such_domain for unknown components.
  /// On success the component's ref and channels remain valid; outstanding
  /// Endpoint objects go stale by design.
  Status restart_component(ComponentRef ref);
  Status restart_component(const std::string& name);

  /// Install the image the *next* restart_component will launch (empty =
  /// back to the deterministic manifest-derived image). This only stages
  /// intent: the running domain is untouched until restart_component swaps
  /// it. The update orchestrator is the intended caller; it verifies the
  /// bytes against a signed manifest before installing them here.
  Status set_component_image(ComponentRef ref, Bytes code);
  Status set_component_image(const std::string& name, Bytes code);
  /// The image bytes a restart of this component would launch right now
  /// (the override when set, else the manifest-derived default).
  Result<Bytes> component_image(ComponentRef ref) const;

  /// Number of domains behind a component name: N for a component declared
  /// `shard N` (expanded into name#0..name#N-1), 1 for an ordinary
  /// component, 0 for an unknown name.
  std::size_t shard_count(const std::string& name) const;
  /// Resolve a (possibly sharded) component plus a routing key to the
  /// concrete shard: shard_ref("imap", k) interns "imap#(k mod N)" when imap
  /// was declared `shard N`, and falls back to ref(name) for unsharded
  /// components — callers route by key (e.g. mailbox id, client id) without
  /// knowing whether the target is sharded. Errc::no_such_domain when
  /// unknown.
  Result<ComponentRef> shard_ref(const std::string& name,
                                 std::uint64_t key) const;

  /// Mark a component compromised (containment experiments).
  Status compromise(const std::string& name);

  /// Propagation graph of this assembly (from the manifests).
  TrustGraph trust_graph() const;

  std::vector<std::string> component_names() const;

  /// The manifests this assembly was composed from (redaction policy for
  /// trace exports is decided against these).
  const std::vector<Manifest>& manifests() const { return manifests_; }

  /// When false, invoke()/send() skip the manifest-level channel check and
  /// rely on the substrate alone (ablation hook; default true).
  void set_manifest_enforcement(bool on) { enforce_manifest_ = on; }

  /// Audit sink: a manifest-level POLA refusal (invoke/send/endpoint over a
  /// channel the manifests never declared) is a security-relevant event and
  /// lands in the log as evidence, not just a returned Errc.
  void set_audit(health::AuditLog* audit) { audit_ = audit; }

  /// Plain-text observability snapshot of this assembly: per-component
  /// flight-recorder contents from `tracer` plus per-label counters from
  /// `hub` (either may be null). Defined in trace/exporter.cpp — the
  /// observability layer sits above core, so the definition lives there.
  std::string dump_observability(const trace::Tracer* tracer,
                                 const runtime::MetricsHub* hub) const;

 private:
  friend class SystemComposer;

  /// One declared channel between two components (undirected).
  struct ChannelRec {
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::ChannelId id = 0;
    std::uint32_t a = 0;  // node index, a < b not required (insertion order)
    std::uint32_t b = 0;
    std::uint64_t badge_a = 0;
    std::uint64_t badge_b = 0;
  };

  /// One declared grant region between two components. `supported` is false
  /// when the substrate refused with no_region_support (TPM/fTPM): the
  /// declaration stays recorded so region_between can report the precise
  /// reason, and callers fall back to the copy path.
  struct RegionRec {
    substrate::IsolationSubstrate* substrate = nullptr;
    substrate::RegionId id = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    bool supported = false;
  };

  struct Node {
    Component component;
    substrate::IsolationSubstrate::Handler behavior;  // recorded for restart
    /// Adjacency: peer node index -> index into channels_. Kept as a flat
    /// vector (manifests declare a handful of channels per component), so
    /// the invoke hot path is index + linear scan, no string compares.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    /// Adjacency for grant regions: peer node index -> index into regions_.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> region_edges;
  };

  const Node* node_of(ComponentRef ref) const;
  Node* node_of(ComponentRef ref);
  /// Channel between two interned components; no_such_channel when the
  /// manifests declared none.
  Result<const ChannelRec*> channel_between(ComponentRef x,
                                            ComponentRef y) const;

  std::vector<Node> nodes_;
  std::vector<ChannelRec> channels_;
  std::vector<RegionRec> regions_;
  std::map<std::string, std::uint32_t, std::less<>> index_;  // name -> node
  std::vector<Manifest> manifests_;
  /// Declared shard counts by *base* name (only names declared `shard N`,
  /// N > 1); shard_ref routes through this before falling back to ref().
  std::map<std::string, std::uint32_t, std::less<>> shard_counts_;
  bool enforce_manifest_ = true;
  health::AuditLog* audit_ = nullptr;
};

/// Expand `shard N` declarations: each sharded manifest becomes N copies
/// ("name#0" .. "name#N-1", each with shards reset to 1), and every
/// channel / region / trust / trace-observer reference to a sharded name —
/// in sharded and unsharded manifests alike — fans out to all N shard
/// names. Manifests without shard declarations pass through unchanged.
/// compose() applies this after validation (so diagnostics name what the
/// developer wrote) and composes the expanded set; exposed for tests and
/// for tooling that wants to inspect the post-expansion system.
std::vector<Manifest> expand_shards(const std::vector<Manifest>& manifests);

class SystemComposer {
 public:
  /// `substrates` maps substrate names to live instances (possibly on
  /// different machines).
  explicit SystemComposer(
      std::map<std::string, substrate::IsolationSubstrate*> substrates);

  /// Compose an assembly. Fails with policy_violation when validation or
  /// the policy check fails; the diagnostics() of the last compose attempt
  /// explain why.
  Result<std::unique_ptr<Assembly>> compose(
      const std::vector<Manifest>& manifests);

  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

 private:
  std::map<std::string, substrate::IsolationSubstrate*> substrates_;
  std::vector<std::string> diagnostics_;
};

}  // namespace lateral::core
