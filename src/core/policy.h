// PolicyChecker: which hardware features does an attacker model require,
// and does a given substrate satisfy a manifest? (paper §II-D)
//
// The paper identifies "four incremental hardware requirements to address
// different attacker models: basic access control ... memory placement
// control and memory encryption ... a trust anchor ... a secret with
// restricted access." required_features() encodes exactly that table;
// check() applies it so that substrate choices are "made deliberately and
// not based on fashionability of a new hardware feature".
#pragma once

#include <string>
#include <vector>

#include "core/manifest.h"
#include "substrate/substrate.h"

namespace lateral::core {

/// Features a substrate must offer to withstand the given attacker model
/// (cumulative: stronger models include weaker models' requirements).
substrate::Features required_features(substrate::AttackerModel model);

struct PolicyVerdict {
  bool satisfied = false;
  /// Human-readable reasons for a rejection (empty when satisfied).
  std::vector<std::string> missing;
};

/// Check one manifest against one substrate.
PolicyVerdict check(const Manifest& manifest,
                    const substrate::SubstrateInfo& info);

/// From a set of candidate substrates, the ones that satisfy the manifest —
/// cheapest-TCB first, the deliberate choice the paper argues for (a bigger
/// substrate than needed "may unnecessarily increase the attack surface").
std::vector<std::string> suitable_substrates(
    const Manifest& manifest,
    const std::vector<substrate::SubstrateInfo>& candidates);

/// May `observer` receive `component`'s payload-bearing spans in a trace
/// export? Metadata-only spans are always exportable; this guards the
/// opt-in payload captures, because trace data crossing a trust boundary is
/// itself a security decision (a component's message bytes can hold keys,
/// tokens, plaintext). Allowed when the observer is the component itself,
/// is named by the component's `trace { observer ... }` stanza, or holds a
/// declared trust edge from the component (`trusts observer` — the
/// component already consumes that peer's replies un-vetted). Anything else
/// is Errc::redaction_denied; unknown names are Errc::invalid_argument.
Status check_trace_export(const std::vector<Manifest>& manifests,
                          const std::string& component,
                          const std::string& observer);

}  // namespace lateral::core
