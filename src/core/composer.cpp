#include "core/composer.h"

#include <algorithm>

#include "core/policy.h"

namespace lateral::core {

Assembly::ChannelKey Assembly::key_of(const std::string& x,
                                      const std::string& y) {
  return (x < y) ? ChannelKey{x, y} : ChannelKey{y, x};
}

Result<const Assembly::Component*> Assembly::component(
    const std::string& name) const {
  const auto it = components_.find(name);
  if (it == components_.end()) return Errc::no_such_domain;
  return &it->second;
}

Result<const Assembly::ChannelInfo*> Assembly::channel_between(
    const std::string& x, const std::string& y) const {
  const auto it = channels_.find(key_of(x, y));
  if (it == channels_.end()) return Errc::no_such_channel;
  return &it->second;
}

Status Assembly::set_behavior(const std::string& name,
                              substrate::IsolationSubstrate::Handler handler) {
  const auto it = components_.find(name);
  if (it == components_.end()) return Errc::no_such_domain;
  return it->second.substrate->set_handler(it->second.domain,
                                           std::move(handler));
}

Result<Bytes> Assembly::invoke(const std::string& from, const std::string& to,
                               BytesView data) {
  const auto from_it = components_.find(from);
  const auto to_it = components_.find(to);
  if (from_it == components_.end() || to_it == components_.end())
    return Errc::no_such_domain;

  auto chan = channel_between(from, to);
  if (enforce_manifest_ && !chan) {
    // POLA at the framework level: the manifests declared no such channel,
    // so the composer never created one.
    return Errc::policy_violation;
  }
  if (!chan) return Errc::no_such_channel;

  // Same-substrate channels go through the substrate's reference monitor.
  return (*chan)->substrate->call(from_it->second.domain, (*chan)->id, data);
}

Status Assembly::send(const std::string& from, const std::string& to,
                      BytesView data) {
  const auto from_it = components_.find(from);
  if (from_it == components_.end() || !components_.contains(to))
    return Errc::no_such_domain;
  auto chan = channel_between(from, to);
  if (enforce_manifest_ && !chan) return Errc::policy_violation;
  if (!chan) return Errc::no_such_channel;
  return (*chan)->substrate->send(from_it->second.domain, (*chan)->id, data);
}

Result<substrate::Message> Assembly::receive(const std::string& at,
                                             const std::string& from) {
  const auto at_it = components_.find(at);
  if (at_it == components_.end() || !components_.contains(from))
    return Errc::no_such_domain;
  auto chan = channel_between(at, from);
  if (!chan) return Errc::no_such_channel;
  return (*chan)->substrate->receive(at_it->second.domain, (*chan)->id);
}

Result<Assembly::Wire> Assembly::wire(const std::string& from,
                                      const std::string& to) const {
  const auto from_it = components_.find(from);
  if (from_it == components_.end() || !components_.contains(to))
    return Errc::no_such_domain;
  auto chan = channel_between(from, to);
  if (enforce_manifest_ && !chan) return Errc::policy_violation;
  if (!chan) return Errc::no_such_channel;
  Wire out;
  out.substrate = (*chan)->substrate;
  out.channel = (*chan)->id;
  out.actor = from_it->second.domain;
  return out;
}

Result<std::uint64_t> Assembly::badge_of(const std::string& from,
                                         const std::string& to) const {
  auto chan = channel_between(from, to);
  if (!chan) return chan.error();
  const ChannelKey key = key_of(from, to);
  return (key.a == from) ? (*chan)->badge_a : (*chan)->badge_b;
}

Status Assembly::compromise(const std::string& name) {
  const auto it = components_.find(name);
  if (it == components_.end()) return Errc::no_such_domain;
  return it->second.substrate->mark_compromised(it->second.domain);
}

TrustGraph Assembly::trust_graph() const {
  return TrustGraph::from_manifests(manifests_);
}

std::vector<std::string> Assembly::component_names() const {
  std::vector<std::string> names;
  names.reserve(components_.size());
  for (const auto& [name, component] : components_) names.push_back(name);
  return names;
}

SystemComposer::SystemComposer(
    std::map<std::string, substrate::IsolationSubstrate*> substrates)
    : substrates_(std::move(substrates)) {}

Result<std::unique_ptr<Assembly>> SystemComposer::compose(
    const std::vector<Manifest>& manifests) {
  diagnostics_ = validate(manifests);

  // Policy pass: every component must land on a substrate that defends its
  // declared attacker model and offers the features it needs.
  for (const Manifest& m : manifests) {
    const auto sub_it = substrates_.find(m.substrate_name);
    if (sub_it == substrates_.end()) {
      diagnostics_.push_back(m.name + ": unknown substrate '" +
                             m.substrate_name + "'");
      continue;
    }
    const PolicyVerdict verdict = check(m, sub_it->second->info());
    for (const std::string& reason : verdict.missing)
      diagnostics_.push_back(m.name + ": " + reason);
  }
  if (!diagnostics_.empty()) return Errc::policy_violation;

  auto assembly = std::make_unique<Assembly>();
  assembly->manifests_ = manifests;

  // On any failure below, tear down every domain created so far: a failed
  // composition must not leak half an application into the substrates.
  auto unwind = [&assembly] {
    for (const auto& [name, component] : assembly->components_)
      (void)component.substrate->destroy_domain(component.domain);
  };

  for (const Manifest& m : manifests) {
    substrate::IsolationSubstrate* sub = substrates_.at(m.substrate_name);
    substrate::DomainSpec spec;
    spec.name = m.name;
    spec.kind = m.kind;
    // Deterministic placeholder image; scenarios that care about specific
    // measurements (attestation tests) create domains directly instead.
    spec.image.name = m.name;
    spec.image.code = to_bytes("lateral.component:" + m.name);
    spec.memory_pages = m.memory_pages;
    spec.time_share_permille = m.time_share_permille;
    auto domain = sub->create_domain(spec);
    if (!domain) {
      diagnostics_.push_back(m.name + ": create_domain failed: " +
                             std::string(errc_name(domain.error())));
      unwind();
      return Errc::policy_violation;
    }
    Assembly::Component component;
    component.manifest = m;
    component.substrate = sub;
    component.domain = *domain;
    assembly->components_.emplace(m.name, component);
  }

  // Channel wiring: exactly the declared pairs, once each.
  for (const Manifest& m : manifests) {
    for (const std::string& peer : m.channels) {
      const Assembly::ChannelKey key = Assembly::key_of(m.name, peer);
      if (assembly->channels_.contains(key)) continue;
      const Assembly::Component& ca = assembly->components_.at(key.a);
      const Assembly::Component& cb = assembly->components_.at(key.b);
      if (ca.substrate != cb.substrate) {
        diagnostics_.push_back(
            "channel " + key.a + "<->" + key.b +
            ": components on different substrates; connect them with "
            "net::SecureChannel instead");
        unwind();
        return Errc::policy_violation;
      }
      auto channel = ca.substrate->create_channel(ca.domain, cb.domain);
      if (!channel) {
        diagnostics_.push_back("channel " + key.a + "<->" + key.b +
                               " failed: " +
                               std::string(errc_name(channel.error())));
        unwind();  // destroying the domains also reaps their channels
        return Errc::policy_violation;
      }
      Assembly::ChannelInfo info;
      info.id = *channel;
      info.substrate = ca.substrate;
      info.badge_a = ca.substrate->endpoint_badge(*channel, ca.domain)
                         .value_or(0);
      info.badge_b = cb.substrate->endpoint_badge(*channel, cb.domain)
                         .value_or(0);
      assembly->channels_.emplace(key, info);
    }
  }
  return assembly;
}

}  // namespace lateral::core
