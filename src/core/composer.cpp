#include "core/composer.h"

#include <algorithm>

#include "core/policy.h"
#include "health/audit.h"

namespace lateral::core {
namespace {

std::string shard_name(const std::string& base, std::size_t i) {
  return base + "#" + std::to_string(i);
}

/// Fan a peer list out over shard declarations: references to a name
/// declared `shard N` become N references, one per shard; everything else
/// passes through.
std::vector<std::string> fan_out(
    const std::vector<std::string>& peers,
    const std::map<std::string, std::size_t>& shard_of) {
  std::vector<std::string> out;
  out.reserve(peers.size());
  for (const std::string& peer : peers) {
    const auto it = shard_of.find(peer);
    if (it == shard_of.end()) {
      out.push_back(peer);
    } else {
      for (std::size_t i = 0; i < it->second; ++i)
        out.push_back(shard_name(peer, i));
    }
  }
  return out;
}

}  // namespace

std::vector<Manifest> expand_shards(const std::vector<Manifest>& manifests) {
  std::map<std::string, std::size_t> shard_of;
  for (const Manifest& m : manifests)
    if (m.shards > 1) shard_of.emplace(m.name, m.shards);
  if (shard_of.empty()) return manifests;

  std::vector<Manifest> expanded;
  for (const Manifest& m : manifests) {
    const std::size_t copies = m.shards > 1 ? m.shards : 1;
    for (std::size_t i = 0; i < copies; ++i) {
      Manifest c = m;
      if (m.shards > 1) {
        c.name = shard_name(m.name, i);
        c.shards = 1;  // each copy is one ordinary domain
      }
      c.channels = fan_out(m.channels, shard_of);
      c.trusts = fan_out(m.trusts, shard_of);
      c.regions.clear();
      for (const RegionDecl& decl : m.regions) {
        const auto it = shard_of.find(decl.peer);
        if (it == shard_of.end()) {
          c.regions.push_back(decl);
        } else {
          for (std::size_t s = 0; s < it->second; ++s) {
            RegionDecl copy = decl;
            copy.peer = shard_name(decl.peer, s);
            c.regions.push_back(std::move(copy));
          }
        }
      }
      if (c.trace) c.trace->observers = fan_out(m.trace->observers, shard_of);
      expanded.push_back(std::move(c));
    }
  }
  return expanded;
}

Result<ComponentRef> Assembly::ref(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return Errc::no_such_domain;
  return ComponentRef(it->second);
}

std::string_view Assembly::name_of(ComponentRef ref) const {
  const Node* node = node_of(ref);
  return node ? std::string_view(node->component.manifest.name)
              : std::string_view{};
}

const Assembly::Node* Assembly::node_of(ComponentRef ref) const {
  if (!ref.valid() || ref.index_ >= nodes_.size()) return nullptr;
  return &nodes_[ref.index_];
}

Assembly::Node* Assembly::node_of(ComponentRef ref) {
  if (!ref.valid() || ref.index_ >= nodes_.size()) return nullptr;
  return &nodes_[ref.index_];
}

Result<const Assembly::Component*> Assembly::component(
    ComponentRef ref) const {
  const Node* node = node_of(ref);
  if (!node) return Errc::no_such_domain;
  return &node->component;
}

Result<const Assembly::Component*> Assembly::component(
    const std::string& name) const {
  auto r = ref(name);
  if (!r) return r.error();
  return component(*r);
}

Result<const Assembly::ChannelRec*> Assembly::channel_between(
    ComponentRef x, ComponentRef y) const {
  const Node* node = node_of(x);
  if (!node || !node_of(y)) return Errc::no_such_channel;
  for (const auto& [peer, channel] : node->edges)
    if (peer == y.index_) return &channels_[channel];
  return Errc::no_such_channel;
}

Status Assembly::set_behavior(ComponentRef ref,
                              substrate::IsolationSubstrate::Handler handler) {
  Node* node = node_of(ref);
  if (!node) return Errc::no_such_domain;
  // Keep a copy: a supervised restart must be able to reinstall the
  // behaviour into the relaunched domain without the app's involvement.
  node->behavior = handler;
  return node->component.substrate->set_handler(node->component.domain,
                                                std::move(handler));
}

Status Assembly::set_behavior(const std::string& name,
                              substrate::IsolationSubstrate::Handler handler) {
  auto r = ref(name);
  if (!r) return r.error();
  return set_behavior(*r, std::move(handler));
}

Result<Bytes> Assembly::invoke(ComponentRef from, ComponentRef to,
                               BytesView data) {
  const Node* from_node = node_of(from);
  if (!from_node || !node_of(to)) return Errc::no_such_domain;

  auto chan = channel_between(from, to);
  if (enforce_manifest_ && !chan) {
    // POLA at the framework level: the manifests declared no such channel,
    // so the composer never created one.
    if (audit_)
      audit_->append(health::AuditKind::policy_violation,
                     from_node->component.manifest.name,
                     Errc::policy_violation,
                     from_node->component.manifest.name + "->" +
                         node_of(to)->component.manifest.name);
    return Errc::policy_violation;
  }
  if (!chan) return Errc::no_such_channel;

  // Same-substrate channels go through the substrate's reference monitor.
  return (*chan)->substrate->call(from_node->component.domain, (*chan)->id,
                                  data);
}

Result<Bytes> Assembly::invoke(const std::string& from, const std::string& to,
                               BytesView data) {
  auto f = ref(from);
  auto t = ref(to);
  if (!f || !t) return Errc::no_such_domain;
  return invoke(*f, *t, data);
}

Status Assembly::send(ComponentRef from, ComponentRef to, BytesView data) {
  const Node* from_node = node_of(from);
  if (!from_node || !node_of(to)) return Errc::no_such_domain;
  auto chan = channel_between(from, to);
  if (enforce_manifest_ && !chan) {
    if (audit_)
      audit_->append(health::AuditKind::policy_violation,
                     from_node->component.manifest.name,
                     Errc::policy_violation,
                     from_node->component.manifest.name + "->" +
                         node_of(to)->component.manifest.name);
    return Errc::policy_violation;
  }
  if (!chan) return Errc::no_such_channel;
  return (*chan)->substrate->send(from_node->component.domain, (*chan)->id,
                                  data);
}

Status Assembly::send(const std::string& from, const std::string& to,
                      BytesView data) {
  auto f = ref(from);
  auto t = ref(to);
  if (!f || !t) return Errc::no_such_domain;
  return send(*f, *t, data);
}

Result<substrate::Message> Assembly::receive(ComponentRef at,
                                             ComponentRef from) {
  const Node* at_node = node_of(at);
  if (!at_node || !node_of(from)) return Errc::no_such_domain;
  auto chan = channel_between(at, from);
  if (!chan) return Errc::no_such_channel;
  return (*chan)->substrate->receive(at_node->component.domain, (*chan)->id);
}

Result<substrate::Message> Assembly::receive(const std::string& at,
                                             const std::string& from) {
  auto a = ref(at);
  auto f = ref(from);
  if (!a || !f) return Errc::no_such_domain;
  return receive(*a, *f);
}

Result<Endpoint> Assembly::endpoint(ComponentRef from, ComponentRef to) const {
  const Node* from_node = node_of(from);
  if (!from_node || !node_of(to)) return Errc::no_such_domain;
  auto chan = channel_between(from, to);
  if (enforce_manifest_ && !chan) return Errc::policy_violation;
  if (!chan) return Errc::no_such_channel;
  auto epoch = (*chan)->substrate->channel_epoch((*chan)->id);
  if (!epoch) return epoch.error();
  return Endpoint((*chan)->substrate, (*chan)->id,
                  from_node->component.domain, *epoch);
}

Result<Endpoint> Assembly::endpoint(const std::string& from,
                                    const std::string& to) const {
  auto f = ref(from);
  auto t = ref(to);
  if (!f || !t) return Errc::no_such_domain;
  return endpoint(*f, *t);
}

Result<std::uint64_t> Assembly::badge_of(const std::string& from,
                                         const std::string& to) const {
  auto f = ref(from);
  auto t = ref(to);
  if (!f || !t) return Errc::no_such_channel;
  auto chan = channel_between(*f, *t);
  if (!chan) return chan.error();
  return ((*chan)->a == f->index_) ? (*chan)->badge_a : (*chan)->badge_b;
}

Result<substrate::RegionId> Assembly::region_between(ComponentRef x,
                                                     ComponentRef y) const {
  const Node* node = node_of(x);
  if (!node || !node_of(y)) return Errc::no_such_domain;
  for (const auto& [peer, region] : node->region_edges) {
    if (peer != y.index_) continue;
    const RegionRec& rec = regions_[region];
    if (!rec.supported) return Errc::no_region_support;
    return rec.id;
  }
  // POLA: the manifests declared no region between these two, so the
  // composer never created one.
  return Errc::policy_violation;
}

Result<substrate::RegionId> Assembly::region_between(
    const std::string& x, const std::string& y) const {
  auto rx = ref(x);
  auto ry = ref(y);
  if (!rx || !ry) return Errc::no_such_domain;
  return region_between(*rx, *ry);
}

Status Assembly::kill_component(ComponentRef ref) {
  Node* node = node_of(ref);
  if (!node) return Errc::no_such_domain;
  return node->component.substrate->kill_domain(node->component.domain);
}

Status Assembly::kill_component(const std::string& name) {
  auto r = ref(name);
  if (!r) return r.error();
  return kill_component(*r);
}

Status Assembly::restart_component(ComponentRef ref) {
  Node* node = node_of(ref);
  if (!node) return Errc::no_such_domain;
  Component& c = node->component;
  const substrate::DomainId corpse = c.domain;

  // Forced restart of a live component starts with the crash itself.
  if (!c.substrate->is_dead(corpse)) {
    if (const Status s = c.substrate->kill_domain(corpse); !s.ok()) return s;
  }

  // Relaunch through the same path the composer used, so the new domain
  // measures to the same value and attestation against the expected
  // measurement still succeeds.
  substrate::DomainSpec spec;
  spec.name = c.manifest.name;
  spec.kind = c.manifest.kind;
  spec.image.name = c.manifest.name;
  spec.image.code = c.image_override.empty()
                        ? to_bytes("lateral.component:" + c.manifest.name)
                        : c.image_override;
  spec.memory_pages = c.manifest.memory_pages;
  spec.time_share_permille = c.manifest.time_share_permille;
  auto domain = c.substrate->create_domain(spec);
  if (!domain) return domain.error();
  // The reincarnation inherits the manifest's trace-capture consent.
  (void)c.substrate->set_trace_capture(
      *domain, c.manifest.trace && c.manifest.trace->capture_payload);

  // Rebind every declared channel from the corpse to the reincarnation:
  // ids stay stable (peers' refs and recorded wiring survive), epochs bump
  // (outstanding Endpoints go stale), badges are fresh.
  for (const auto& [peer, channel] : node->edges) {
    ChannelRec& rec = channels_[channel];
    if (const Status s = rec.substrate->rebind_channel(rec.id, corpse, *domain);
        !s.ok()) {
      (void)c.substrate->destroy_domain(*domain);
      return s;
    }
    std::uint64_t& badge = (rec.a == ref.index_) ? rec.badge_a : rec.badge_b;
    badge = rec.substrate->endpoint_badge(rec.id, *domain).value_or(0);
  }

  // The region half of the restart: ids stay stable, epochs bump (stale
  // descriptors are fenced), backing bytes are scrubbed, and both sides are
  // re-mapped so the reincarnation and the surviving peer can resume the
  // zero-copy path immediately.
  for (const auto& [peer, region] : node->region_edges) {
    RegionRec& rec = regions_[region];
    if (!rec.supported) continue;
    if (const Status s = rec.substrate->rebind_region(rec.id, corpse, *domain);
        !s.ok()) {
      (void)c.substrate->destroy_domain(*domain);
      return s;
    }
    const substrate::DomainId peer_domain =
        nodes_[peer].component.domain;
    (void)rec.substrate->map_region(*domain, rec.id);
    (void)rec.substrate->map_region(peer_domain, rec.id);
  }

  // Reap the corpse only after rebinding: once no channel references it,
  // destroy_domain removes just the record.
  (void)c.substrate->destroy_domain(corpse);
  c.domain = *domain;
  ++c.incarnation;

  if (node->behavior) {
    if (const Status s = c.substrate->set_handler(c.domain, node->behavior);
        !s.ok())
      return s;
  }
  return Status::success();
}

Status Assembly::restart_component(const std::string& name) {
  auto r = ref(name);
  if (!r) return r.error();
  return restart_component(*r);
}

Status Assembly::set_component_image(ComponentRef ref, Bytes code) {
  Node* node = node_of(ref);
  if (!node) return Errc::no_such_domain;
  node->component.image_override = std::move(code);
  return Status::success();
}

Status Assembly::set_component_image(const std::string& name, Bytes code) {
  auto r = ref(name);
  if (!r) return r.error();
  return set_component_image(*r, std::move(code));
}

Result<Bytes> Assembly::component_image(ComponentRef ref) const {
  const Node* node = node_of(ref);
  if (!node) return Errc::no_such_domain;
  const Component& c = node->component;
  if (!c.image_override.empty()) return c.image_override;
  return to_bytes("lateral.component:" + c.manifest.name);
}

Status Assembly::compromise(const std::string& name) {
  auto r = ref(name);
  if (!r) return r.error();
  Node* node = node_of(*r);
  return node->component.substrate->mark_compromised(node->component.domain);
}

std::size_t Assembly::shard_count(const std::string& name) const {
  if (const auto it = shard_counts_.find(name); it != shard_counts_.end())
    return it->second;
  return index_.contains(name) ? 1 : 0;
}

Result<ComponentRef> Assembly::shard_ref(const std::string& name,
                                         std::uint64_t key) const {
  if (const auto it = shard_counts_.find(name); it != shard_counts_.end())
    return ref(shard_name(name, static_cast<std::size_t>(key % it->second)));
  return ref(name);
}

TrustGraph Assembly::trust_graph() const {
  return TrustGraph::from_manifests(manifests_);
}

std::vector<std::string> Assembly::component_names() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, node] : index_) names.push_back(name);
  return names;
}

SystemComposer::SystemComposer(
    std::map<std::string, substrate::IsolationSubstrate*> substrates)
    : substrates_(std::move(substrates)) {}

Result<std::unique_ptr<Assembly>> SystemComposer::compose(
    const std::vector<Manifest>& manifests) {
  diagnostics_ = validate(manifests);

  // Policy pass: every component must land on a substrate that defends its
  // declared attacker model and offers the features it needs.
  for (const Manifest& m : manifests) {
    const auto sub_it = substrates_.find(m.substrate_name);
    if (sub_it == substrates_.end()) {
      diagnostics_.push_back(m.name + ": unknown substrate '" +
                             m.substrate_name + "'");
      continue;
    }
    const PolicyVerdict verdict = check(m, sub_it->second->info());
    for (const std::string& reason : verdict.missing)
      diagnostics_.push_back(m.name + ": " + reason);
  }
  if (!diagnostics_.empty()) return Errc::policy_violation;

  // Shard expansion sits between validation and wiring: diagnostics above
  // name what the developer wrote, everything below sees N ordinary
  // components per `shard N` declaration.
  const std::vector<Manifest> expanded = expand_shards(manifests);

  auto assembly = std::make_unique<Assembly>();
  assembly->manifests_ = expanded;
  for (const Manifest& m : manifests)
    if (m.shards > 1)
      assembly->shard_counts_.emplace(m.name,
                                      static_cast<std::uint32_t>(m.shards));

  // On any failure below, tear down every domain created so far: a failed
  // composition must not leak half an application into the substrates.
  auto unwind = [&assembly] {
    for (const Assembly::Node& node : assembly->nodes_)
      (void)node.component.substrate->destroy_domain(node.component.domain);
  };

  for (const Manifest& m : expanded) {
    substrate::IsolationSubstrate* sub = substrates_.at(m.substrate_name);
    substrate::DomainSpec spec;
    spec.name = m.name;
    spec.kind = m.kind;
    // Deterministic placeholder image; scenarios that care about specific
    // measurements (attestation tests) create domains directly instead.
    // restart_component() rebuilds the identical spec, so a relaunched
    // component re-measures to the same value.
    spec.image.name = m.name;
    spec.image.code = to_bytes("lateral.component:" + m.name);
    spec.memory_pages = m.memory_pages;
    spec.time_share_permille = m.time_share_permille;
    auto domain = sub->create_domain(spec);
    if (!domain) {
      diagnostics_.push_back(m.name + ": create_domain failed: " +
                             std::string(errc_name(domain.error())));
      unwind();
      return Errc::policy_violation;
    }
    // Payload capture into trace spans is consent-based: only a manifest
    // with a `trace { payload }` stanza opts its domain in.
    (void)sub->set_trace_capture(*domain, m.trace && m.trace->capture_payload);
    Assembly::Node node;
    node.component.manifest = m;
    node.component.substrate = sub;
    node.component.domain = *domain;
    assembly->index_.emplace(m.name,
                             static_cast<std::uint32_t>(assembly->nodes_.size()));
    assembly->nodes_.push_back(std::move(node));
  }

  // Channel wiring: exactly the declared pairs, once each.
  for (const Manifest& m : expanded) {
    for (const std::string& peer : m.channels) {
      const std::uint32_t ia = assembly->index_.at(m.name);
      const std::uint32_t ib = assembly->index_.at(peer);
      if (assembly->channel_between(ComponentRef(ia), ComponentRef(ib)))
        continue;  // the peer's manifest already declared this pair
      Assembly::Node& na = assembly->nodes_[ia];
      Assembly::Node& nb = assembly->nodes_[ib];
      if (na.component.substrate != nb.component.substrate) {
        diagnostics_.push_back(
            "channel " + m.name + "<->" + peer +
            ": components on different substrates; connect them with "
            "net::SecureChannel instead");
        unwind();
        return Errc::policy_violation;
      }
      auto channel = na.component.substrate->create_channel(
          na.component.domain, nb.component.domain);
      if (!channel) {
        diagnostics_.push_back("channel " + m.name + "<->" + peer +
                               " failed: " +
                               std::string(errc_name(channel.error())));
        unwind();  // destroying the domains also reaps their channels
        return Errc::policy_violation;
      }
      Assembly::ChannelRec rec;
      rec.substrate = na.component.substrate;
      rec.id = *channel;
      rec.a = ia;
      rec.b = ib;
      rec.badge_a = rec.substrate->endpoint_badge(*channel, na.component.domain)
                        .value_or(0);
      rec.badge_b = rec.substrate->endpoint_badge(*channel, nb.component.domain)
                        .value_or(0);
      const auto rec_index =
          static_cast<std::uint32_t>(assembly->channels_.size());
      assembly->channels_.push_back(rec);
      na.edges.emplace_back(ib, rec_index);
      nb.edges.emplace_back(ia, rec_index);
    }
  }

  // Region wiring: exactly the declared pairs, once each, owner = the
  // declaring component. Both ends are mapped here — composition is the
  // only place mappings are established, which is what keeps map_region's
  // access_denied for everyone else meaningful (POLA on the data plane).
  for (const Manifest& m : expanded) {
    for (const RegionDecl& decl : m.regions) {
      const std::uint32_t ia = assembly->index_.at(m.name);
      const std::uint32_t ib = assembly->index_.at(decl.peer);
      Assembly::Node& na = assembly->nodes_[ia];
      Assembly::Node& nb = assembly->nodes_[ib];
      const bool already =
          std::any_of(na.region_edges.begin(), na.region_edges.end(),
                      [&](const auto& e) { return e.first == ib; });
      if (already) continue;  // the peer's manifest already declared it
      if (na.component.substrate != nb.component.substrate) {
        diagnostics_.push_back(
            "region " + m.name + "<->" + decl.peer +
            ": components on different substrates; regions require shared "
            "memory");
        unwind();
        return Errc::policy_violation;
      }
      Assembly::RegionRec rec;
      rec.substrate = na.component.substrate;
      rec.a = ia;
      rec.b = ib;
      auto region = rec.substrate->create_region(
          na.component.domain, nb.component.domain, decl.bytes, decl.perms);
      if (!region && region.error() == Errc::no_region_support) {
        // Not fatal: the declaration is honoured as "best effort" and the
        // runtime falls back to the (batched) copy path. Recorded so
        // region_between() reports the precise reason.
        diagnostics_.push_back("region " + m.name + "<->" + decl.peer +
                               ": substrate '" + m.substrate_name +
                               "' has no region support; copy path in use");
        rec.supported = false;
      } else if (!region) {
        diagnostics_.push_back("region " + m.name + "<->" + decl.peer +
                               " failed: " +
                               std::string(errc_name(region.error())));
        unwind();
        return Errc::policy_violation;
      } else {
        rec.id = *region;
        rec.supported = true;
        (void)rec.substrate->map_region(na.component.domain, rec.id);
        (void)rec.substrate->map_region(nb.component.domain, rec.id);
      }
      const auto rec_index =
          static_cast<std::uint32_t>(assembly->regions_.size());
      assembly->regions_.push_back(rec);
      na.region_edges.emplace_back(ib, rec_index);
      nb.region_edges.emplace_back(ia, rec_index);
    }
  }
  return assembly;
}

}  // namespace lateral::core
