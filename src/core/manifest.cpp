#include "core/manifest.h"

#include <algorithm>
#include <charconv>
#include <set>
#include <sstream>

namespace lateral::core {
namespace {

std::vector<std::string> tokenize_line(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token.starts_with('#')) break;  // comment until end of line
    tokens.push_back(token);
  }
  return tokens;
}

// Parse a full-token unsigned integer. Unlike std::stoul this never throws:
// malformed or out-of-range input becomes nullopt, which parse_manifests
// maps to Errc::invalid_argument like every other bad directive.
std::optional<std::uint64_t> parse_u64(const std::string& word) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(word.data(), word.data() + word.size(), value);
  if (ec != std::errc() || ptr != word.data() + word.size())
    return std::nullopt;
  return value;
}

std::optional<substrate::AttackerModel> parse_attacker(
    const std::string& word) {
  using substrate::AttackerModel;
  if (word == "remote_network") return AttackerModel::remote_network;
  if (word == "local_software") return AttackerModel::local_software;
  if (word == "physical_bus") return AttackerModel::physical_bus;
  if (word == "physical_intrusion") return AttackerModel::physical_intrusion;
  return std::nullopt;
}

}  // namespace

Result<std::vector<Manifest>> parse_manifests(std::string_view text,
                                              std::string* error) {
  std::vector<Manifest> manifests;
  std::optional<Manifest> current;
  bool in_restart = false;  // inside a nested `restart { ... }` stanza
  bool in_trace = false;    // inside a nested `trace { ... }` stanza
  bool in_fleet = false;    // inside a nested `fleet { ... }` stanza
  bool in_update = false;   // inside a nested `update { ... }` stanza
  bool in_slo = false;      // inside a nested `slo { ... }` stanza

  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  // Every duplicate-stanza rejection routes through here so the diagnostic
  // names the offending component and stanza (satellite: duplicates used to
  // silently last-wins).
  const auto duplicate = [&](std::string_view stanza) -> Errc {
    if (error)
      *error = "line " + std::to_string(line_no) + ": component " +
               current->name + ": duplicate " + std::string(stanza) +
               " stanza";
    return Errc::invalid_argument;
  };
  while (std::getline(stream, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize_line(line);
    if (tokens.empty()) continue;

    if (in_restart) {
      RestartPolicy& policy = *current->restart;
      const std::string& key = tokens[0];
      if (key == "}") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        in_restart = false;
      } else if (key == "max") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto max = parse_u64(tokens[1]);
        if (!max) return Errc::invalid_argument;
        policy.max_restarts = static_cast<std::uint32_t>(*max);
      } else if (key == "backoff") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto backoff = parse_u64(tokens[1]);
        if (!backoff) return Errc::invalid_argument;
        policy.backoff_cycles = *backoff;
      } else if (key == "escalate") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        if (tokens[1] == "degraded")
          policy.escalation = RestartPolicy::Escalation::degraded;
        else if (tokens[1] == "halted")
          policy.escalation = RestartPolicy::Escalation::halted;
        else
          return Errc::invalid_argument;
      } else {
        return Errc::invalid_argument;  // unknown restart directive
      }
      continue;
    }

    if (in_trace) {
      TracePolicy& policy = *current->trace;
      const std::string& key = tokens[0];
      if (key == "}") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        in_trace = false;
      } else if (key == "payload") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        policy.capture_payload = true;
      } else if (key == "observer") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        policy.observers.push_back(tokens[1]);
      } else {
        return Errc::invalid_argument;  // unknown trace directive
      }
      continue;
    }

    if (in_fleet) {
      FleetPolicy& policy = *current->fleet;
      const std::string& key = tokens[0];
      if (key == "}") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        in_fleet = false;
      } else if (key == "ticket_ttl") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto ttl = parse_u64(tokens[1]);
        if (!ttl) return Errc::invalid_argument;
        policy.ticket_ttl = *ttl;
      } else if (key == "cache") {
        if (tokens.size() != 3) return Errc::invalid_argument;
        const auto capacity = parse_u64(tokens[1]);
        const auto ttl = parse_u64(tokens[2]);
        if (!capacity || !ttl) return Errc::invalid_argument;
        policy.cache_capacity = static_cast<std::size_t>(*capacity);
        policy.cache_ttl = *ttl;
      } else if (key == "admit") {
        if (tokens.size() != 3) return Errc::invalid_argument;
        const auto rate = parse_u64(tokens[1]);
        const auto burst = parse_u64(tokens[2]);
        if (!rate || !burst) return Errc::invalid_argument;
        policy.admit_rate = *rate;
        policy.admit_burst = *burst;
      } else {
        return Errc::invalid_argument;  // unknown fleet directive
      }
      continue;
    }

    if (in_update) {
      UpdatePolicy& policy = *current->update;
      const std::string& key = tokens[0];
      if (key == "}") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        in_update = false;
      } else if (key == "key") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        policy.key = tokens[1];
      } else if (key == "slots") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto slots = parse_u64(tokens[1]);
        if (!slots) return Errc::invalid_argument;
        policy.slots = static_cast<std::uint32_t>(*slots);
      } else if (key == "probation") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto ticks = parse_u64(tokens[1]);
        if (!ticks) return Errc::invalid_argument;
        policy.probation_ticks = static_cast<std::uint32_t>(*ticks);
      } else {
        return Errc::invalid_argument;  // unknown update directive
      }
      continue;
    }

    if (in_slo) {
      SloPolicy& policy = *current->slo;
      const std::string& key = tokens[0];
      if (key == "}") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        in_slo = false;
      } else if (key == "p99") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto p99 = parse_u64(tokens[1]);
        if (!p99) return Errc::invalid_argument;
        policy.p99_cycles = *p99;
      } else if (key == "error_rate") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto permille = parse_u64(tokens[1]);
        if (!permille || *permille > 1000) return Errc::invalid_argument;
        policy.error_permille = static_cast<std::uint32_t>(*permille);
      } else if (key == "window") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto window = parse_u64(tokens[1]);
        if (!window) return Errc::invalid_argument;
        policy.window_cycles = *window;
      } else if (key == "burn_windows") {
        if (tokens.size() != 2) return Errc::invalid_argument;
        const auto burn = parse_u64(tokens[1]);
        if (!burn) return Errc::invalid_argument;
        policy.burn_windows = static_cast<std::uint32_t>(*burn);
      } else if (key == "restart") {
        if (tokens.size() != 1) return Errc::invalid_argument;
        policy.restart = true;
      } else {
        return Errc::invalid_argument;  // unknown slo directive
      }
      continue;
    }

    if (tokens[0] == "component") {
      if (current) return Errc::invalid_argument;  // nested component
      if (tokens.size() != 3 || tokens[2] != "{")
        return Errc::invalid_argument;
      current.emplace();
      current->name = tokens[1];
      continue;
    }
    if (tokens[0] == "}") {
      if (!current || tokens.size() != 1) return Errc::invalid_argument;
      manifests.push_back(std::move(*current));
      current.reset();
      continue;
    }
    if (!current) return Errc::invalid_argument;  // directive outside block

    const std::string& key = tokens[0];
    auto need_arg = [&]() -> bool { return tokens.size() == 2; };

    if (key == "kind") {
      if (!need_arg()) return Errc::invalid_argument;
      if (tokens[1] == "trusted")
        current->kind = substrate::DomainKind::trusted_component;
      else if (tokens[1] == "legacy")
        current->kind = substrate::DomainKind::legacy;
      else
        return Errc::invalid_argument;
    } else if (key == "substrate") {
      if (!need_arg()) return Errc::invalid_argument;
      current->substrate_name = tokens[1];
    } else if (key == "pages") {
      if (!need_arg()) return Errc::invalid_argument;
      const auto pages = parse_u64(tokens[1]);
      if (!pages) return Errc::invalid_argument;
      current->memory_pages = static_cast<std::size_t>(*pages);
    } else if (key == "share") {
      if (!need_arg()) return Errc::invalid_argument;
      const auto share = parse_u64(tokens[1]);
      if (!share) return Errc::invalid_argument;
      current->time_share_permille = static_cast<std::uint32_t>(*share);
    } else if (key == "shard") {
      if (!need_arg()) return Errc::invalid_argument;
      const auto shards = parse_u64(tokens[1]);
      if (!shards) return Errc::invalid_argument;
      current->shards = static_cast<std::size_t>(*shards);
    } else if (key == "attacker") {
      if (!need_arg()) return Errc::invalid_argument;
      const auto model = parse_attacker(tokens[1]);
      if (!model) return Errc::invalid_argument;
      current->attacker = *model;
    } else if (key == "channel") {
      if (!need_arg()) return Errc::invalid_argument;
      current->channels.push_back(tokens[1]);
    } else if (key == "region") {
      // region <peer> <bytes> [ro]
      if (tokens.size() != 3 && tokens.size() != 4)
        return Errc::invalid_argument;
      RegionDecl decl;
      decl.peer = tokens[1];
      const auto bytes = parse_u64(tokens[2]);
      if (!bytes || *bytes == 0) return Errc::invalid_argument;
      decl.bytes = static_cast<std::size_t>(*bytes);
      if (tokens.size() == 4) {
        if (tokens[3] != "ro") return Errc::invalid_argument;
        decl.perms = substrate::RegionPerms::read_only;
      }
      // One region per peer pair: a second declaration used to silently
      // lose (the composer wires only the first) — reject it instead.
      for (const RegionDecl& existing : current->regions)
        if (existing.peer == decl.peer)
          return duplicate("region " + decl.peer);
      current->regions.push_back(std::move(decl));
    } else if (key == "trusts") {
      if (!need_arg()) return Errc::invalid_argument;
      current->trusts.push_back(tokens[1]);
    } else if (key == "seal") {
      if (tokens.size() != 1) return Errc::invalid_argument;
      current->needs_sealing = true;
    } else if (key == "attest") {
      if (tokens.size() != 1) return Errc::invalid_argument;
      current->needs_attestation = true;
    } else if (key == "assets") {
      if (!need_arg()) return Errc::invalid_argument;
      current->asset_value = std::stod(tokens[1]);
    } else if (key == "loc") {
      if (!need_arg()) return Errc::invalid_argument;
      const auto loc = parse_u64(tokens[1]);
      if (!loc) return Errc::invalid_argument;
      current->loc = *loc;
    } else if (key == "restart") {
      if (tokens.size() != 2 || tokens[1] != "{")
        return Errc::invalid_argument;
      if (current->restart) return duplicate("restart");
      current->restart.emplace();  // defaults apply until overridden
      in_restart = true;
    } else if (key == "trace") {
      if (tokens.size() != 2 || tokens[1] != "{")
        return Errc::invalid_argument;
      if (current->trace) return duplicate("trace");
      current->trace.emplace();  // redacted defaults until overridden
      in_trace = true;
    } else if (key == "fleet") {
      if (tokens.size() != 2 || tokens[1] != "{")
        return Errc::invalid_argument;
      if (current->fleet) return duplicate("fleet");
      current->fleet.emplace();  // defaults apply until overridden
      in_fleet = true;
    } else if (key == "update") {
      if (tokens.size() != 2 || tokens[1] != "{")
        return Errc::invalid_argument;
      if (current->update) return duplicate("update");
      current->update.emplace();  // defaults apply until overridden
      in_update = true;
    } else if (key == "slo") {
      if (tokens.size() != 2 || tokens[1] != "{")
        return Errc::invalid_argument;
      if (current->slo) return duplicate("slo");
      current->slo.emplace();  // unchecked defaults until overridden
      in_slo = true;
    } else {
      return Errc::invalid_argument;  // unknown directive
    }
  }
  if (current) return Errc::invalid_argument;  // unterminated block
  return manifests;
}

std::string to_text(const std::vector<Manifest>& manifests) {
  std::ostringstream out;
  for (const Manifest& m : manifests) {
    out << "component " << m.name << " {\n";
    out << "  kind "
        << (m.kind == substrate::DomainKind::trusted_component ? "trusted"
                                                               : "legacy")
        << "\n";
    out << "  substrate " << m.substrate_name << "\n";
    out << "  pages " << m.memory_pages << "\n";
    out << "  share " << m.time_share_permille << "\n";
    if (m.shards != 1) out << "  shard " << m.shards << "\n";
    out << "  attacker " << substrate::attacker_model_name(m.attacker) << "\n";
    for (const std::string& channel : m.channels)
      out << "  channel " << channel << "\n";
    for (const RegionDecl& region : m.regions) {
      out << "  region " << region.peer << " " << region.bytes;
      if (region.perms == substrate::RegionPerms::read_only) out << " ro";
      out << "\n";
    }
    for (const std::string& peer : m.trusts) out << "  trusts " << peer << "\n";
    if (m.needs_sealing) out << "  seal\n";
    if (m.needs_attestation) out << "  attest\n";
    out << "  assets " << m.asset_value << "\n";
    out << "  loc " << m.loc << "\n";
    if (m.restart) {
      out << "  restart {\n";
      out << "    max " << m.restart->max_restarts << "\n";
      out << "    backoff " << m.restart->backoff_cycles << "\n";
      out << "    escalate " << escalation_name(m.restart->escalation) << "\n";
      out << "  }\n";
    }
    if (m.trace) {
      out << "  trace {\n";
      if (m.trace->capture_payload) out << "    payload\n";
      for (const std::string& observer : m.trace->observers)
        out << "    observer " << observer << "\n";
      out << "  }\n";
    }
    if (m.fleet) {
      out << "  fleet {\n";
      out << "    ticket_ttl " << m.fleet->ticket_ttl << "\n";
      out << "    cache " << m.fleet->cache_capacity << " "
          << m.fleet->cache_ttl << "\n";
      out << "    admit " << m.fleet->admit_rate << " " << m.fleet->admit_burst
          << "\n";
      out << "  }\n";
    }
    if (m.update) {
      out << "  update {\n";
      out << "    key " << m.update->key << "\n";
      out << "    slots " << m.update->slots << "\n";
      out << "    probation " << m.update->probation_ticks << "\n";
      out << "  }\n";
    }
    if (m.slo) {
      out << "  slo {\n";
      out << "    p99 " << m.slo->p99_cycles << "\n";
      out << "    error_rate " << m.slo->error_permille << "\n";
      out << "    window " << m.slo->window_cycles << "\n";
      out << "    burn_windows " << m.slo->burn_windows << "\n";
      if (m.slo->restart) out << "    restart\n";
      out << "  }\n";
    }
    out << "}\n";
  }
  return out.str();
}

std::vector<std::string> validate(const std::vector<Manifest>& manifests) {
  std::vector<std::string> problems;
  std::set<std::string> names;
  for (const Manifest& m : manifests) {
    if (m.name.empty()) problems.push_back("component with empty name");
    if (!names.insert(m.name).second)
      problems.push_back("duplicate component name: " + m.name);
    // '#' is the shard-expansion separator ("imap#2"): a user-written name
    // containing it would collide with (or masquerade as) an expanded shard.
    if (m.name.find('#') != std::string::npos)
      problems.push_back(m.name + ": '#' in component names is reserved for "
                                  "shard expansion");
    if (m.shards == 0)
      problems.push_back(m.name + ": shard count of zero (use 1 to disable)");
    if (m.memory_pages == 0)
      problems.push_back(m.name + ": zero memory pages");
    if (m.restart && m.restart->backoff_cycles == 0)
      problems.push_back(m.name + ": restart backoff of zero cycles");
    // A fleet frontend that can never admit anything is a misconfiguration,
    // not a policy: the gate would refuse every single request.
    if (m.fleet && (m.fleet->admit_rate == 0 || m.fleet->admit_burst == 0))
      problems.push_back(m.name + ": fleet admission rate/burst of zero");
    if (m.update) {
      if (m.update->key.empty())
        problems.push_back(m.name + ": update stanza with empty signing key");
      // With fewer than two slots there is no previous image to revert to;
      // the automatic-revert guarantee would be vacuous.
      if (m.update->slots < 2)
        problems.push_back(m.name + ": update stanza with fewer than 2 slots");
      if (m.update->probation_ticks == 0)
        problems.push_back(m.name + ": update probation of zero ticks");
      // Commit and revert are both supervisor restarts; an updatable
      // component without a restart stanza cannot be swapped or reverted.
      if (!m.restart)
        problems.push_back(m.name + ": update stanza without restart stanza");
    }
    if (m.slo) {
      if (m.slo->window_cycles == 0)
        problems.push_back(m.name + ": slo window of zero cycles");
      if (m.slo->burn_windows == 0)
        problems.push_back(m.name + ": slo burn_windows of zero");
      // An slo stanza that checks nothing is a misconfiguration, not a
      // policy: the watchdog would tick forever and never say anything.
      if (m.slo->p99_cycles == 0 && m.slo->error_permille >= 1000)
        problems.push_back(m.name + ": slo stanza with no objective (set p99 "
                                    "and/or error_rate)");
      // The watchdog only pulls triggers the recovery plan owns: escalation
      // is a kill_component that the restart stanza's machinery must catch.
      if (m.slo->restart && !m.restart)
        problems.push_back(m.name + ": slo restart without restart stanza");
    }
    // Programmatically-built manifests bypass the parser's duplicate-region
    // rejection; catch them here with the same component+stanza naming.
    std::set<std::string> region_peers;
    for (const RegionDecl& region : m.regions)
      if (!region_peers.insert(region.peer).second)
        problems.push_back(m.name + ": duplicate region stanza to peer " +
                           region.peer);
  }
  for (const Manifest& m : manifests) {
    for (const std::string& peer : m.channels) {
      if (!names.contains(peer))
        problems.push_back(m.name + ": channel to unknown component " + peer);
      if (peer == m.name)
        problems.push_back(m.name + ": channel to itself");
    }
    for (const RegionDecl& region : m.regions) {
      if (!names.contains(region.peer))
        problems.push_back(m.name + ": region to unknown component " +
                           region.peer);
      if (region.peer == m.name)
        problems.push_back(m.name + ": region to itself");
      // Descriptors travel over the channel; a region without one is
      // unusable and almost certainly a manifest mistake.
      if (region.peer != m.name &&
          std::find(m.channels.begin(), m.channels.end(), region.peer) ==
              m.channels.end())
        problems.push_back(m.name + ": region to " + region.peer +
                           " without a declared channel");
    }
    if (m.trace) {
      for (const std::string& observer : m.trace->observers) {
        if (!names.contains(observer))
          problems.push_back(m.name + ": trace observer unknown component " +
                             observer);
      }
    }
    for (const std::string& peer : m.trusts) {
      if (!names.contains(peer))
        problems.push_back(m.name + ": trusts unknown component " + peer);
      // Trusting a peer's replies only makes sense if you can talk to it.
      if (peer != m.name &&
          std::find(m.channels.begin(), m.channels.end(), peer) ==
              m.channels.end())
        problems.push_back(m.name + ": trusts " + peer +
                           " without a declared channel");
    }
  }
  return problems;
}

}  // namespace lateral::core
