// TCB accounting (paper §II-A, §III-B).
//
// "We say that the isolation substrate constitutes the component's Trusted
// Computing Base." In practice a component's TCB is its own code, its
// substrate, and — transitively — every component whose replies it consumes
// without a trusted wrapper. TAB2 uses this to compare the decomposed email
// client against its monolithic counterfactual.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/manifest.h"
#include "core/trust_graph.h"
#include "substrate/isolation.h"
#include "util/result.h"

namespace lateral::core {

struct TcbReport {
  std::string component;
  std::uint64_t own_loc = 0;
  std::uint64_t substrate_loc = 0;
  std::uint64_t trusted_peer_loc = 0;  // transitive `trusts` closure
  std::uint64_t total() const {
    return own_loc + substrate_loc + trusted_peer_loc;
  }
};

/// Per-component TCB of a horizontal design described by manifests.
/// `substrate_loc_by_name` maps substrate names to their TCB LoC (from
/// SubstrateInfo::tcb_loc).
std::vector<TcbReport> tcb_of_manifests(
    const std::vector<Manifest>& manifests,
    const std::map<std::string, std::uint64_t>& substrate_loc_by_name);

/// TCB of the monolithic counterfactual: every subsystem trusts the whole
/// blob, so each component's TCB is the sum of ALL components plus the
/// (single) substrate under the blob.
std::uint64_t monolithic_tcb(const std::vector<Manifest>& manifests,
                             std::uint64_t substrate_loc);

}  // namespace lateral::core
