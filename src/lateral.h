// Umbrella header: the full lateral public API.
//
// Downstream users can include subsystem headers individually (preferred
// for build times) or this single header for exploration and prototyping.
#pragma once

// Foundations.
#include "util/hex.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/types.h"

// Cryptography (from scratch; simulation-scale parameters).
#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

// Simulated hardware.
#include "hw/attacker.h"
#include "hw/cost_model.h"
#include "hw/iommu.h"
#include "hw/machine.h"
#include "hw/memory.h"

// The unified isolation interface and its eight backends.
#include "cheri/cheri.h"
#include "ftpm/ftpm.h"
#include "microkernel/microkernel.h"
#include "noc/noc.h"
#include "sep/sep.h"
#include "sgx/sgx.h"
#include "substrate/isolation.h"
#include "substrate/quote.h"
#include "substrate/registry.h"
#include "substrate/substrate.h"
#include "tpm/pcr_bank.h"
#include "tpm/tpm.h"
#include "trustzone/trustzone.h"

// The assumed-compromised legacy world.
#include "legacy/filesystem.h"
#include "legacy/legacy_os.h"

// Component ecosystem.
#include "core/attestation.h"
#include "core/composer.h"
#include "core/launch.h"
#include "core/manifest.h"
#include "core/policy.h"
#include "core/session.h"
#include "core/standard_registry.h"
#include "core/tcb.h"
#include "core/trust_graph.h"

// Trusted component toolbox.
#include "gui/secure_gui.h"
#include "net/federation.h"
#include "net/network.h"
#include "net/remote.h"
#include "net/secure_channel.h"
#include "runtime/async_proxy.h"
#include "runtime/batch_channel.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/spsc_ring.h"
#include "toolbox/anonymizer.h"
#include "toolbox/authenticator.h"
#include "toolbox/gateway.h"
#include "toolbox/trusted_wrapper.h"
#include "vpfs/vpfs.h"

// The decomposed mail application.
#include "mail/addressbook.h"
#include "mail/client.h"
#include "mail/imap.h"
#include "mail/input_method.h"
#include "mail/mailstore.h"
#include "mail/message.h"
#include "mail/render.h"
