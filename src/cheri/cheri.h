// CHERI-style capability substrate (paper §III-D: "The research community
// even discusses architectures with hardware capabilities to enable even
// more fine-grained disaggregation of authority. The CHERI capability
// system is implemented as a modified MIPS CPU, using guarded pointers as
// capabilities.").
//
// All domains share ONE physical address space; isolation comes from
// guarded pointers: every memory access must present a capability whose
// bounds and permissions the (simulated) CPU checks on each use.
// Capabilities are unforgeable — they can only be obtained by derivation
// (monotonic narrowing) from a domain's root capability, and cross-domain
// invocation seals the caller's authority.
//
// Consequences faithfully reproduced:
//  * invocation is nearly free (a protected call gate, no address-space
//    switch) — the cheapest row of the FIG2 table;
//  * object-granular sharing: a domain can hand a peer a capability to one
//    buffer without exposing anything else;
//  * no attestation/sealing: CHERI provides memory safety, not a hardware
//    identity (the PolicyChecker therefore refuses physical-bus manifests);
//  * memory is plaintext DRAM: no defence against the physical attacker.
#pragma once

#include <map>

#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::cheri {

/// A guarded pointer: bounds + permissions. Unforgeable by construction —
/// instances only come from Cheri::root_capability / derive / grant.
struct Capability {
  std::uint64_t base = 0;
  std::uint64_t length = 0;
  bool read = false;
  bool write = false;
  /// Tag bit: valid capabilities only come from the CPU's derivation rules;
  /// anything constructed from raw bytes has tag = false and is rejected.
  bool tag = false;
};

class Cheri final : public substrate::IsolationSubstrate {
 public:
  Cheri(hw::Machine& machine, substrate::SubstrateConfig config);

  const substrate::SubstrateInfo& info() const override;

  // Unified-interface memory access: the actor's implicit root capability
  // for its own allocation is used; cross-domain access has no capability
  // and faults.
  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  // --- CHERI-specific fine-grained sharing ---------------------------------
  /// The domain's root capability covering its whole allocation.
  Result<Capability> root_capability(substrate::DomainId domain) const;

  /// Derive a narrower capability (monotonicity: bounds within parent,
  /// permissions a subset). Errc::access_denied on widening attempts.
  Result<Capability> derive(const Capability& parent, std::uint64_t offset,
                            std::uint64_t length, bool read, bool write) const;

  /// Load/store through an explicit capability (any holder may use it —
  /// possession is authority).
  Result<Bytes> cap_load(const Capability& cap, std::uint64_t offset,
                         std::size_t len);
  Status cap_store(const Capability& cap, std::uint64_t offset,
                   BytesView data);

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// A region is simply a bounded capability handed to the peer: no page
  /// tables, no kernel — derivation cost only, independent of size.
  Cycles region_map_cost(std::size_t pages) const override;

 private:
  struct Allocation {
    hw::PhysAddr base = 0;
    std::size_t pages = 0;
  };

  substrate::SubstrateInfo info_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, Allocation> allocations_;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::cheri
