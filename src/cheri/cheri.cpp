#include "cheri/cheri.h"

namespace lateral::cheri {

using substrate::AttackerModel;
using substrate::DomainId;
using substrate::Feature;

Cheri::Cheri(hw::Machine& machine, substrate::SubstrateConfig config)
    : IsolationSubstrate(machine, std::move(config)), frames_(machine.dram()) {
  info_.name = "cheri";
  info_.features = Feature::spatial_isolation | Feature::concurrent_domains;
  // A modified CPU pipeline plus the capability-aware toolchain runtime.
  info_.tcb_loc = 8'000;
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software};
}

const substrate::SubstrateInfo& Cheri::info() const { return info_; }

Status Cheri::admit_domain(const substrate::DomainSpec& spec) const {
  // One shared address space of compartments; entire legacy OSes need
  // their own paging and do not fit this model.
  if (spec.kind == substrate::DomainKind::legacy) return Errc::not_supported;
  if (spec.memory_pages == 0) return Errc::invalid_argument;
  return Status::success();
}

Status Cheri::attach_memory(DomainId id, DomainRecord& record) {
  auto base = frames_.allocate(record.spec.memory_pages);
  if (!base) return base.error();
  Allocation allocation{*base, record.spec.memory_pages};
  BytesView code = record.spec.image.code;
  const std::size_t n =
      std::min(code.size(), allocation.pages * hw::kPageSize);
  machine_.memory().load(allocation.base, code.subspan(0, n));
  allocations_.emplace(id, allocation);
  return Status::success();
}

void Cheri::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = allocations_.find(id);
  if (it == allocations_.end()) return;
  (void)frames_.free(it->second.base, it->second.pages);
  allocations_.erase(it);
}

Result<Capability> Cheri::root_capability(DomainId domain) const {
  const auto it = allocations_.find(domain);
  if (it == allocations_.end()) return Errc::no_such_domain;
  Capability cap;
  cap.base = it->second.base;
  cap.length = it->second.pages * hw::kPageSize;
  cap.read = cap.write = true;
  cap.tag = true;
  return cap;
}

Result<Capability> Cheri::derive(const Capability& parent,
                                 std::uint64_t offset, std::uint64_t length,
                                 bool read, bool write) const {
  if (!parent.tag) return Errc::access_denied;  // forged parent
  // Monotonicity: bounds must narrow, permissions must not grow.
  if (offset + length > parent.length || offset + length < offset)
    return Errc::access_denied;
  if ((read && !parent.read) || (write && !parent.write))
    return Errc::access_denied;
  Capability cap;
  cap.base = parent.base + offset;
  cap.length = length;
  cap.read = read;
  cap.write = write;
  cap.tag = true;
  return cap;
}

Result<Bytes> Cheri::cap_load(const Capability& cap, std::uint64_t offset,
                              std::size_t len) {
  if (!cap.tag || !cap.read) return Errc::access_denied;
  if (offset + len > cap.length || offset + len < offset)
    return Errc::access_denied;  // bounds fault
  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, len);
  Bytes out;
  if (const Status s =
          machine_.memory().raw_read(cap.base + offset, len, out);
      !s.ok())
    return s.error();
  return out;
}

Status Cheri::cap_store(const Capability& cap, std::uint64_t offset,
                        BytesView data) {
  if (!cap.tag || !cap.write) return Errc::access_denied;
  if (offset + data.size() > cap.length || offset + data.size() < offset)
    return Errc::access_denied;
  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  return machine_.memory().raw_write(cap.base + offset, data);
}

Result<Bytes> Cheri::read_memory(DomainId actor, DomainId target,
                                 std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (!allocations_.contains(actor)) return Errc::no_such_domain;
  if (actor != target) return Errc::access_denied;  // no capability held
  auto root = root_capability(target);
  if (!root) return root.error();
  return cap_load(*root, offset, len);
}

Status Cheri::write_memory(DomainId actor, DomainId target,
                           std::uint64_t offset, BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  if (!allocations_.contains(actor)) return Errc::no_such_domain;
  if (actor != target) return Errc::access_denied;
  auto root = root_capability(target);
  if (!root) return root.error();
  return cap_store(*root, offset, data);
}

Cycles Cheri::message_cost(std::size_t len) const {
  // A protected call gate within one address space: no TLB/context switch,
  // just the jump and the copy.
  return machine_.costs().syscall / 2 +
         machine_.costs().memcpy_per_16_bytes * ((len + 15) / 16);
}

substrate::ConcurrencyLaw Cheri::concurrency_law() const {
  // Domain transitions are in-address-space capability jumps (CInvoke);
  // each core switches compartments with its own register file. Nothing
  // is shared but the memory the capabilities already bound.
  return substrate::ConcurrencyLaw::parallel;
}

Cycles Cheri::attest_cost() const { return 0; }  // feature absent anyway

Cycles Cheri::region_map_cost(std::size_t pages) const {
  // Deriving a bounded capability is a register-to-register CPU operation;
  // there is nothing per page to set up.
  (void)pages;
  return machine_.costs().cheri_cap_derive;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "cheri",
      [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<Cheri>(machine, config);
      });
}

}  // namespace lateral::cheri
