#include "noc/noc.h"

#include <cmath>

namespace lateral::noc {

using substrate::AttackerModel;
using substrate::ChannelId;
using substrate::ChannelSpec;
using substrate::DomainId;
using substrate::Feature;

NocFabric::NocFabric(hw::Machine& machine, substrate::SubstrateConfig config)
    : IsolationSubstrate(machine, std::move(config)), frames_(machine.dram()) {
  info_.name = "noc";
  info_.features = Feature::spatial_isolation | Feature::temporal_isolation |
                   Feature::covert_channel_mitigation |
                   Feature::concurrent_domains | Feature::sealed_storage |
                   Feature::attestation;
  // The M3 kernel runs on its own tile and is tiny; the DTU is simple
  // hardware. Temporal isolation is structural: every domain owns a whole
  // core, so there is no scheduler to leak through.
  info_.tcb_loc = 6'000;
  info_.defends_against = {AttackerModel::remote_network,
                           AttackerModel::local_software};
}

const substrate::SubstrateInfo& NocFabric::info() const { return info_; }

Status NocFabric::admit_domain(const substrate::DomainSpec& spec) const {
  // Legacy OSes expect an MMU and paging; application tiles have neither.
  if (spec.kind == substrate::DomainKind::legacy) return Errc::not_supported;
  if (spec.memory_pages == 0) return Errc::invalid_argument;
  return Status::success();
}

Status NocFabric::attach_memory(DomainId id, DomainRecord& record) {
  auto base = frames_.allocate(record.spec.memory_pages);
  if (!base) return base.error();
  Tile tile;
  tile.grid_x = next_tile_index_ % kGridWidth;
  tile.grid_y = next_tile_index_ / kGridWidth;
  ++next_tile_index_;
  tile.memory_base = *base;
  tile.pages = record.spec.memory_pages;

  BytesView code = record.spec.image.code;
  const std::size_t n = std::min(code.size(), tile.pages * hw::kPageSize);
  machine_.memory().load(tile.memory_base, code.subspan(0, n));
  tiles_.emplace(id, tile);
  return Status::success();
}

void NocFabric::release_memory(DomainId id, DomainRecord& record) {
  (void)record;
  const auto it = tiles_.find(id);
  if (it == tiles_.end()) return;
  (void)frames_.free(it->second.memory_base, it->second.pages);
  tiles_.erase(it);
}

Result<Bytes> NocFabric::read_memory(DomainId actor, DomainId target,
                                     std::uint64_t offset, std::size_t len) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  const auto actor_it = tiles_.find(actor);
  if (actor_it == tiles_.end()) return Errc::no_such_domain;
  // There is no load/store path between tiles at all.
  if (actor != target) return Errc::access_denied;
  const Tile& tile = actor_it->second;
  if (offset + len > tile.pages * hw::kPageSize || offset + len < offset)
    return Errc::access_denied;
  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, len);
  Bytes out;
  if (const Status s =
          machine_.memory().raw_read(tile.memory_base + offset, len, out);
      !s.ok())
    return s.error();
  return out;
}

Status NocFabric::write_memory(DomainId actor, DomainId target,
                               std::uint64_t offset, BytesView data) {
  if (is_dead(actor) || is_dead(target)) return Errc::domain_dead;
  const auto actor_it = tiles_.find(actor);
  if (actor_it == tiles_.end()) return Errc::no_such_domain;
  if (actor != target) return Errc::access_denied;
  const Tile& tile = actor_it->second;
  if (offset + data.size() > tile.pages * hw::kPageSize ||
      offset + data.size() < offset)
    return Errc::access_denied;
  machine_.charge(0, machine_.costs().memcpy_per_16_bytes, data.size());
  return machine_.memory().raw_write(tile.memory_base + offset, data);
}

Result<ChannelId> NocFabric::create_channel(DomainId a, DomainId b,
                                            const ChannelSpec& spec) {
  const auto a_it = tiles_.find(a);
  const auto b_it = tiles_.find(b);
  // A corpse's tile was released at kill time but its record remains:
  // report domain_dead, not a claim the domain never existed.
  if (a_it == tiles_.end() || b_it == tiles_.end())
    return (is_dead(a) || is_dead(b)) ? Errc::domain_dead
                                      : Errc::no_such_domain;
  // The kernel tile programs one DTU endpoint per side; the tables are
  // small and fixed.
  if (a_it->second.endpoints_used >= kEndpointsPerTile ||
      b_it->second.endpoints_used >= kEndpointsPerTile)
    return Errc::exhausted;
  auto channel = IsolationSubstrate::create_channel(a, b, spec);
  if (!channel) return channel;
  a_it->second.endpoints_used++;
  b_it->second.endpoints_used++;
  return channel;
}

Result<std::size_t> NocFabric::endpoints_used(DomainId domain) const {
  const auto it = tiles_.find(domain);
  if (it == tiles_.end()) return Errc::no_such_domain;
  return it->second.endpoints_used;
}

Result<std::size_t> NocFabric::hop_distance(DomainId a, DomainId b) const {
  const auto a_it = tiles_.find(a);
  const auto b_it = tiles_.find(b);
  if (a_it == tiles_.end() || b_it == tiles_.end())
    return Errc::no_such_domain;
  const auto dx = (a_it->second.grid_x > b_it->second.grid_x)
                      ? a_it->second.grid_x - b_it->second.grid_x
                      : b_it->second.grid_x - a_it->second.grid_x;
  const auto dy = (a_it->second.grid_y > b_it->second.grid_y)
                      ? a_it->second.grid_y - b_it->second.grid_y
                      : b_it->second.grid_y - a_it->second.grid_y;
  return dx + dy;
}

Cycles NocFabric::message_cost(std::size_t len) const {
  // DTU setup + average route latency + per-flit transfer. No kernel entry
  // on either side: the DTU does the work, which is why M3 messaging beats
  // syscall-based IPC on small messages.
  constexpr Cycles kDtuSetup = 80;
  constexpr Cycles kAvgRoute = 6 * 4;  // ~4 hops x 6 cycles
  return kDtuSetup + kAvgRoute + 4 * ((len + 15) / 16);
}

substrate::ConcurrencyLaw NocFabric::concurrency_law() const {
  // Every domain owns a tile and its DTU; messages are routed by the mesh
  // with no shared software on the path at all. Parallelism is structural.
  return substrate::ConcurrencyLaw::parallel;
}

Cycles NocFabric::attest_cost() const {
  return message_cost(64);  // a message to the kernel tile
}

Status NocFabric::attach_region(substrate::RegionId id, RegionRecord& record) {
  (void)id;
  const auto a_it = tiles_.find(record.a);
  const auto b_it = tiles_.find(record.b);
  if (a_it == tiles_.end() || b_it == tiles_.end())
    return Errc::no_such_domain;
  if (a_it->second.endpoints_used >= kEndpointsPerTile ||
      b_it->second.endpoints_used >= kEndpointsPerTile)
    return Errc::exhausted;
  a_it->second.endpoints_used++;
  b_it->second.endpoints_used++;
  // Tile-aware placement: the backing lives in the grantee's tile-local
  // memory (there is no "shared" memory on a mesh — some tile hosts the
  // bytes). Consumer-sided placement makes region_view O(1)+local for the
  // descriptor-consuming side; the producer's region_write streams over
  // the mesh, which is the DTU transfer that copy pays anyway.
  record.backend_cookie = record.b;
  return Status::success();
}

Result<DomainId> NocFabric::region_host(substrate::RegionId id) const {
  const RegionRecord* record = find_region(id);
  if (!record) return Errc::invalid_argument;
  return static_cast<DomainId>(record->backend_cookie);
}

Cycles NocFabric::region_copy_cost(const RegionRecord& record, DomainId actor,
                                   std::size_t len) const {
  const Cycles flits = Cycles((len + 15) / 16);
  const DomainId host = static_cast<DomainId>(record.backend_cookie);
  if (actor == host)
    return machine_.costs().memcpy_per_16_bytes * flits;  // tile-local SRAM
  // Remote: DTU memory-endpoint transfer — hop latency once (the transfer
  // is pipelined behind the first flit) plus per-flit mesh bandwidth.
  const auto hops = hop_distance(actor, host);
  return 6 * Cycles(hops ? *hops : 4) + 4 * flits;
}

Cycles NocFabric::region_access_cost(const RegionRecord& record,
                                     DomainId actor) const {
  const DomainId host = static_cast<DomainId>(record.backend_cookie);
  if (actor == host) return IsolationSubstrate::region_access_cost();
  const auto hops = hop_distance(actor, host);
  return IsolationSubstrate::region_access_cost() +
         6 * Cycles(hops ? *hops : 4);
}

void NocFabric::release_region(substrate::RegionId id, RegionRecord& record) {
  (void)id;
  const auto a_it = tiles_.find(record.a);
  const auto b_it = tiles_.find(record.b);
  if (a_it != tiles_.end() && a_it->second.endpoints_used > 0)
    a_it->second.endpoints_used--;
  if (b_it != tiles_.end() && b_it->second.endpoints_used > 0)
    b_it->second.endpoints_used--;
}

Cycles NocFabric::region_map_cost(std::size_t pages) const {
  // The kernel tile configures a memory endpoint: one message to the
  // kernel plus DTU programming per page window.
  return message_cost(32) + machine_.costs().dma_setup +
         machine_.costs().dma_per_page * pages;
}

Status register_factory(substrate::SubstrateRegistry& registry) {
  return registry.register_factory(
      "noc", [](hw::Machine& machine, const substrate::SubstrateConfig& config) {
        return std::make_unique<NocFabric>(machine, config);
      });
}

}  // namespace lateral::noc
