// NoC/M3-style manycore isolation substrate (paper §II-B: "network-on-chip-
// based message isolation, which is used in research systems for
// heterogeneous manycores" — Asmussen et al., M3, ASPLOS'16).
//
// Every domain occupies its own tile: a core plus tile-local memory that no
// other tile can address at all. The only way off a tile is through DTU
// (data transfer unit) send endpoints, which a privileged kernel tile
// configures. Isolation therefore does not rely on an MMU or on CPU
// privilege levels on the application tiles — the *interconnect* enforces
// it, which is why M3 can isolate cores that have no protection hardware.
//
// Faithful consequences:
//  * cross-tile memory access is impossible by construction (there is no
//    load/store path, only messages);
//  * channel endpoints are DTU slots: a fixed, small number per tile —
//    exceeding them is a hard error (kEndpointsPerTile);
//  * messages pay NoC latency per hop plus per-flit transfer;
//  * tile-local memory is on-package SRAM for scratchpad tiles: we model
//    tiles' memory in DRAM but give the substrate no memory-encryption
//    claim — a physical attacker with package access reads it; the
//    substrate defends remote + local-software models.
#pragma once

#include <map>

#include "substrate/registry.h"
#include "substrate/substrate.h"

namespace lateral::noc {

/// DTU endpoints available per tile (M3's EP table is small and fixed).
constexpr std::size_t kEndpointsPerTile = 8;

class NocFabric final : public substrate::IsolationSubstrate {
 public:
  NocFabric(hw::Machine& machine, substrate::SubstrateConfig config);

  const substrate::SubstrateInfo& info() const override;

  Result<Bytes> read_memory(substrate::DomainId actor,
                            substrate::DomainId target, std::uint64_t offset,
                            std::size_t len) override;
  Status write_memory(substrate::DomainId actor, substrate::DomainId target,
                      std::uint64_t offset, BytesView data) override;

  /// Channels consume one DTU endpoint on each side; creation fails with
  /// exhausted when a tile's endpoint table is full.
  Result<substrate::ChannelId> create_channel(
      substrate::DomainId a, substrate::DomainId b,
      const substrate::ChannelSpec& spec = {}) override;

  /// Endpoints in use on a domain's tile.
  Result<std::size_t> endpoints_used(substrate::DomainId domain) const;

  /// Manhattan hop distance between two domains' tiles (cost model detail,
  /// exposed for tests).
  Result<std::size_t> hop_distance(substrate::DomainId a,
                                   substrate::DomainId b) const;

  /// Which endpoint's tile hosts a region's backing. Placement is
  /// consumer-sided: the grantee (the descriptor-consuming side of the
  /// zero-copy flow) gets tile-local views; the producer streams its one
  /// copy over the mesh, which is the DTU transfer it would pay anyway.
  Result<substrate::DomainId> region_host(substrate::RegionId id) const;

 protected:
  Status admit_domain(const substrate::DomainSpec& spec) const override;
  Status attach_memory(substrate::DomainId id, DomainRecord& record) override;
  void release_memory(substrate::DomainId id, DomainRecord& record) override;
  Cycles message_cost(std::size_t len) const override;
  substrate::ConcurrencyLaw concurrency_law() const override;
  Cycles attest_cost() const override;
  /// Regions are DTU *memory* endpoints (M3's remote-memory EPs): each side
  /// spends one slot of its fixed EP table, so region creation competes
  /// with channels for endpoints and fails with exhausted when a tile's
  /// table is full.
  Status attach_region(substrate::RegionId id, RegionRecord& record) override;
  void release_region(substrate::RegionId id, RegionRecord& record) override;
  Cycles region_map_cost(std::size_t pages) const override;
  /// Tile-aware data-plane pricing: local on the host tile, mesh transfer
  /// (hop latency + per-flit) from the peer.
  Cycles region_copy_cost(const RegionRecord& record,
                          substrate::DomainId actor,
                          std::size_t len) const override;
  Cycles region_access_cost(const RegionRecord& record,
                            substrate::DomainId actor) const override;
  using IsolationSubstrate::region_access_cost;

 private:
  struct Tile {
    std::size_t grid_x = 0;
    std::size_t grid_y = 0;
    hw::PhysAddr memory_base = 0;
    std::size_t pages = 0;
    std::size_t endpoints_used = 0;
  };

  static constexpr std::size_t kGridWidth = 8;

  substrate::SubstrateInfo info_;
  hw::FrameAllocator frames_;
  std::map<substrate::DomainId, Tile> tiles_;
  std::size_t next_tile_index_ = 0;
};

Status register_factory(substrate::SubstrateRegistry& registry);

}  // namespace lateral::noc
