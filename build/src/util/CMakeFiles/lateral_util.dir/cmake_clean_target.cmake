file(REMOVE_RECURSE
  "liblateral_util.a"
)
