# Empty dependencies file for lateral_util.
# This may be replaced when dependencies are built.
