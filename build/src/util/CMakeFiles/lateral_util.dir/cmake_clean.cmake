file(REMOVE_RECURSE
  "CMakeFiles/lateral_util.dir/hex.cpp.o"
  "CMakeFiles/lateral_util.dir/hex.cpp.o.d"
  "CMakeFiles/lateral_util.dir/rng.cpp.o"
  "CMakeFiles/lateral_util.dir/rng.cpp.o.d"
  "CMakeFiles/lateral_util.dir/table.cpp.o"
  "CMakeFiles/lateral_util.dir/table.cpp.o.d"
  "liblateral_util.a"
  "liblateral_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
