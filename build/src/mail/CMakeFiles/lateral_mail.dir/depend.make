# Empty dependencies file for lateral_mail.
# This may be replaced when dependencies are built.
