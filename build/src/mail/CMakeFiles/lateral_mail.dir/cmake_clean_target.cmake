file(REMOVE_RECURSE
  "liblateral_mail.a"
)
