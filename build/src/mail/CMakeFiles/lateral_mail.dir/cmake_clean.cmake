file(REMOVE_RECURSE
  "CMakeFiles/lateral_mail.dir/addressbook.cpp.o"
  "CMakeFiles/lateral_mail.dir/addressbook.cpp.o.d"
  "CMakeFiles/lateral_mail.dir/client.cpp.o"
  "CMakeFiles/lateral_mail.dir/client.cpp.o.d"
  "CMakeFiles/lateral_mail.dir/imap.cpp.o"
  "CMakeFiles/lateral_mail.dir/imap.cpp.o.d"
  "CMakeFiles/lateral_mail.dir/input_method.cpp.o"
  "CMakeFiles/lateral_mail.dir/input_method.cpp.o.d"
  "CMakeFiles/lateral_mail.dir/mailstore.cpp.o"
  "CMakeFiles/lateral_mail.dir/mailstore.cpp.o.d"
  "CMakeFiles/lateral_mail.dir/message.cpp.o"
  "CMakeFiles/lateral_mail.dir/message.cpp.o.d"
  "CMakeFiles/lateral_mail.dir/render.cpp.o"
  "CMakeFiles/lateral_mail.dir/render.cpp.o.d"
  "liblateral_mail.a"
  "liblateral_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
