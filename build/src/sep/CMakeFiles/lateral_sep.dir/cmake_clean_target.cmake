file(REMOVE_RECURSE
  "liblateral_sep.a"
)
