file(REMOVE_RECURSE
  "CMakeFiles/lateral_sep.dir/sep.cpp.o"
  "CMakeFiles/lateral_sep.dir/sep.cpp.o.d"
  "liblateral_sep.a"
  "liblateral_sep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_sep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
