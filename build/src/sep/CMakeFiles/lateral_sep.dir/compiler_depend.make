# Empty compiler generated dependencies file for lateral_sep.
# This may be replaced when dependencies are built.
