# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("hw")
subdirs("substrate")
subdirs("microkernel")
subdirs("tpm")
subdirs("ftpm")
subdirs("trustzone")
subdirs("sgx")
subdirs("sep")
subdirs("cheri")
subdirs("noc")
subdirs("legacy")
subdirs("core")
subdirs("toolbox")
subdirs("mail")
subdirs("vpfs")
subdirs("gui")
subdirs("net")
