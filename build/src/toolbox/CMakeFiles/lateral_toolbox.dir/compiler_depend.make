# Empty compiler generated dependencies file for lateral_toolbox.
# This may be replaced when dependencies are built.
