file(REMOVE_RECURSE
  "CMakeFiles/lateral_toolbox.dir/anonymizer.cpp.o"
  "CMakeFiles/lateral_toolbox.dir/anonymizer.cpp.o.d"
  "CMakeFiles/lateral_toolbox.dir/authenticator.cpp.o"
  "CMakeFiles/lateral_toolbox.dir/authenticator.cpp.o.d"
  "CMakeFiles/lateral_toolbox.dir/gateway.cpp.o"
  "CMakeFiles/lateral_toolbox.dir/gateway.cpp.o.d"
  "CMakeFiles/lateral_toolbox.dir/trusted_wrapper.cpp.o"
  "CMakeFiles/lateral_toolbox.dir/trusted_wrapper.cpp.o.d"
  "liblateral_toolbox.a"
  "liblateral_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
