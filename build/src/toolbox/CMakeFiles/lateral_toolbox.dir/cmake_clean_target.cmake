file(REMOVE_RECURSE
  "liblateral_toolbox.a"
)
