# Empty dependencies file for lateral_trustzone.
# This may be replaced when dependencies are built.
