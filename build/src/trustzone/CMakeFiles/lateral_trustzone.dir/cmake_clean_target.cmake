file(REMOVE_RECURSE
  "liblateral_trustzone.a"
)
