file(REMOVE_RECURSE
  "CMakeFiles/lateral_trustzone.dir/trustzone.cpp.o"
  "CMakeFiles/lateral_trustzone.dir/trustzone.cpp.o.d"
  "liblateral_trustzone.a"
  "liblateral_trustzone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_trustzone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
