# CMake generated Testfile for 
# Source directory: /root/repo/src/trustzone
# Build directory: /root/repo/build/src/trustzone
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
