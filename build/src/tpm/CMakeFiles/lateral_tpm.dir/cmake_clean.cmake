file(REMOVE_RECURSE
  "CMakeFiles/lateral_tpm.dir/tpm.cpp.o"
  "CMakeFiles/lateral_tpm.dir/tpm.cpp.o.d"
  "liblateral_tpm.a"
  "liblateral_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
