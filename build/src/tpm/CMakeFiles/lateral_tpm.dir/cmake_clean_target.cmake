file(REMOVE_RECURSE
  "liblateral_tpm.a"
)
