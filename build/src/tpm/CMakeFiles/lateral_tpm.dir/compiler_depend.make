# Empty compiler generated dependencies file for lateral_tpm.
# This may be replaced when dependencies are built.
