file(REMOVE_RECURSE
  "CMakeFiles/lateral_core.dir/attestation.cpp.o"
  "CMakeFiles/lateral_core.dir/attestation.cpp.o.d"
  "CMakeFiles/lateral_core.dir/composer.cpp.o"
  "CMakeFiles/lateral_core.dir/composer.cpp.o.d"
  "CMakeFiles/lateral_core.dir/launch.cpp.o"
  "CMakeFiles/lateral_core.dir/launch.cpp.o.d"
  "CMakeFiles/lateral_core.dir/manifest.cpp.o"
  "CMakeFiles/lateral_core.dir/manifest.cpp.o.d"
  "CMakeFiles/lateral_core.dir/policy.cpp.o"
  "CMakeFiles/lateral_core.dir/policy.cpp.o.d"
  "CMakeFiles/lateral_core.dir/standard_registry.cpp.o"
  "CMakeFiles/lateral_core.dir/standard_registry.cpp.o.d"
  "CMakeFiles/lateral_core.dir/tcb.cpp.o"
  "CMakeFiles/lateral_core.dir/tcb.cpp.o.d"
  "CMakeFiles/lateral_core.dir/trust_graph.cpp.o"
  "CMakeFiles/lateral_core.dir/trust_graph.cpp.o.d"
  "liblateral_core.a"
  "liblateral_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
