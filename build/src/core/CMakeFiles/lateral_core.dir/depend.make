# Empty dependencies file for lateral_core.
# This may be replaced when dependencies are built.
