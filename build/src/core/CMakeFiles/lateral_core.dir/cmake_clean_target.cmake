file(REMOVE_RECURSE
  "liblateral_core.a"
)
