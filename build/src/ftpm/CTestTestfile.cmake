# CMake generated Testfile for 
# Source directory: /root/repo/src/ftpm
# Build directory: /root/repo/build/src/ftpm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
