file(REMOVE_RECURSE
  "CMakeFiles/lateral_ftpm.dir/ftpm.cpp.o"
  "CMakeFiles/lateral_ftpm.dir/ftpm.cpp.o.d"
  "liblateral_ftpm.a"
  "liblateral_ftpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_ftpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
