file(REMOVE_RECURSE
  "liblateral_ftpm.a"
)
