# Empty dependencies file for lateral_ftpm.
# This may be replaced when dependencies are built.
