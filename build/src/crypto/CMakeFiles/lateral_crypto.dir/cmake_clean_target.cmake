file(REMOVE_RECURSE
  "liblateral_crypto.a"
)
