file(REMOVE_RECURSE
  "CMakeFiles/lateral_crypto.dir/aes.cpp.o"
  "CMakeFiles/lateral_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/lateral_crypto.dir/bignum.cpp.o"
  "CMakeFiles/lateral_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/lateral_crypto.dir/dh.cpp.o"
  "CMakeFiles/lateral_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/lateral_crypto.dir/hmac.cpp.o"
  "CMakeFiles/lateral_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/lateral_crypto.dir/merkle.cpp.o"
  "CMakeFiles/lateral_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/lateral_crypto.dir/rsa.cpp.o"
  "CMakeFiles/lateral_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/lateral_crypto.dir/sha256.cpp.o"
  "CMakeFiles/lateral_crypto.dir/sha256.cpp.o.d"
  "liblateral_crypto.a"
  "liblateral_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
