# Empty compiler generated dependencies file for lateral_crypto.
# This may be replaced when dependencies are built.
