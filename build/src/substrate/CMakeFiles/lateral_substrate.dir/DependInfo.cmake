
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/substrate/quote.cpp" "src/substrate/CMakeFiles/lateral_substrate.dir/quote.cpp.o" "gcc" "src/substrate/CMakeFiles/lateral_substrate.dir/quote.cpp.o.d"
  "/root/repo/src/substrate/registry.cpp" "src/substrate/CMakeFiles/lateral_substrate.dir/registry.cpp.o" "gcc" "src/substrate/CMakeFiles/lateral_substrate.dir/registry.cpp.o.d"
  "/root/repo/src/substrate/substrate.cpp" "src/substrate/CMakeFiles/lateral_substrate.dir/substrate.cpp.o" "gcc" "src/substrate/CMakeFiles/lateral_substrate.dir/substrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lateral_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lateral_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lateral_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
