file(REMOVE_RECURSE
  "liblateral_substrate.a"
)
