# Empty dependencies file for lateral_substrate.
# This may be replaced when dependencies are built.
