file(REMOVE_RECURSE
  "CMakeFiles/lateral_substrate.dir/quote.cpp.o"
  "CMakeFiles/lateral_substrate.dir/quote.cpp.o.d"
  "CMakeFiles/lateral_substrate.dir/registry.cpp.o"
  "CMakeFiles/lateral_substrate.dir/registry.cpp.o.d"
  "CMakeFiles/lateral_substrate.dir/substrate.cpp.o"
  "CMakeFiles/lateral_substrate.dir/substrate.cpp.o.d"
  "liblateral_substrate.a"
  "liblateral_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
