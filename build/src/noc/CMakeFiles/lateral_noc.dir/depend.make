# Empty dependencies file for lateral_noc.
# This may be replaced when dependencies are built.
