file(REMOVE_RECURSE
  "CMakeFiles/lateral_noc.dir/noc.cpp.o"
  "CMakeFiles/lateral_noc.dir/noc.cpp.o.d"
  "liblateral_noc.a"
  "liblateral_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
