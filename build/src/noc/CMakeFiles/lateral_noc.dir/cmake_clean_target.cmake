file(REMOVE_RECURSE
  "liblateral_noc.a"
)
