file(REMOVE_RECURSE
  "liblateral_microkernel.a"
)
