# Empty compiler generated dependencies file for lateral_microkernel.
# This may be replaced when dependencies are built.
