file(REMOVE_RECURSE
  "CMakeFiles/lateral_microkernel.dir/microkernel.cpp.o"
  "CMakeFiles/lateral_microkernel.dir/microkernel.cpp.o.d"
  "CMakeFiles/lateral_microkernel.dir/scheduler.cpp.o"
  "CMakeFiles/lateral_microkernel.dir/scheduler.cpp.o.d"
  "liblateral_microkernel.a"
  "liblateral_microkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_microkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
