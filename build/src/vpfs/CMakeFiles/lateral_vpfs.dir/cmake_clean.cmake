file(REMOVE_RECURSE
  "CMakeFiles/lateral_vpfs.dir/vpfs.cpp.o"
  "CMakeFiles/lateral_vpfs.dir/vpfs.cpp.o.d"
  "liblateral_vpfs.a"
  "liblateral_vpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_vpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
