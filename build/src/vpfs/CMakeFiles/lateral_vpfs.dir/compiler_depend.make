# Empty compiler generated dependencies file for lateral_vpfs.
# This may be replaced when dependencies are built.
