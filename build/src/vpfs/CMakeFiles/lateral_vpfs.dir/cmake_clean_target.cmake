file(REMOVE_RECURSE
  "liblateral_vpfs.a"
)
