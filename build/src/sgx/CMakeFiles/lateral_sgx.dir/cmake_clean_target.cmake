file(REMOVE_RECURSE
  "liblateral_sgx.a"
)
