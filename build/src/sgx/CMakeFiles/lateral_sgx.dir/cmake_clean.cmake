file(REMOVE_RECURSE
  "CMakeFiles/lateral_sgx.dir/sgx.cpp.o"
  "CMakeFiles/lateral_sgx.dir/sgx.cpp.o.d"
  "liblateral_sgx.a"
  "liblateral_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
