# Empty compiler generated dependencies file for lateral_sgx.
# This may be replaced when dependencies are built.
