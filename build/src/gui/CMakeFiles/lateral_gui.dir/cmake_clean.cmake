file(REMOVE_RECURSE
  "CMakeFiles/lateral_gui.dir/secure_gui.cpp.o"
  "CMakeFiles/lateral_gui.dir/secure_gui.cpp.o.d"
  "liblateral_gui.a"
  "liblateral_gui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_gui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
