# Empty dependencies file for lateral_gui.
# This may be replaced when dependencies are built.
