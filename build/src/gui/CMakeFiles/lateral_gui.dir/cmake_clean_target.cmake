file(REMOVE_RECURSE
  "liblateral_gui.a"
)
