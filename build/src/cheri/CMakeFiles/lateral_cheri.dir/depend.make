# Empty dependencies file for lateral_cheri.
# This may be replaced when dependencies are built.
