file(REMOVE_RECURSE
  "liblateral_cheri.a"
)
