file(REMOVE_RECURSE
  "CMakeFiles/lateral_cheri.dir/cheri.cpp.o"
  "CMakeFiles/lateral_cheri.dir/cheri.cpp.o.d"
  "liblateral_cheri.a"
  "liblateral_cheri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_cheri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
