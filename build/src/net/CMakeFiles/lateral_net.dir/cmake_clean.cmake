file(REMOVE_RECURSE
  "CMakeFiles/lateral_net.dir/federation.cpp.o"
  "CMakeFiles/lateral_net.dir/federation.cpp.o.d"
  "CMakeFiles/lateral_net.dir/network.cpp.o"
  "CMakeFiles/lateral_net.dir/network.cpp.o.d"
  "CMakeFiles/lateral_net.dir/remote.cpp.o"
  "CMakeFiles/lateral_net.dir/remote.cpp.o.d"
  "CMakeFiles/lateral_net.dir/secure_channel.cpp.o"
  "CMakeFiles/lateral_net.dir/secure_channel.cpp.o.d"
  "liblateral_net.a"
  "liblateral_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
