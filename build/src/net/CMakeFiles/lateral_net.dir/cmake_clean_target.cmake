file(REMOVE_RECURSE
  "liblateral_net.a"
)
