# Empty compiler generated dependencies file for lateral_net.
# This may be replaced when dependencies are built.
