file(REMOVE_RECURSE
  "CMakeFiles/lateral_hw.dir/attacker.cpp.o"
  "CMakeFiles/lateral_hw.dir/attacker.cpp.o.d"
  "CMakeFiles/lateral_hw.dir/iommu.cpp.o"
  "CMakeFiles/lateral_hw.dir/iommu.cpp.o.d"
  "CMakeFiles/lateral_hw.dir/machine.cpp.o"
  "CMakeFiles/lateral_hw.dir/machine.cpp.o.d"
  "CMakeFiles/lateral_hw.dir/memory.cpp.o"
  "CMakeFiles/lateral_hw.dir/memory.cpp.o.d"
  "liblateral_hw.a"
  "liblateral_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
