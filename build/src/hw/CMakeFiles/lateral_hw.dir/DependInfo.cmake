
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/attacker.cpp" "src/hw/CMakeFiles/lateral_hw.dir/attacker.cpp.o" "gcc" "src/hw/CMakeFiles/lateral_hw.dir/attacker.cpp.o.d"
  "/root/repo/src/hw/iommu.cpp" "src/hw/CMakeFiles/lateral_hw.dir/iommu.cpp.o" "gcc" "src/hw/CMakeFiles/lateral_hw.dir/iommu.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/hw/CMakeFiles/lateral_hw.dir/machine.cpp.o" "gcc" "src/hw/CMakeFiles/lateral_hw.dir/machine.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/hw/CMakeFiles/lateral_hw.dir/memory.cpp.o" "gcc" "src/hw/CMakeFiles/lateral_hw.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lateral_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lateral_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
