# Empty compiler generated dependencies file for lateral_hw.
# This may be replaced when dependencies are built.
