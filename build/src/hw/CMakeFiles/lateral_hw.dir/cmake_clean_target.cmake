file(REMOVE_RECURSE
  "liblateral_hw.a"
)
