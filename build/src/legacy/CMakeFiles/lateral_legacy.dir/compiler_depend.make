# Empty compiler generated dependencies file for lateral_legacy.
# This may be replaced when dependencies are built.
