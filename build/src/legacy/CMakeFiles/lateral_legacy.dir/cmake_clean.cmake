file(REMOVE_RECURSE
  "CMakeFiles/lateral_legacy.dir/filesystem.cpp.o"
  "CMakeFiles/lateral_legacy.dir/filesystem.cpp.o.d"
  "CMakeFiles/lateral_legacy.dir/legacy_os.cpp.o"
  "CMakeFiles/lateral_legacy.dir/legacy_os.cpp.o.d"
  "liblateral_legacy.a"
  "liblateral_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateral_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
