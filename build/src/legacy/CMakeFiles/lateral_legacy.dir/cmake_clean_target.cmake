file(REMOVE_RECURSE
  "liblateral_legacy.a"
)
