
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legacy/filesystem.cpp" "src/legacy/CMakeFiles/lateral_legacy.dir/filesystem.cpp.o" "gcc" "src/legacy/CMakeFiles/lateral_legacy.dir/filesystem.cpp.o.d"
  "/root/repo/src/legacy/legacy_os.cpp" "src/legacy/CMakeFiles/lateral_legacy.dir/legacy_os.cpp.o" "gcc" "src/legacy/CMakeFiles/lateral_legacy.dir/legacy_os.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lateral_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lateral_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
