# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sha256_test[1]_include.cmake")
include("/root/repo/build/tests/hmac_test[1]_include.cmake")
include("/root/repo/build/tests/aes_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/rsa_test[1]_include.cmake")
include("/root/repo/build/tests/dh_merkle_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/substrate_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/microkernel_test[1]_include.cmake")
include("/root/repo/build/tests/trustzone_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/tpm_test[1]_include.cmake")
include("/root/repo/build/tests/ftpm_test[1]_include.cmake")
include("/root/repo/build/tests/sep_test[1]_include.cmake")
include("/root/repo/build/tests/cheri_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/toolbox_test[1]_include.cmake")
include("/root/repo/build/tests/mail_test[1]_include.cmake")
include("/root/repo/build/tests/legacy_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/vpfs_test[1]_include.cmake")
include("/root/repo/build/tests/gui_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/launch_remote_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
