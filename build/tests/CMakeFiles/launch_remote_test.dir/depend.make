# Empty dependencies file for launch_remote_test.
# This may be replaced when dependencies are built.
