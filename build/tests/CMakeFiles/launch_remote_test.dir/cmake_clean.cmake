file(REMOVE_RECURSE
  "CMakeFiles/launch_remote_test.dir/launch_remote_test.cpp.o"
  "CMakeFiles/launch_remote_test.dir/launch_remote_test.cpp.o.d"
  "launch_remote_test"
  "launch_remote_test.pdb"
  "launch_remote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launch_remote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
