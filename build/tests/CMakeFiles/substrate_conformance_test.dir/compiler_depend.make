# Empty compiler generated dependencies file for substrate_conformance_test.
# This may be replaced when dependencies are built.
