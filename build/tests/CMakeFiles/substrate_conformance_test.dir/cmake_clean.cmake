file(REMOVE_RECURSE
  "CMakeFiles/substrate_conformance_test.dir/substrate_conformance_test.cpp.o"
  "CMakeFiles/substrate_conformance_test.dir/substrate_conformance_test.cpp.o.d"
  "substrate_conformance_test"
  "substrate_conformance_test.pdb"
  "substrate_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
