file(REMOVE_RECURSE
  "CMakeFiles/dh_merkle_test.dir/dh_merkle_test.cpp.o"
  "CMakeFiles/dh_merkle_test.dir/dh_merkle_test.cpp.o.d"
  "dh_merkle_test"
  "dh_merkle_test.pdb"
  "dh_merkle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dh_merkle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
