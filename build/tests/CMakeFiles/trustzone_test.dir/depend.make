# Empty dependencies file for trustzone_test.
# This may be replaced when dependencies are built.
