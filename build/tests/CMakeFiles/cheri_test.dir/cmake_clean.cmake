file(REMOVE_RECURSE
  "CMakeFiles/cheri_test.dir/cheri_test.cpp.o"
  "CMakeFiles/cheri_test.dir/cheri_test.cpp.o.d"
  "cheri_test"
  "cheri_test.pdb"
  "cheri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
