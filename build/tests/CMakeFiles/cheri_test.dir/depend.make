# Empty dependencies file for cheri_test.
# This may be replaced when dependencies are built.
