
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tpm_test.cpp" "tests/CMakeFiles/tpm_test.dir/tpm_test.cpp.o" "gcc" "tests/CMakeFiles/tpm_test.dir/tpm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/toolbox/CMakeFiles/lateral_toolbox.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/lateral_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/vpfs/CMakeFiles/lateral_vpfs.dir/DependInfo.cmake"
  "/root/repo/build/src/gui/CMakeFiles/lateral_gui.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lateral_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lateral_core.dir/DependInfo.cmake"
  "/root/repo/build/src/microkernel/CMakeFiles/lateral_microkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ftpm/CMakeFiles/lateral_ftpm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/lateral_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/trustzone/CMakeFiles/lateral_trustzone.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/lateral_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/sep/CMakeFiles/lateral_sep.dir/DependInfo.cmake"
  "/root/repo/build/src/cheri/CMakeFiles/lateral_cheri.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/lateral_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/lateral_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lateral_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/legacy/CMakeFiles/lateral_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lateral_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lateral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
