file(REMOVE_RECURSE
  "CMakeFiles/toolbox_test.dir/toolbox_test.cpp.o"
  "CMakeFiles/toolbox_test.dir/toolbox_test.cpp.o.d"
  "toolbox_test"
  "toolbox_test.pdb"
  "toolbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
