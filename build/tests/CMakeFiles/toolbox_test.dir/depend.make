# Empty dependencies file for toolbox_test.
# This may be replaced when dependencies are built.
