# Empty compiler generated dependencies file for ftpm_test.
# This may be replaced when dependencies are built.
