file(REMOVE_RECURSE
  "CMakeFiles/ftpm_test.dir/ftpm_test.cpp.o"
  "CMakeFiles/ftpm_test.dir/ftpm_test.cpp.o.d"
  "ftpm_test"
  "ftpm_test.pdb"
  "ftpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
