# Empty compiler generated dependencies file for vpfs_test.
# This may be replaced when dependencies are built.
