file(REMOVE_RECURSE
  "CMakeFiles/vpfs_test.dir/vpfs_test.cpp.o"
  "CMakeFiles/vpfs_test.dir/vpfs_test.cpp.o.d"
  "vpfs_test"
  "vpfs_test.pdb"
  "vpfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
