file(REMOVE_RECURSE
  "CMakeFiles/sep_test.dir/sep_test.cpp.o"
  "CMakeFiles/sep_test.dir/sep_test.cpp.o.d"
  "sep_test"
  "sep_test.pdb"
  "sep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
