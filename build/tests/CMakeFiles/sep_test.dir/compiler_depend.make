# Empty compiler generated dependencies file for sep_test.
# This may be replaced when dependencies are built.
