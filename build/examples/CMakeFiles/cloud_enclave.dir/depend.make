# Empty dependencies file for cloud_enclave.
# This may be replaced when dependencies are built.
