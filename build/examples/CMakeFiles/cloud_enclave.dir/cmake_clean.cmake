file(REMOVE_RECURSE
  "CMakeFiles/cloud_enclave.dir/cloud_enclave.cpp.o"
  "CMakeFiles/cloud_enclave.dir/cloud_enclave.cpp.o.d"
  "cloud_enclave"
  "cloud_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
