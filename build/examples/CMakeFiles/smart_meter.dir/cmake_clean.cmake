file(REMOVE_RECURSE
  "CMakeFiles/smart_meter.dir/smart_meter.cpp.o"
  "CMakeFiles/smart_meter.dir/smart_meter.cpp.o.d"
  "smart_meter"
  "smart_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
