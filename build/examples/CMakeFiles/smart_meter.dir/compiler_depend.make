# Empty compiler generated dependencies file for smart_meter.
# This may be replaced when dependencies are built.
