# Empty dependencies file for two_androids.
# This may be replaced when dependencies are built.
