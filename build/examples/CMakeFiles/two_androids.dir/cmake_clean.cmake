file(REMOVE_RECURSE
  "CMakeFiles/two_androids.dir/two_androids.cpp.o"
  "CMakeFiles/two_androids.dir/two_androids.cpp.o.d"
  "two_androids"
  "two_androids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_androids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
