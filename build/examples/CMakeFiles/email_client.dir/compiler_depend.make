# Empty compiler generated dependencies file for email_client.
# This may be replaced when dependencies are built.
