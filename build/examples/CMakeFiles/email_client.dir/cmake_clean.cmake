file(REMOVE_RECURSE
  "CMakeFiles/email_client.dir/email_client.cpp.o"
  "CMakeFiles/email_client.dir/email_client.cpp.o.d"
  "email_client"
  "email_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
