file(REMOVE_RECURSE
  "CMakeFiles/toolbox_tour.dir/toolbox_tour.cpp.o"
  "CMakeFiles/toolbox_tour.dir/toolbox_tour.cpp.o.d"
  "toolbox_tour"
  "toolbox_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolbox_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
