# Empty dependencies file for toolbox_tour.
# This may be replaced when dependencies are built.
