# Empty dependencies file for bench_tab2_tcb.
# This may be replaced when dependencies are built.
