file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_tcb.dir/bench_tab2_tcb.cpp.o"
  "CMakeFiles/bench_tab2_tcb.dir/bench_tab2_tcb.cpp.o.d"
  "bench_tab2_tcb"
  "bench_tab2_tcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_tcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
