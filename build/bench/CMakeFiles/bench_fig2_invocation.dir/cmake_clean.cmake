file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_invocation.dir/bench_fig2_invocation.cpp.o"
  "CMakeFiles/bench_fig2_invocation.dir/bench_fig2_invocation.cpp.o.d"
  "bench_fig2_invocation"
  "bench_fig2_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
