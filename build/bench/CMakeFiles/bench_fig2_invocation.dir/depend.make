# Empty dependencies file for bench_fig2_invocation.
# This may be replaced when dependencies are built.
