file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_covert.dir/bench_fig7_covert.cpp.o"
  "CMakeFiles/bench_fig7_covert.dir/bench_fig7_covert.cpp.o.d"
  "bench_fig7_covert"
  "bench_fig7_covert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_covert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
