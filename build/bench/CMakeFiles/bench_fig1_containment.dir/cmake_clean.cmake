file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_containment.dir/bench_fig1_containment.cpp.o"
  "CMakeFiles/bench_fig1_containment.dir/bench_fig1_containment.cpp.o.d"
  "bench_fig1_containment"
  "bench_fig1_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
