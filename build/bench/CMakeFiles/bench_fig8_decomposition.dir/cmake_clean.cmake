file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_decomposition.dir/bench_fig8_decomposition.cpp.o"
  "CMakeFiles/bench_fig8_decomposition.dir/bench_fig8_decomposition.cpp.o.d"
  "bench_fig8_decomposition"
  "bench_fig8_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
