# Empty dependencies file for bench_fig5_crypto.
# This may be replaced when dependencies are built.
