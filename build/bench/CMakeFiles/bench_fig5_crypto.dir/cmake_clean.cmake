file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_crypto.dir/bench_fig5_crypto.cpp.o"
  "CMakeFiles/bench_fig5_crypto.dir/bench_fig5_crypto.cpp.o.d"
  "bench_fig5_crypto"
  "bench_fig5_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
