file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_substrates.dir/bench_tab1_substrates.cpp.o"
  "CMakeFiles/bench_tab1_substrates.dir/bench_tab1_substrates.cpp.o.d"
  "bench_tab1_substrates"
  "bench_tab1_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
