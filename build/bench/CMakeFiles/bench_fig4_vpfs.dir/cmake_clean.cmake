file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_vpfs.dir/bench_fig4_vpfs.cpp.o"
  "CMakeFiles/bench_fig4_vpfs.dir/bench_fig4_vpfs.cpp.o.d"
  "bench_fig4_vpfs"
  "bench_fig4_vpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_vpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
