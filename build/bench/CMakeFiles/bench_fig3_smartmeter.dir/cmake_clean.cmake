file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_smartmeter.dir/bench_fig3_smartmeter.cpp.o"
  "CMakeFiles/bench_fig3_smartmeter.dir/bench_fig3_smartmeter.cpp.o.d"
  "bench_fig3_smartmeter"
  "bench_fig3_smartmeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_smartmeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
